//! Recursive-descent parser for `.psm` documents.
//!
//! The grammar (names may be bare identifiers or quoted strings):
//!
//! ```text
//! document   := "system" NAME "{" item* "}"
//! item       := actor | field | schema | datastore | service
//!             | policy | flows | user
//! actor      := "actor" NAME ":" ("role"|"individual"|"subject"|"system") [STRING]
//! field      := "field" NAME ":" ("identifier"|"quasi"|"sensitive"|"other") ["anonymised"]
//! schema     := "schema" NAME "{" NAME ("," NAME)* "}"
//! datastore  := "datastore" NAME ":" NAME ["anonymised"]
//! service    := "service" NAME "{" "actors" NAME ("," NAME)* ["description" STRING] "}"
//! policy     := "policy" "{" (allow | role | assign)* "}"
//! allow      := "allow" NAME perms "on" NAME ["fields" "{" names "}"]
//! role       := "role" NAME "{" (perms "on" NAME ["fields" "{" names "}"])* "}"
//! assign     := "assign" NAME "->" NAME
//! perms      := ("read"|"create"|"delete"|"disclose") ("," ...)*
//! flows      := "flows" NAME "{" flow* "}"
//! flow       := NUMBER ":" body "for" STRING
//! body       := "collect" NAME "{" names "}"
//!             | "disclose" NAME "->" NAME "{" names "}"
//!             | "create" NAME "->" NAME "{" names "}"
//!             | "anonymise" NAME "->" NAME "{" names "}"
//!             | "read" NAME "<-" NAME "{" names "}"
//! user       := "user" NAME "{" ("consents" names | "sensitivity" NAME "=" sens)* "}"
//! sens       := NUMBER | "low" | "medium" | "high"
//! ```

use crate::ast::*;
use crate::error::InterchangeError;
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses source text into a [`ModelAst`] without resolving it.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// use privacy_interchange::parse_ast;
/// let ast = parse_ast("system \"S\" { actor A : role }").unwrap();
/// assert_eq!(ast.actors.len(), 1);
/// ```
pub fn parse_ast(source: &str) -> Result<ModelAst, InterchangeError> {
    let tokens = tokenize(source)?;
    Parser { tokens, index: 0 }.document()
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.index.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let token = self.peek().clone();
        if self.index < self.tokens.len() - 1 {
            self.index += 1;
        }
        token
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn error_here(&self, expected: impl Into<String>) -> InterchangeError {
        let token = self.peek();
        InterchangeError::parse(expected, token.kind.describe(), token.span)
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<Span, InterchangeError> {
        if self.peek().kind.is_keyword(keyword) {
            Ok(self.bump().span)
        } else {
            Err(self.error_here(format!("`{keyword}`")))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.peek().kind.is_keyword(keyword) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, describe: &str) -> Result<Span, InterchangeError> {
        if &self.peek().kind == kind {
            Ok(self.bump().span)
        } else {
            Err(self.error_here(describe))
        }
    }

    /// A name is either a bare identifier or a quoted string.
    fn name(&mut self, what: &str) -> Result<Name, InterchangeError> {
        let token = self.peek().clone();
        match token.kind.as_name() {
            Some(text) => {
                self.bump();
                Ok(Name::new(text, token.span))
            }
            None => Err(self.error_here(format!("a {what} name"))),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, InterchangeError> {
        match &self.peek().kind {
            TokenKind::Str(text) => {
                let text = text.clone();
                self.bump();
                Ok(text)
            }
            _ => Err(self.error_here(format!("a quoted {what} string"))),
        }
    }

    fn optional_string(&mut self) -> Option<String> {
        match &self.peek().kind {
            TokenKind::Str(text) => {
                let text = text.clone();
                self.bump();
                Some(text)
            }
            _ => None,
        }
    }

    fn number(&mut self, what: &str) -> Result<(f64, Span), InterchangeError> {
        match self.peek().kind {
            TokenKind::Number(value) => {
                let span = self.bump().span;
                Ok((value, span))
            }
            _ => Err(self.error_here(format!("a {what} number"))),
        }
    }

    /// `name ("," name)*`
    fn name_list(&mut self, what: &str) -> Result<Vec<Name>, InterchangeError> {
        let mut names = vec![self.name(what)?];
        while matches!(self.peek().kind, TokenKind::Comma) {
            self.bump();
            names.push(self.name(what)?);
        }
        Ok(names)
    }

    /// `"{" name ("," name)* "}"`
    fn braced_name_list(&mut self, what: &str) -> Result<Vec<Name>, InterchangeError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let names = self.name_list(what)?;
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(names)
    }

    fn document(&mut self) -> Result<ModelAst, InterchangeError> {
        self.expect_keyword("system")?;
        let name = self.name("system")?;
        let mut ast = ModelAst::empty(name.text);
        self.expect(&TokenKind::LBrace, "`{`")?;
        while !matches!(self.peek().kind, TokenKind::RBrace) {
            if self.at_eof() {
                return Err(self.error_here("`}` closing the system block"));
            }
            self.item(&mut ast)?;
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        if !self.at_eof() {
            return Err(self.error_here("end of input after the system block"));
        }
        Ok(ast)
    }

    fn item(&mut self, ast: &mut ModelAst) -> Result<(), InterchangeError> {
        let token = self.peek().clone();
        match token.kind.as_name() {
            Some("actor") => {
                let decl = self.actor()?;
                ast.actors.push(decl);
            }
            Some("field") => {
                let decl = self.field()?;
                ast.fields.push(decl);
            }
            Some("schema") => {
                let decl = self.schema()?;
                ast.schemas.push(decl);
            }
            Some("datastore") => {
                let decl = self.datastore()?;
                ast.datastores.push(decl);
            }
            Some("service") => {
                let decl = self.service()?;
                ast.services.push(decl);
            }
            Some("policy") => {
                self.policy(&mut ast.policy)?;
            }
            Some("flows") => {
                let decl = self.flows()?;
                ast.flows.push(decl);
            }
            Some("user") => {
                let decl = self.user()?;
                ast.users.push(decl);
            }
            _ => {
                return Err(self.error_here(
                    "`actor`, `field`, `schema`, `datastore`, `service`, `policy`, `flows` or `user`",
                ));
            }
        }
        Ok(())
    }

    fn actor(&mut self) -> Result<ActorDecl, InterchangeError> {
        self.expect_keyword("actor")?;
        let name = self.name("actor")?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let kind_token = self.peek().clone();
        let kind = match kind_token.kind.as_name() {
            Some("role") => ActorKindAst::Role,
            Some("individual") => ActorKindAst::Individual,
            Some("subject") => ActorKindAst::DataSubject,
            Some("system") => ActorKindAst::System,
            _ => {
                return Err(self.error_here("`role`, `individual`, `subject` or `system`"));
            }
        };
        self.bump();
        let description = self.optional_string();
        Ok(ActorDecl { name, kind, description })
    }

    fn field(&mut self) -> Result<FieldDecl, InterchangeError> {
        self.expect_keyword("field")?;
        let name = self.name("field")?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let kind_token = self.peek().clone();
        let kind = match kind_token.kind.as_name() {
            Some("identifier") => FieldKindAst::Identifier,
            Some("quasi") => FieldKindAst::QuasiIdentifier,
            Some("sensitive") => FieldKindAst::Sensitive,
            Some("other") => FieldKindAst::Other,
            _ => return Err(self.error_here("`identifier`, `quasi`, `sensitive` or `other`")),
        };
        self.bump();
        let anonymised = self.eat_keyword("anonymised");
        Ok(FieldDecl { name, kind, anonymised })
    }

    fn schema(&mut self) -> Result<SchemaDecl, InterchangeError> {
        self.expect_keyword("schema")?;
        let name = self.name("schema")?;
        let fields = self.braced_name_list("field")?;
        Ok(SchemaDecl { name, fields })
    }

    fn datastore(&mut self) -> Result<DatastoreDeclAst, InterchangeError> {
        self.expect_keyword("datastore")?;
        let name = self.name("datastore")?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let schema = self.name("schema")?;
        let anonymised = self.eat_keyword("anonymised");
        Ok(DatastoreDeclAst { name, schema, anonymised })
    }

    fn service(&mut self) -> Result<ServiceDeclAst, InterchangeError> {
        self.expect_keyword("service")?;
        let name = self.name("service")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        self.expect_keyword("actors")?;
        let actors = self.name_list("actor")?;
        let description =
            if self.eat_keyword("description") { Some(self.string("description")?) } else { None };
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(ServiceDeclAst { name, actors, description })
    }

    fn permissions(&mut self) -> Result<Vec<PermissionAst>, InterchangeError> {
        let mut permissions = vec![self.permission()?];
        while matches!(self.peek().kind, TokenKind::Comma) {
            self.bump();
            permissions.push(self.permission()?);
        }
        Ok(permissions)
    }

    fn permission(&mut self) -> Result<PermissionAst, InterchangeError> {
        let token = self.peek().clone();
        let permission = match token.kind.as_name() {
            Some("read") => PermissionAst::Read,
            Some("create") => PermissionAst::Create,
            Some("delete") => PermissionAst::Delete,
            Some("disclose") => PermissionAst::Disclose,
            _ => return Err(self.error_here("`read`, `create`, `delete` or `disclose`")),
        };
        self.bump();
        Ok(permission)
    }

    fn field_restriction(&mut self) -> Result<Option<Vec<Name>>, InterchangeError> {
        if self.eat_keyword("fields") {
            Ok(Some(self.braced_name_list("field")?))
        } else {
            Ok(None)
        }
    }

    fn policy(&mut self, policy: &mut PolicyDecl) -> Result<(), InterchangeError> {
        self.expect_keyword("policy")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        while !matches!(self.peek().kind, TokenKind::RBrace) {
            if self.at_eof() {
                return Err(self.error_here("`}` closing the policy block"));
            }
            let token = self.peek().clone();
            match token.kind.as_name() {
                Some("allow") => {
                    let start = self.bump().span;
                    let actor = self.name("actor")?;
                    let permissions = self.permissions()?;
                    self.expect_keyword("on")?;
                    let datastore = self.name("datastore")?;
                    let fields = self.field_restriction()?;
                    let span = start.merge(datastore.span);
                    policy.allows.push(AllowDecl { actor, permissions, datastore, fields, span });
                }
                Some("role") => {
                    self.bump();
                    let name = self.name("role")?;
                    self.expect(&TokenKind::LBrace, "`{`")?;
                    let mut grants = Vec::new();
                    while !matches!(self.peek().kind, TokenKind::RBrace) {
                        if self.at_eof() {
                            return Err(self.error_here("`}` closing the role block"));
                        }
                        let permissions = self.permissions()?;
                        self.expect_keyword("on")?;
                        let datastore = self.name("datastore")?;
                        let fields = self.field_restriction()?;
                        grants.push(RoleGrantDecl { permissions, datastore, fields });
                    }
                    self.expect(&TokenKind::RBrace, "`}`")?;
                    policy.roles.push(RoleDecl { name, grants });
                }
                Some("assign") => {
                    self.bump();
                    let actor = self.name("actor")?;
                    self.expect(&TokenKind::Arrow, "`->`")?;
                    let role = self.name("role")?;
                    policy.assignments.push(AssignDecl { actor, role });
                }
                _ => return Err(self.error_here("`allow`, `role` or `assign`")),
            }
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(())
    }

    fn flows(&mut self) -> Result<FlowsDecl, InterchangeError> {
        self.expect_keyword("flows")?;
        let service = self.name("service")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut flows = Vec::new();
        while !matches!(self.peek().kind, TokenKind::RBrace) {
            if self.at_eof() {
                return Err(self.error_here("`}` closing the flows block"));
            }
            flows.push(self.flow()?);
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(FlowsDecl { service, flows })
    }

    fn flow(&mut self) -> Result<FlowDecl, InterchangeError> {
        let (order_value, start) = self.number("flow order")?;
        if order_value.fract() != 0.0 || order_value < 0.0 || order_value > u32::MAX as f64 {
            return Err(InterchangeError::parse(
                "a non-negative integer flow order",
                format!("`{order_value}`"),
                start,
            ));
        }
        let order = order_value as u32;
        self.expect(&TokenKind::Colon, "`:`")?;
        let verb = self.peek().clone();
        let kind = match verb.kind.as_name() {
            Some("collect") => {
                self.bump();
                let actor = self.name("actor")?;
                FlowKindAst::Collect { actor }
            }
            Some("disclose") => {
                self.bump();
                let from = self.name("actor")?;
                self.expect(&TokenKind::Arrow, "`->`")?;
                let to = self.name("actor")?;
                FlowKindAst::Disclose { from, to }
            }
            Some("create") => {
                self.bump();
                let actor = self.name("actor")?;
                self.expect(&TokenKind::Arrow, "`->`")?;
                let datastore = self.name("datastore")?;
                FlowKindAst::Create { actor, datastore }
            }
            Some("anonymise") => {
                self.bump();
                let actor = self.name("actor")?;
                self.expect(&TokenKind::Arrow, "`->`")?;
                let datastore = self.name("datastore")?;
                FlowKindAst::Anonymise { actor, datastore }
            }
            Some("read") => {
                self.bump();
                let actor = self.name("actor")?;
                self.expect(&TokenKind::BackArrow, "`<-`")?;
                let datastore = self.name("datastore")?;
                FlowKindAst::Read { actor, datastore }
            }
            _ => {
                return Err(
                    self.error_here("`collect`, `disclose`, `create`, `anonymise` or `read`")
                );
            }
        };
        let fields = self.braced_name_list("field")?;
        self.expect_keyword("for")?;
        let purpose = self.string("purpose")?;
        let span = start.merge(self.tokens[self.index.saturating_sub(1)].span);
        Ok(FlowDecl { order, kind, fields, purpose, span })
    }

    fn user(&mut self) -> Result<UserDecl, InterchangeError> {
        self.expect_keyword("user")?;
        let name = self.name("user")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut consents = Vec::new();
        let mut sensitivities = Vec::new();
        while !matches!(self.peek().kind, TokenKind::RBrace) {
            if self.at_eof() {
                return Err(self.error_here("`}` closing the user block"));
            }
            let token = self.peek().clone();
            match token.kind.as_name() {
                Some("consents") => {
                    self.bump();
                    consents.extend(self.name_list("service")?);
                }
                Some("sensitivity") => {
                    self.bump();
                    let field = self.name("field")?;
                    self.expect(&TokenKind::Equals, "`=`")?;
                    let value_token = self.peek().clone();
                    let sensitivity = match &value_token.kind {
                        TokenKind::Number(value) => {
                            self.bump();
                            SensitivityAst::Value(*value)
                        }
                        TokenKind::Ident(word)
                            if ["low", "medium", "high"].contains(&word.as_str()) =>
                        {
                            let word = word.clone();
                            self.bump();
                            SensitivityAst::Category(word)
                        }
                        _ => {
                            return Err(self.error_here(
                                "a sensitivity value in [0, 1] or `low`/`medium`/`high`",
                            ));
                        }
                    };
                    sensitivities.push((field, sensitivity));
                }
                _ => return Err(self.error_here("`consents` or `sensitivity`")),
            }
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(UserDecl { name, consents, sensitivities })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
    # A miniature clinic.
    system "Clinic" {
        actor Doctor : role "treats patients"
        actor Researcher : role
        field Name : identifier
        field Diagnosis : sensitive anonymised
        field "Date of Birth" : quasi
        schema EHRSchema { Name, "Date of Birth", Diagnosis }
        datastore EHR : EHRSchema
        datastore AnonEHR : EHRSchema anonymised
        service MedicalService { actors Doctor description "consultation" }
        policy {
            allow Doctor read, create on EHR
            allow Researcher read on AnonEHR fields { Diagnosis }
            role Clinician { read on EHR }
            assign Doctor -> Clinician
        }
        flows MedicalService {
            1: collect Doctor { Name, Diagnosis } for "consultation"
            2: create Doctor -> EHR { Name, Diagnosis } for "record keeping"
            3: read Researcher <- AnonEHR { Diagnosis } for "research"
        }
        user "patient-1" {
            consents MedicalService
            sensitivity Diagnosis = high
            sensitivity Name = 0.25
        }
    }
    "#;

    #[test]
    fn parses_the_small_clinic_document() {
        let ast = parse_ast(SMALL).unwrap();
        assert_eq!(ast.name, "Clinic");
        assert_eq!(ast.actors.len(), 2);
        assert_eq!(ast.fields.len(), 3);
        assert_eq!(ast.schemas.len(), 1);
        assert_eq!(ast.datastores.len(), 2);
        assert_eq!(ast.services.len(), 1);
        assert_eq!(ast.policy.allows.len(), 2);
        assert_eq!(ast.policy.roles.len(), 1);
        assert_eq!(ast.policy.assignments.len(), 1);
        assert_eq!(ast.flows.len(), 1);
        assert_eq!(ast.flows[0].flows.len(), 3);
        assert_eq!(ast.users.len(), 1);
    }

    #[test]
    fn actor_descriptions_and_kinds_are_recorded() {
        let ast = parse_ast(SMALL).unwrap();
        assert_eq!(ast.actors[0].description.as_deref(), Some("treats patients"));
        assert_eq!(ast.actors[0].kind, ActorKindAst::Role);
        assert_eq!(ast.actors[1].description, None);
    }

    #[test]
    fn quoted_names_preserve_spaces() {
        let ast = parse_ast(SMALL).unwrap();
        assert_eq!(ast.fields[2].name.text, "Date of Birth");
        assert!(ast.schemas[0].fields.iter().any(|f| f.text == "Date of Birth"));
    }

    #[test]
    fn field_anonymised_marker_is_parsed() {
        let ast = parse_ast(SMALL).unwrap();
        assert!(ast.fields[1].anonymised);
        assert!(!ast.fields[0].anonymised);
        assert!(ast.datastores[1].anonymised);
    }

    #[test]
    fn allow_rules_capture_permissions_and_field_restrictions() {
        let ast = parse_ast(SMALL).unwrap();
        let allow = &ast.policy.allows[0];
        assert_eq!(allow.permissions, vec![PermissionAst::Read, PermissionAst::Create]);
        assert!(allow.fields.is_none());
        let restricted = &ast.policy.allows[1];
        assert_eq!(restricted.fields.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn flow_statements_capture_order_kind_fields_and_purpose() {
        let ast = parse_ast(SMALL).unwrap();
        let flows = &ast.flows[0].flows;
        assert_eq!(flows[0].order, 1);
        assert!(matches!(flows[0].kind, FlowKindAst::Collect { .. }));
        assert!(matches!(flows[1].kind, FlowKindAst::Create { .. }));
        assert!(matches!(flows[2].kind, FlowKindAst::Read { .. }));
        assert_eq!(flows[2].purpose, "research");
        assert_eq!(flows[1].fields.len(), 2);
    }

    #[test]
    fn user_blocks_capture_consent_and_sensitivities() {
        let ast = parse_ast(SMALL).unwrap();
        let user = &ast.users[0];
        assert_eq!(user.name.text, "patient-1");
        assert_eq!(user.consents.len(), 1);
        assert_eq!(user.sensitivities.len(), 2);
        assert_eq!(user.sensitivities[0].1, SensitivityAst::Category("high".into()));
        assert_eq!(user.sensitivities[1].1, SensitivityAst::Value(0.25));
    }

    #[test]
    fn missing_system_keyword_is_reported() {
        let error = parse_ast("actor A : role").unwrap_err();
        assert!(error.to_string().contains("`system`"));
    }

    #[test]
    fn unknown_item_keyword_is_reported_with_position() {
        let error = parse_ast("system \"S\" {\n  widget W\n}").unwrap_err();
        assert_eq!(error.span().start.line, 2);
        assert!(error.to_string().contains("expected `actor`"));
    }

    #[test]
    fn missing_colon_in_actor_is_reported() {
        let error = parse_ast("system \"S\" { actor Doctor role }").unwrap_err();
        assert!(error.to_string().contains("`:`"));
    }

    #[test]
    fn invalid_actor_kind_is_reported() {
        let error = parse_ast("system \"S\" { actor Doctor : wizard }").unwrap_err();
        assert!(error.to_string().contains("`role`, `individual`, `subject` or `system`"));
    }

    #[test]
    fn fractional_flow_order_is_rejected() {
        let source = r#"system "S" {
            actor A : role
            field F : other
            schema Sc { F }
            datastore D : Sc
            service Svc { actors A }
            flows Svc { 1.5: collect A { F } for "x" }
        }"#;
        let error = parse_ast(source).unwrap_err();
        assert!(error.to_string().contains("integer flow order"));
    }

    #[test]
    fn read_flow_requires_back_arrow() {
        let source = r#"system "S" {
            flows Svc { 1: read A -> D { F } for "x" }
        }"#;
        let error = parse_ast(source).unwrap_err();
        assert!(error.to_string().contains("`<-`"));
    }

    #[test]
    fn trailing_tokens_after_system_block_are_rejected() {
        let error = parse_ast("system \"S\" { } extra").unwrap_err();
        assert!(error.to_string().contains("end of input"));
    }

    #[test]
    fn unterminated_system_block_is_rejected() {
        let error = parse_ast("system \"S\" { actor A : role").unwrap_err();
        assert!(error.to_string().contains("closing the system block"));
    }

    #[test]
    fn invalid_sensitivity_value_is_rejected() {
        let source = r#"system "S" { user U { sensitivity F = extreme } }"#;
        let error = parse_ast(source).unwrap_err();
        assert!(error.to_string().contains("sensitivity value"));
    }

    #[test]
    fn empty_system_parses() {
        let ast = parse_ast("system Demo { }").unwrap();
        assert_eq!(ast.name, "Demo");
        assert_eq!(ast.declaration_count(), 0);
    }

    #[test]
    fn multiple_policy_blocks_are_merged() {
        let source = r#"system "S" {
            actor A : role
            schema Sc { F }
            field F : other
            datastore D : Sc
            policy { allow A read on D }
            policy { allow A create on D }
        }"#;
        let ast = parse_ast(source).unwrap();
        assert_eq!(ast.policy.allows.len(), 2);
    }
}
