//! Source positions and spans used by the lexer, parser and diagnostics.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (counted in characters, not bytes).
    pub column: u32,
}

impl Position {
    /// The first position of any document.
    pub const START: Position = Position { line: 1, column: 1 };

    /// Creates a position.
    ///
    /// # Examples
    ///
    /// ```
    /// use privacy_interchange::Position;
    /// let p = Position::new(3, 14);
    /// assert_eq!(p.line, 3);
    /// assert_eq!(p.column, 14);
    /// ```
    pub fn new(line: u32, column: u32) -> Self {
        Position { line, column }
    }
}

impl Default for Position {
    fn default() -> Self {
        Position::START
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A contiguous region of source text, from `start` (inclusive) to `end`
/// (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Where the region starts.
    pub start: Position,
    /// Where the region ends (exclusive).
    pub end: Position,
}

impl Span {
    /// Creates a span from two positions.
    ///
    /// # Examples
    ///
    /// ```
    /// use privacy_interchange::{Position, Span};
    /// let span = Span::new(Position::new(1, 1), Position::new(1, 5));
    /// assert_eq!(span.start.column, 1);
    /// assert_eq!(span.end.column, 5);
    /// ```
    pub fn new(start: Position, end: Position) -> Self {
        Span { start, end }
    }

    /// A zero-width span at a single position.
    pub fn at(position: Position) -> Self {
        Span { start: position, end: position }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "{}", self.start)
        } else {
            write!(f, "{}-{}", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_orders_by_line_then_column() {
        assert!(Position::new(1, 9) < Position::new(2, 1));
        assert!(Position::new(3, 2) < Position::new(3, 4));
        assert_eq!(Position::new(2, 2), Position::new(2, 2));
    }

    #[test]
    fn span_merge_covers_both_operands() {
        let a = Span::new(Position::new(1, 4), Position::new(1, 8));
        let b = Span::new(Position::new(1, 2), Position::new(1, 6));
        let merged = a.merge(b);
        assert_eq!(merged.start, Position::new(1, 2));
        assert_eq!(merged.end, Position::new(1, 8));
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(Position::new(7, 3).to_string(), "7:3");
        let span = Span::new(Position::new(1, 1), Position::new(2, 1));
        assert_eq!(span.to_string(), "1:1-2:1");
        assert_eq!(Span::at(Position::new(4, 4)).to_string(), "4:4");
    }

    #[test]
    fn default_position_is_document_start() {
        assert_eq!(Position::default(), Position::START);
    }
}
