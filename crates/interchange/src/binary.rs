//! A small framed **binary codec** for persistable pipeline artefacts.
//!
//! The textual `.psm` format in this crate carries *models*; restartable
//! runtime components (the monitor snapshots of `privacy-runtime`) need a
//! compact, integrity-checked byte format for *state*. This module provides
//! the shared framing both directions agree on:
//!
//! ```text
//! ┌───────────┬──────────┬─────────────┬──────────────┬─────────┬─────────────┐
//! │ magic (4) │ kind (4) │ version u32 │ pay_len  u64 │ payload │ checksum u64│
//! └───────────┴──────────┴─────────────┴──────────────┴─────────┴─────────────┘
//! ```
//!
//! * the **magic** pins the codec family, the caller-chosen **kind** tag pins
//!   the artefact type (a monitor snapshot is never confused with some future
//!   artefact sharing the framing);
//! * the explicit **version** lets readers reject formats they do not speak
//!   with a typed error instead of misparsing them;
//! * the **payload length** makes truncation detectable before any payload
//!   read, and the trailing **word-folded FNV-1a checksum** (computed over
//!   everything before it) makes corruption — bit flips anywhere in the
//!   frame — detectable;
//! * every read returns a typed [`CodecError`]; no input, however mangled,
//!   panics a decoder.
//!
//! All integers are little-endian. The primitive vocabulary (bytes, bools,
//! `u32`/`u64`/`f64`, strings, `u64` slices) is exactly what the snapshot
//! formats need; higher-level structure lives with the artefact owner.

use std::error::Error;
use std::fmt;

/// The codec-family magic: "privacy-mde binary frame".
const MAGIC: [u8; 4] = *b"PMBF";

/// Frame bytes before the payload: magic, kind, version, payload length.
const HEADER_LEN: usize = 4 + 4 + 4 + 8;

/// Trailing checksum width.
const CHECKSUM_LEN: usize = 8;

/// FNV-1a 64-bit folded over 8-byte words (tail bytes singly) — the frame
/// checksum. Not cryptographic; it detects truncation remnants, bit flips
/// and transposition, which is the threat model for state files on trusted
/// storage.
///
/// Each step `h = (h ^ w) * prime` is a bijection of the running hash
/// (xor with a constant and multiplication by an odd prime are both
/// invertible mod 2⁶⁴), so any corruption confined to a single word — every
/// single-bit flip in particular — provably changes the final checksum.
/// Folding words instead of bytes keeps the serially dependent multiply
/// chain an eighth of the length, which matters because every framed
/// artefact — each wire message, snapshot, and checkpoint file — pays this
/// hash at both ends; megabyte checkpoints were spending more time in the
/// byte-at-a-time chain than in the fsync they guard.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for word in &mut words {
        hash ^= u64::from_le_bytes(word.try_into().expect("8 bytes"));
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &byte in words.remainder() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A typed decoding failure. Every variant names what was being read, so the
/// error message alone places the corruption.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input does not start with the codec magic, or carries a different
    /// artefact kind than the reader expects.
    BadMagic {
        /// The four kind bytes the reader expected (or the codec magic).
        expected: [u8; 4],
        /// What the input carried instead (zero-padded when shorter).
        found: [u8; 4],
    },
    /// The frame declares a format version this reader does not speak.
    UnsupportedVersion {
        /// The version the frame declares.
        found: u32,
        /// The version the reader supports.
        supported: u32,
    },
    /// The input ends before the declared content does.
    Truncated {
        /// How many bytes the current read needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// The trailing checksum does not match the frame contents.
    ChecksumMismatch {
        /// The checksum recorded in the frame.
        recorded: u64,
        /// The checksum computed over the received bytes.
        computed: u64,
    },
    /// The frame decoded cleanly but bytes remain after the declared payload
    /// was consumed.
    TrailingBytes {
        /// How many undeclared bytes follow the payload.
        extra: usize,
    },
    /// A field decoded to a value its type cannot carry (bad UTF-8, an
    /// out-of-range discriminant, an impossible count).
    Malformed {
        /// What was being decoded.
        what: &'static str,
        /// Why the value is impossible.
        detail: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected `{}`, found `{}`",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this reader speaks {supported})")
            }
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} more bytes, {available} available")
            }
            CodecError::ChecksumMismatch { recorded, computed } => write!(
                f,
                "checksum mismatch: frame records {recorded:#018x}, contents hash to \
                 {computed:#018x}"
            ),
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the declared payload")
            }
            CodecError::Malformed { what, detail } => write!(f, "malformed {what}: {detail}"),
        }
    }
}

impl Error for CodecError {}

/// Writes one framed artefact. Primitive writes append to the payload;
/// [`Encoder::finish`] seals the frame with the length and checksum.
///
/// # Examples
///
/// ```
/// use privacy_interchange::binary::{Decoder, Encoder};
///
/// let mut encoder = Encoder::new(*b"DEMO", 1);
/// encoder.u64(42);
/// encoder.str("hello");
/// let bytes = encoder.finish();
///
/// let mut decoder = Decoder::new(&bytes, *b"DEMO", 1).unwrap();
/// assert_eq!(decoder.u64().unwrap(), 42);
/// assert_eq!(decoder.string().unwrap(), "hello");
/// decoder.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct Encoder {
    kind: [u8; 4],
    version: u32,
    payload: Vec<u8>,
}

impl Encoder {
    /// Starts a frame of the given artefact kind and format version.
    pub fn new(kind: [u8; 4], version: u32) -> Encoder {
        Encoder { kind, version, payload: Vec::new() }
    }

    /// Appends one byte.
    pub fn u8(&mut self, value: u8) {
        self.payload.push(value);
    }

    /// Appends a bool as one byte (`0` / `1`).
    pub fn bool(&mut self, value: bool) {
        self.payload.push(u8::from(value));
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, value: u32) {
        self.payload.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, value: u64) {
        self.payload.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, value: &str) {
        self.u32(value.len() as u32);
        self.payload.extend_from_slice(value.as_bytes());
    }

    /// Appends a length-prefixed `u64` slice (bitset words, timelines).
    pub fn u64_slice(&mut self, values: &[u64]) {
        self.u32(values.len() as u32);
        for &value in values {
            self.u64(value);
        }
    }

    /// Appends a length-prefixed raw byte blob — the nesting primitive: a
    /// whole inner frame (e.g. a monitor snapshot) carried opaquely inside an
    /// outer frame (e.g. a checkpoint file or a supervisor message).
    pub fn bytes(&mut self, value: &[u8]) {
        self.u32(value.len() as u32);
        self.payload.extend_from_slice(value);
    }

    /// Seals the frame: header, payload, trailing checksum.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + CHECKSUM_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.kind);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// Reads one framed artefact. [`Decoder::new`] validates magic, kind,
/// version, declared length and checksum before any payload read;
/// [`Decoder::finish`] asserts the payload was consumed exactly.
#[derive(Debug)]
pub struct Decoder<'a> {
    payload: &'a [u8],
    offset: usize,
}

impl<'a> Decoder<'a> {
    /// Opens a frame, validating the envelope.
    ///
    /// # Errors
    ///
    /// Returns the typed [`CodecError`] describing the first envelope
    /// problem: wrong magic or kind, unsupported version, truncation
    /// (anywhere from the header to the checksum) or a checksum mismatch.
    pub fn new(bytes: &'a [u8], kind: [u8; 4], version: u32) -> Result<Decoder<'a>, CodecError> {
        let take4 = |at: usize| -> [u8; 4] {
            let mut out = [0u8; 4];
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = bytes.get(at + i).copied().unwrap_or(0);
            }
            out
        };
        if bytes.len() < HEADER_LEN {
            // Distinguish "not even our magic" from "our magic, cut short".
            if bytes.len() >= 4 && bytes[..4] != MAGIC {
                return Err(CodecError::BadMagic { expected: MAGIC, found: take4(0) });
            }
            return Err(CodecError::Truncated { needed: HEADER_LEN, available: bytes.len() });
        }
        if bytes[..4] != MAGIC {
            return Err(CodecError::BadMagic { expected: MAGIC, found: take4(0) });
        }
        if bytes[4..8] != kind {
            return Err(CodecError::BadMagic { expected: kind, found: take4(4) });
        }
        let found_version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if found_version != version {
            return Err(CodecError::UnsupportedVersion {
                found: found_version,
                supported: version,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes"));
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| CodecError::Truncated { needed: usize::MAX, available: bytes.len() })?;
        let framed_len = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(CHECKSUM_LEN))
            .ok_or(CodecError::Truncated { needed: usize::MAX, available: bytes.len() })?;
        if bytes.len() < framed_len {
            return Err(CodecError::Truncated { needed: framed_len, available: bytes.len() });
        }
        if bytes.len() > framed_len {
            return Err(CodecError::TrailingBytes { extra: bytes.len() - framed_len });
        }
        let recorded = u64::from_le_bytes(
            bytes[framed_len - CHECKSUM_LEN..framed_len].try_into().expect("8 bytes"),
        );
        let computed = fnv1a(&bytes[..framed_len - CHECKSUM_LEN]);
        if recorded != computed {
            return Err(CodecError::ChecksumMismatch { recorded, computed });
        }
        Ok(Decoder { payload: &bytes[HEADER_LEN..framed_len - CHECKSUM_LEN], offset: 0 })
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let available = self.payload.len() - self.offset;
        if available < len {
            return Err(CodecError::Truncated { needed: len, available });
        }
        let slice = &self.payload[self.offset..self.offset + len];
        self.offset += len;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than `0`/`1` is malformed.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Malformed {
                what: "bool",
                detail: format!("byte {other} is neither 0 nor 1"),
            }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|error| CodecError::Malformed { what: "string", detail: error.to_string() })
    }

    /// Reads a length-prefixed raw byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.u32()? as usize;
        // Bound the allocation by what the remaining payload can carry, so a
        // corrupted count cannot trigger a huge allocation before the
        // per-element reads fail.
        let available = (self.payload.len() - self.offset) / 8;
        if len > available {
            return Err(CodecError::Truncated { needed: len * 8, available: available * 8 });
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(self.u64()?);
        }
        Ok(values)
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TrailingBytes`] if undeclared payload remains —
    /// a decoder that stops early has misread the format.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.offset < self.payload.len() {
            return Err(CodecError::TrailingBytes { extra: self.payload.len() - self.offset });
        }
        Ok(())
    }
}

/// The largest frame [`read_frame`] will accept from a byte stream. Frames
/// on pipes are control messages and event batches, never bulk data; a
/// declared length past this is a corrupted or hostile header, and rejecting
/// it up front keeps a bad peer from driving a gigabyte allocation.
pub const MAX_STREAM_FRAME: u64 = 256 * 1024 * 1024;

/// A typed failure while reading a frame from a byte *stream* (a pipe or
/// socket, where the reader cannot see the whole input at once).
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameIoError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The stream carried bytes that cannot open as a frame: wrong magic, a
    /// truncated header/body, or a declared length past [`MAX_STREAM_FRAME`].
    Codec(CodecError),
}

impl fmt::Display for FrameIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameIoError::Io(error) => write!(f, "frame stream i/o failure: {error}"),
            FrameIoError::Codec(error) => write!(f, "unreadable stream frame: {error}"),
        }
    }
}

impl Error for FrameIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameIoError::Io(error) => Some(error),
            FrameIoError::Codec(error) => Some(error),
        }
    }
}

impl From<std::io::Error> for FrameIoError {
    fn from(error: std::io::Error) -> Self {
        FrameIoError::Io(error)
    }
}

impl From<CodecError> for FrameIoError {
    fn from(error: CodecError) -> Self {
        FrameIoError::Codec(error)
    }
}

/// Writes one sealed frame (the output of [`Encoder::finish`]) to a byte
/// stream and flushes it, so a peer blocked on [`read_frame`] sees the
/// message immediately.
///
/// # Errors
///
/// Returns [`FrameIoError::Io`] if the write or flush fails (e.g. the peer
/// closed its end of the pipe).
pub fn write_frame(writer: &mut impl std::io::Write, frame: &[u8]) -> Result<(), FrameIoError> {
    writer.write_all(frame)?;
    writer.flush()?;
    Ok(())
}

/// Reads exactly one frame from a byte stream, using the declared payload
/// length in the header to find the frame boundary. Returns `Ok(None)` on a
/// clean end-of-stream **at** a frame boundary (the peer closed after its
/// last complete message); EOF *inside* a frame is a typed truncation error.
///
/// The returned bytes are the whole frame, ready for [`Decoder::new`] —
/// which still performs the full validation (kind, version, checksum); this
/// function only checks what it must to delimit the stream (magic and a sane
/// declared length).
///
/// # Errors
///
/// Returns [`FrameIoError::Io`] for read failures and [`FrameIoError::Codec`]
/// for a stream that is not speaking this codec (bad magic, truncation
/// mid-frame, a declared length past [`MAX_STREAM_FRAME`]).
pub fn read_frame(reader: &mut impl std::io::Read) -> Result<Option<Vec<u8>>, FrameIoError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        let n = reader.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(CodecError::Truncated { needed: HEADER_LEN, available: filled }.into());
        }
        filled += n;
    }
    if header[..4] != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&header[..4]);
        return Err(CodecError::BadMagic { expected: MAGIC, found }.into());
    }
    let payload_len = u64::from_le_bytes(header[12..HEADER_LEN].try_into().expect("8 bytes"));
    if payload_len > MAX_STREAM_FRAME {
        return Err(CodecError::Malformed {
            what: "stream frame length",
            detail: format!("declared payload of {payload_len} bytes exceeds {MAX_STREAM_FRAME}"),
        }
        .into());
    }
    let rest = payload_len as usize + CHECKSUM_LEN;
    let mut frame = Vec::with_capacity(HEADER_LEN + rest);
    frame.extend_from_slice(&header);
    frame.resize(HEADER_LEN + rest, 0);
    let mut filled = HEADER_LEN;
    while filled < frame.len() {
        let n = reader.read(&mut frame[filled..])?;
        if n == 0 {
            return Err(CodecError::Truncated { needed: frame.len(), available: filled }.into());
        }
        filled += n;
    }
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIND: [u8; 4] = *b"TEST";

    fn sample_frame() -> Vec<u8> {
        let mut encoder = Encoder::new(KIND, 3);
        encoder.u8(7);
        encoder.bool(true);
        encoder.u32(123_456);
        encoder.u64(u64::MAX - 1);
        encoder.f64(0.75);
        encoder.str("snapshot");
        encoder.u64_slice(&[1, 2, 3]);
        encoder.finish()
    }

    #[test]
    fn round_trips_every_primitive() {
        let bytes = sample_frame();
        let mut decoder = Decoder::new(&bytes, KIND, 3).unwrap();
        assert_eq!(decoder.u8().unwrap(), 7);
        assert!(decoder.bool().unwrap());
        assert_eq!(decoder.u32().unwrap(), 123_456);
        assert_eq!(decoder.u64().unwrap(), u64::MAX - 1);
        assert_eq!(decoder.f64().unwrap(), 0.75);
        assert_eq!(decoder.string().unwrap(), "snapshot");
        assert_eq!(decoder.u64_slice().unwrap(), vec![1, 2, 3]);
        decoder.finish().unwrap();
    }

    #[test]
    fn rejects_wrong_magic_kind_and_version() {
        let bytes = sample_frame();
        assert!(matches!(
            Decoder::new(b"not a frame at all", KIND, 3),
            Err(CodecError::BadMagic { .. })
        ));
        assert!(matches!(
            Decoder::new(&bytes, *b"ELSE", 3),
            Err(CodecError::BadMagic { expected: [b'E', b'L', b'S', b'E'], .. })
        ));
        assert!(matches!(
            Decoder::new(&bytes, KIND, 4),
            Err(CodecError::UnsupportedVersion { found: 3, supported: 4 })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample_frame();
        for len in 0..bytes.len() {
            let error = Decoder::new(&bytes[..len], KIND, 3)
                .map(|_| ())
                .expect_err("truncated frame must not open");
            assert!(
                matches!(error, CodecError::Truncated { .. } | CodecError::BadMagic { .. }),
                "prefix of {len} bytes produced {error:?}"
            );
        }
    }

    #[test]
    fn rejects_any_single_bit_flip() {
        let bytes = sample_frame();
        for position in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[position] ^= 1 << bit;
                assert!(
                    Decoder::new(&flipped, KIND, 3).is_err(),
                    "flipping bit {bit} of byte {position} went undetected"
                );
            }
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = sample_frame();
        bytes.push(0);
        assert!(matches!(
            Decoder::new(&bytes, KIND, 3),
            Err(CodecError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn finish_rejects_unread_payload() {
        let bytes = sample_frame();
        let decoder = Decoder::new(&bytes, KIND, 3).unwrap();
        assert!(matches!(decoder.finish(), Err(CodecError::TrailingBytes { .. })));
    }

    #[test]
    fn malformed_values_are_typed_not_panics() {
        let mut encoder = Encoder::new(KIND, 1);
        encoder.u8(9); // neither 0 nor 1
        let bytes = encoder.finish();
        let mut decoder = Decoder::new(&bytes, KIND, 1).unwrap();
        assert!(matches!(decoder.bool(), Err(CodecError::Malformed { what: "bool", .. })));

        let mut encoder = Encoder::new(KIND, 1);
        encoder.u32(3);
        encoder.u8(0xFF); // invalid UTF-8 start, declared length 3 but 1 byte
        let bytes = encoder.finish();
        let mut decoder = Decoder::new(&bytes, KIND, 1).unwrap();
        assert!(matches!(decoder.string(), Err(CodecError::Truncated { .. })));

        // A corrupted element count larger than the remaining payload is
        // rejected before allocating.
        let mut encoder = Encoder::new(KIND, 1);
        encoder.u32(u32::MAX);
        let bytes = encoder.finish();
        let mut decoder = Decoder::new(&bytes, KIND, 1).unwrap();
        assert!(matches!(decoder.u64_slice(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn empty_payload_frames_round_trip() {
        let bytes = Encoder::new(KIND, 1).finish();
        let decoder = Decoder::new(&bytes, KIND, 1).unwrap();
        decoder.finish().unwrap();
    }

    #[test]
    fn byte_blobs_round_trip_and_nest_whole_frames() {
        let inner = sample_frame();
        let mut encoder = Encoder::new(KIND, 2);
        encoder.bytes(&inner);
        encoder.bytes(&[]);
        let bytes = encoder.finish();

        let mut decoder = Decoder::new(&bytes, KIND, 2).unwrap();
        let carried = decoder.bytes().unwrap();
        assert_eq!(carried, inner);
        assert_eq!(decoder.bytes().unwrap(), Vec::<u8>::new());
        decoder.finish().unwrap();

        // The carried blob opens as the original frame.
        let mut nested = Decoder::new(&carried, KIND, 3).unwrap();
        assert_eq!(nested.u8().unwrap(), 7);
    }

    #[test]
    fn truncated_byte_blob_is_typed() {
        let mut encoder = Encoder::new(KIND, 1);
        encoder.u32(50); // declares 50 blob bytes, provides none
        let bytes = encoder.finish();
        let mut decoder = Decoder::new(&bytes, KIND, 1).unwrap();
        assert!(matches!(decoder.bytes(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn stream_frames_round_trip_back_to_back() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &sample_frame()).unwrap();
        write_frame(&mut stream, &Encoder::new(KIND, 9).finish()).unwrap();

        let mut reader = &stream[..];
        let first = read_frame(&mut reader).unwrap().expect("first frame");
        assert_eq!(first, sample_frame());
        let second = read_frame(&mut reader).unwrap().expect("second frame");
        Decoder::new(&second, KIND, 9).unwrap().finish().unwrap();
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF at a boundary");
    }

    #[test]
    fn stream_eof_mid_frame_is_truncation_not_none() {
        let frame = sample_frame();
        for len in 1..frame.len() {
            let mut reader = &frame[..len];
            let error = read_frame(&mut reader).map(|_| ()).expect_err("partial frame");
            assert!(
                matches!(error, FrameIoError::Codec(CodecError::Truncated { .. })),
                "prefix of {len} bytes produced {error:?}"
            );
        }
    }

    #[test]
    fn stream_rejects_foreign_bytes_and_absurd_lengths() {
        let mut reader = &b"this is not a frame and never will be"[..];
        assert!(matches!(
            read_frame(&mut reader),
            Err(FrameIoError::Codec(CodecError::BadMagic { .. }))
        ));

        let mut header = Vec::new();
        header.extend_from_slice(b"PMBF");
        header.extend_from_slice(KIND.as_slice());
        header.extend_from_slice(&1u32.to_le_bytes());
        header.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut reader = &header[..];
        assert!(matches!(
            read_frame(&mut reader),
            Err(FrameIoError::Codec(CodecError::Malformed { what: "stream frame length", .. }))
        ));
    }
}
