//! A small framed **binary codec** for persistable pipeline artefacts.
//!
//! The textual `.psm` format in this crate carries *models*; restartable
//! runtime components (the monitor snapshots of `privacy-runtime`) need a
//! compact, integrity-checked byte format for *state*. This module provides
//! the shared framing both directions agree on:
//!
//! ```text
//! ┌───────────┬──────────┬─────────────┬──────────────┬─────────┬─────────────┐
//! │ magic (4) │ kind (4) │ version u32 │ pay_len  u64 │ payload │ checksum u64│
//! └───────────┴──────────┴─────────────┴──────────────┴─────────┴─────────────┘
//! ```
//!
//! * the **magic** pins the codec family, the caller-chosen **kind** tag pins
//!   the artefact type (a monitor snapshot is never confused with some future
//!   artefact sharing the framing);
//! * the explicit **version** lets readers reject formats they do not speak
//!   with a typed error instead of misparsing them;
//! * the **payload length** makes truncation detectable before any payload
//!   read, and the trailing **word-folded FNV-1a checksum** (computed over
//!   everything before it) makes corruption — bit flips anywhere in the
//!   frame — detectable;
//! * every read returns a typed [`CodecError`]; no input, however mangled,
//!   panics a decoder.
//!
//! All integers are little-endian. The primitive vocabulary (bytes, bools,
//! `u32`/`u64`/`f64`, strings, `u64` slices) is exactly what the snapshot
//! formats need; higher-level structure lives with the artefact owner.

use std::error::Error;
use std::fmt;

/// The codec-family magic: "privacy-mde binary frame".
const MAGIC: [u8; 4] = *b"PMBF";

/// Frame bytes before the payload: magic, kind, version, payload length.
const HEADER_LEN: usize = 4 + 4 + 4 + 8;

/// Trailing checksum width.
const CHECKSUM_LEN: usize = 8;

/// FNV-1a 64-bit folded over 8-byte words (tail bytes singly) — the frame
/// checksum. Not cryptographic; it detects truncation remnants, bit flips
/// and transposition, which is the threat model for state files on trusted
/// storage.
///
/// Each step `h = (h ^ w) * prime` is a bijection of the running hash
/// (xor with a constant and multiplication by an odd prime are both
/// invertible mod 2⁶⁴), so any corruption confined to a single word — every
/// single-bit flip in particular — provably changes the final checksum.
/// Folding words instead of bytes keeps the serially dependent multiply
/// chain an eighth of the length, which matters because every framed
/// artefact — each wire message, snapshot, and checkpoint file — pays this
/// hash at both ends; megabyte checkpoints were spending more time in the
/// byte-at-a-time chain than in the fsync they guard.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for word in &mut words {
        hash ^= u64::from_le_bytes(word.try_into().expect("8 bytes"));
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &byte in words.remainder() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The largest element count a row codec will materialise for one row
/// (2²² words or values — a 32 MB dense row). Rows describe per-user state;
/// a declared dimension past this is a corrupted or hostile header, and
/// rejecting it before the first row read keeps a bad frame from driving a
/// multi-gigabyte allocation out of a few sparse bytes.
pub const MAX_ROW_ELEMS: usize = 1 << 22;

/// A typed decoding failure. Every variant names what was being read, so the
/// error message alone places the corruption.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input does not start with the codec magic, or carries a different
    /// artefact kind than the reader expects.
    BadMagic {
        /// The four kind bytes the reader expected (or the codec magic).
        expected: [u8; 4],
        /// What the input carried instead (zero-padded when shorter).
        found: [u8; 4],
    },
    /// The frame declares a format version this reader does not speak.
    UnsupportedVersion {
        /// The version the frame declares.
        found: u32,
        /// The version the reader supports.
        supported: u32,
    },
    /// The input ends before the declared content does.
    Truncated {
        /// How many bytes the current read needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// The trailing checksum does not match the frame contents.
    ChecksumMismatch {
        /// The checksum recorded in the frame.
        recorded: u64,
        /// The checksum computed over the received bytes.
        computed: u64,
    },
    /// The frame decoded cleanly but bytes remain after the declared payload
    /// was consumed.
    TrailingBytes {
        /// How many undeclared bytes follow the payload.
        extra: usize,
    },
    /// A field decoded to a value its type cannot carry (bad UTF-8, an
    /// out-of-range discriminant, an impossible count).
    Malformed {
        /// What was being decoded.
        what: &'static str,
        /// Why the value is impossible.
        detail: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected `{}`, found `{}`",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this reader speaks {supported})")
            }
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} more bytes, {available} available")
            }
            CodecError::ChecksumMismatch { recorded, computed } => write!(
                f,
                "checksum mismatch: frame records {recorded:#018x}, contents hash to \
                 {computed:#018x}"
            ),
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the declared payload")
            }
            CodecError::Malformed { what, detail } => write!(f, "malformed {what}: {detail}"),
        }
    }
}

impl Error for CodecError {}

/// Writes one framed artefact. Primitive writes append to the payload;
/// [`Encoder::finish`] seals the frame with the length and checksum.
///
/// # Examples
///
/// ```
/// use privacy_interchange::binary::{Decoder, Encoder};
///
/// let mut encoder = Encoder::new(*b"DEMO", 1);
/// encoder.u64(42);
/// encoder.str("hello");
/// let bytes = encoder.finish();
///
/// let mut decoder = Decoder::new(&bytes, *b"DEMO", 1).unwrap();
/// assert_eq!(decoder.u64().unwrap(), 42);
/// assert_eq!(decoder.string().unwrap(), "hello");
/// decoder.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct Encoder {
    kind: [u8; 4],
    version: u32,
    payload: Vec<u8>,
}

impl Encoder {
    /// Starts a frame of the given artefact kind and format version.
    pub fn new(kind: [u8; 4], version: u32) -> Encoder {
        Encoder { kind, version, payload: Vec::new() }
    }

    /// Appends one byte.
    pub fn u8(&mut self, value: u8) {
        self.payload.push(value);
    }

    /// Appends a bool as one byte (`0` / `1`).
    pub fn bool(&mut self, value: bool) {
        self.payload.push(u8::from(value));
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, value: u32) {
        self.payload.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, value: u64) {
        self.payload.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, value: &str) {
        self.u32(value.len() as u32);
        self.payload.extend_from_slice(value.as_bytes());
    }

    /// Appends a length-prefixed `u64` slice (bitset words, timelines).
    pub fn u64_slice(&mut self, values: &[u64]) {
        self.u32(values.len() as u32);
        for &value in values {
            self.u64(value);
        }
    }

    /// Appends a length-prefixed raw byte blob — the nesting primitive: a
    /// whole inner frame (e.g. a monitor snapshot) carried opaquely inside an
    /// outer frame (e.g. a checkpoint file or a supervisor message).
    pub fn bytes(&mut self, value: &[u8]) {
        self.u32(value.len() as u32);
        self.payload.extend_from_slice(value);
    }

    /// Appends a canonical LEB128 varint (see [`put_varu`]).
    pub fn varu(&mut self, value: u64) {
        put_varu(&mut self.payload, value);
    }

    /// Appends an `f64` in the packed representation of [`put_f64_packed`].
    pub fn f64_packed(&mut self, value: f64) {
        put_f64_packed(&mut self.payload, value);
    }

    /// Appends a varint-length-prefixed UTF-8 string — one length byte
    /// instead of four for the short identifiers per-user rows are keyed by.
    pub fn str_var(&mut self, value: &str) {
        put_varu(&mut self.payload, value.len() as u64);
        self.payload.extend_from_slice(value.as_bytes());
    }

    /// Appends raw bytes verbatim, with **no** length prefix. The caller's
    /// format must make the extent recoverable (normally by pairing with
    /// [`Encoder::varu`]); this exists so pre-encoded rows can be moved into
    /// a frame without a second length field or a re-encode.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.payload.extend_from_slice(bytes);
    }

    /// Appends a `u64` row under the smallest of the three row encodings
    /// (see [`put_u64_row`]); returns the tag chosen.
    pub fn u64_row(&mut self, words: &[u64]) -> u8 {
        put_u64_row(&mut self.payload, words)
    }

    /// Appends an `f64` row under the smaller of the two value-row encodings
    /// (see [`put_f64_row`]); returns the tag chosen.
    pub fn f64_row(&mut self, values: &[f64]) -> u8 {
        put_f64_row(&mut self.payload, values)
    }

    /// Seals the frame: header, payload, trailing checksum.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + CHECKSUM_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.kind);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// Reads one framed artefact. [`Decoder::new`] validates magic, kind,
/// version, declared length and checksum before any payload read;
/// [`Decoder::finish`] asserts the payload was consumed exactly.
#[derive(Debug)]
pub struct Decoder<'a> {
    payload: &'a [u8],
    offset: usize,
}

impl<'a> Decoder<'a> {
    /// Opens a frame, validating the envelope.
    ///
    /// # Errors
    ///
    /// Returns the typed [`CodecError`] describing the first envelope
    /// problem: wrong magic or kind, unsupported version, truncation
    /// (anywhere from the header to the checksum) or a checksum mismatch.
    pub fn new(bytes: &'a [u8], kind: [u8; 4], version: u32) -> Result<Decoder<'a>, CodecError> {
        let take4 = |at: usize| -> [u8; 4] {
            let mut out = [0u8; 4];
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = bytes.get(at + i).copied().unwrap_or(0);
            }
            out
        };
        if bytes.len() < HEADER_LEN {
            // Distinguish "not even our magic" from "our magic, cut short".
            if bytes.len() >= 4 && bytes[..4] != MAGIC {
                return Err(CodecError::BadMagic { expected: MAGIC, found: take4(0) });
            }
            return Err(CodecError::Truncated { needed: HEADER_LEN, available: bytes.len() });
        }
        if bytes[..4] != MAGIC {
            return Err(CodecError::BadMagic { expected: MAGIC, found: take4(0) });
        }
        if bytes[4..8] != kind {
            return Err(CodecError::BadMagic { expected: kind, found: take4(4) });
        }
        let found_version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if found_version != version {
            return Err(CodecError::UnsupportedVersion {
                found: found_version,
                supported: version,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes"));
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| CodecError::Truncated { needed: usize::MAX, available: bytes.len() })?;
        let framed_len = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(CHECKSUM_LEN))
            .ok_or(CodecError::Truncated { needed: usize::MAX, available: bytes.len() })?;
        if bytes.len() < framed_len {
            return Err(CodecError::Truncated { needed: framed_len, available: bytes.len() });
        }
        if bytes.len() > framed_len {
            return Err(CodecError::TrailingBytes { extra: bytes.len() - framed_len });
        }
        let recorded = u64::from_le_bytes(
            bytes[framed_len - CHECKSUM_LEN..framed_len].try_into().expect("8 bytes"),
        );
        let computed = fnv1a(&bytes[..framed_len - CHECKSUM_LEN]);
        if recorded != computed {
            return Err(CodecError::ChecksumMismatch { recorded, computed });
        }
        Ok(Decoder { payload: &bytes[HEADER_LEN..framed_len - CHECKSUM_LEN], offset: 0 })
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let available = self.payload.len() - self.offset;
        if available < len {
            return Err(CodecError::Truncated { needed: len, available });
        }
        let slice = &self.payload[self.offset..self.offset + len];
        self.offset += len;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than `0`/`1` is malformed.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Malformed {
                what: "bool",
                detail: format!("byte {other} is neither 0 nor 1"),
            }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|error| CodecError::Malformed { what: "string", detail: error.to_string() })
    }

    /// Reads a length-prefixed raw byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a canonical LEB128 varint (see [`get_varu`]).
    pub fn varu(&mut self) -> Result<u64, CodecError> {
        get_varu(self.payload, &mut self.offset)
    }

    /// Reads an `f64` written by [`Encoder::f64_packed`].
    pub fn f64_packed(&mut self) -> Result<f64, CodecError> {
        get_f64_packed(self.payload, &mut self.offset)
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn string_var(&mut self) -> Result<String, CodecError> {
        let len = self.varu()?;
        let len = usize::try_from(len).map_err(|_| CodecError::Truncated {
            needed: usize::MAX,
            available: self.payload.len() - self.offset,
        })?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|error| CodecError::Malformed { what: "string", detail: error.to_string() })
    }

    /// Reads `len` raw bytes (the counterpart of [`Encoder::raw`]).
    pub fn raw(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        self.take(len)
    }

    /// Reads a `u64` row written by [`Encoder::u64_row`] into `row` (resized
    /// to `expected_words`); returns the encoding tag found.
    pub fn u64_row_into(
        &mut self,
        expected_words: usize,
        row: &mut Vec<u64>,
    ) -> Result<u8, CodecError> {
        get_u64_row(self.payload, &mut self.offset, expected_words, row)
    }

    /// Reads an `f64` row written by [`Encoder::f64_row`] into `row` (resized
    /// to `expected`); returns the encoding tag found.
    pub fn f64_row_into(&mut self, expected: usize, row: &mut Vec<f64>) -> Result<u8, CodecError> {
        get_f64_row(self.payload, &mut self.offset, expected, row)
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.u32()? as usize;
        // Bound the allocation by what the remaining payload can carry, so a
        // corrupted count cannot trigger a huge allocation before the
        // per-element reads fail.
        let available = (self.payload.len() - self.offset) / 8;
        if len > available {
            return Err(CodecError::Truncated { needed: len * 8, available: available * 8 });
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(self.u64()?);
        }
        Ok(values)
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TrailingBytes`] if undeclared payload remains —
    /// a decoder that stops early has misread the format.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.offset < self.payload.len() {
            return Err(CodecError::TrailingBytes { extra: self.payload.len() - self.offset });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Varints, packed floats, and the per-user row codec
// ---------------------------------------------------------------------------
//
// These operate on plain byte buffers rather than on `Encoder`/`Decoder`, so
// a row can be encoded once into its own `Vec<u8>` and then *moved* between
// frames (snapshot split/merge, shard handoff) without a decode/encode round
// trip. The `Encoder`/`Decoder` methods above are thin wrappers.

/// The encoded length of `value` as a LEB128 varint (1–10 bytes).
#[must_use]
pub fn varu_len(value: u64) -> usize {
    let bits = 64 - value.leading_zeros() as usize;
    bits.max(1).div_ceil(7)
}

/// Appends `value` as a canonical LEB128 varint: 7 value bits per byte,
/// low-order bits first, high bit set on every byte but the last.
pub fn put_varu(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a canonical LEB128 varint at `*offset`, advancing the offset past
/// it. Overlong encodings — a zero final byte after a continuation, or bits
/// past the 64th — are rejected as [`CodecError::Malformed`], so every value
/// has exactly one representation: the sizes computed at encode time stay
/// honest and re-encoding a decoded artefact is byte-identical.
pub fn get_varu(bytes: &[u8], offset: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*offset) else {
            return Err(CodecError::Truncated { needed: 1, available: 0 });
        };
        *offset += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Malformed {
                what: "varint",
                detail: "value does not fit in 64 bits".to_owned(),
            });
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            if byte == 0 && shift != 0 {
                return Err(CodecError::Malformed {
                    what: "varint",
                    detail: "overlong encoding (zero final byte)".to_owned(),
                });
            }
            return Ok(value);
        }
        shift += 7;
    }
}

/// The encoded length of `value` under [`put_f64_packed`].
#[must_use]
pub fn f64_packed_len(value: f64) -> usize {
    varu_len(value.to_bits().swap_bytes())
}

/// Appends an `f64` as the varint of its byte-swapped IEEE-754 bits.
///
/// "Round" doubles — `0.0`, `1.0`, `0.25`, the questionnaire-style
/// sensitivity grades per-user state is full of — have bit patterns whose
/// low-order bytes are zero; swapping moves the information into the low
/// bits, so such values pack into 1–3 varint bytes. Arbitrary doubles cost
/// at most 10 bytes.
pub fn put_f64_packed(out: &mut Vec<u8>, value: f64) {
    put_varu(out, value.to_bits().swap_bytes());
}

/// Reads an `f64` written by [`put_f64_packed`].
pub fn get_f64_packed(bytes: &[u8], offset: &mut usize) -> Result<f64, CodecError> {
    Ok(f64::from_bits(get_varu(bytes, offset)?.swap_bytes()))
}

/// `u64`-row encoding tag: every word stored raw (little-endian, no count —
/// the row width comes from the reader's declared dimensions).
pub const U64_ROW_DENSE: u8 = 0;
/// `u64`-row encoding tag: only the nonzero words, as strictly increasing
/// (varint word index, raw word) pairs.
pub const U64_ROW_INDEXED: u8 = 1;
/// `u64`-row encoding tag: maximal runs of set bits, as (varint gap from the
/// previous run's end, varint run length) pairs.
pub const U64_ROW_RUNS: u8 = 2;

/// The maximal runs of set bits in `words` as ascending (first bit, length)
/// pairs, runs merging across word boundaries.
fn bit_runs(words: &[u64]) -> Vec<(u64, u64)> {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for (index, &word) in words.iter().enumerate() {
        let base = index as u64 * 64;
        let mut w = word;
        while w != 0 {
            let start = u64::from(w.trailing_zeros());
            let len = u64::from((!(w >> start)).trailing_zeros());
            let run_start = base + start;
            match runs.last_mut() {
                Some((prev_start, prev_len)) if *prev_start + *prev_len == run_start => {
                    *prev_len += len;
                }
                _ => runs.push((run_start, len)),
            }
            if start + len >= 64 {
                break;
            }
            w &= !(((1u64 << len) - 1) << start);
        }
    }
    runs
}

/// Sets bits `start..end` in `row`, whole words at a time.
fn set_bit_range(row: &mut [u64], start: u64, end: u64) {
    let mut bit = start;
    while bit < end {
        let lo = bit % 64;
        let take = (64 - lo).min(end - bit);
        let mask = if take == 64 { u64::MAX } else { ((1u64 << take) - 1) << lo };
        row[(bit / 64) as usize] |= mask;
        bit += take;
    }
}

/// Appends `words` under whichever of the three row encodings is smallest —
/// dense raw words, (index, word) pairs for scattered-word rows, or bit
/// runs for clustered-bit rows — and returns the tag chosen. Ties break
/// toward the lower tag, so the choice is deterministic and re-encoding a
/// decoded row is byte-stable.
pub fn put_u64_row(out: &mut Vec<u8>, words: &[u64]) -> u8 {
    let mut nonzero = 0usize;
    let mut indexed_body = 0usize;
    for (index, &word) in words.iter().enumerate() {
        if word != 0 {
            nonzero += 1;
            indexed_body += varu_len(index as u64) + 8;
        }
    }
    let runs = bit_runs(words);
    let mut runs_size = 1 + varu_len(runs.len() as u64);
    let mut prev_end = 0u64;
    for &(start, len) in &runs {
        runs_size += varu_len(start - prev_end) + varu_len(len);
        prev_end = start + len;
    }
    let dense_size = 1 + 8 * words.len();
    let indexed_size = 1 + varu_len(nonzero as u64) + indexed_body;

    if dense_size <= indexed_size && dense_size <= runs_size {
        out.push(U64_ROW_DENSE);
        for &word in words {
            out.extend_from_slice(&word.to_le_bytes());
        }
        U64_ROW_DENSE
    } else if indexed_size <= runs_size {
        out.push(U64_ROW_INDEXED);
        put_varu(out, nonzero as u64);
        for (index, &word) in words.iter().enumerate() {
            if word != 0 {
                put_varu(out, index as u64);
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        U64_ROW_INDEXED
    } else {
        out.push(U64_ROW_RUNS);
        put_varu(out, runs.len() as u64);
        let mut prev_end = 0u64;
        for &(start, len) in &runs {
            put_varu(out, start - prev_end);
            put_varu(out, len);
            prev_end = start + len;
        }
        U64_ROW_RUNS
    }
}

/// Reads a row written by [`put_u64_row`] into `row` (cleared and resized to
/// `expected_words`), advancing `*offset` past it. Returns the encoding tag
/// found.
///
/// # Errors
///
/// Rejects, as typed [`CodecError`]s: widths past [`MAX_ROW_ELEMS`], unknown
/// tags, truncation, and every non-canonical sparse form — zero words or
/// non-increasing indices in an indexed row, empty / unmerged / overlapping
/// runs, or a run past the row end.
pub fn get_u64_row(
    bytes: &[u8],
    offset: &mut usize,
    expected_words: usize,
    row: &mut Vec<u64>,
) -> Result<u8, CodecError> {
    if expected_words > MAX_ROW_ELEMS {
        return Err(CodecError::Malformed {
            what: "u64 row",
            detail: format!("declared width of {expected_words} words exceeds {MAX_ROW_ELEMS}"),
        });
    }
    let Some(&tag) = bytes.get(*offset) else {
        return Err(CodecError::Truncated { needed: 1, available: 0 });
    };
    *offset += 1;
    match tag {
        U64_ROW_DENSE => {
            let needed = expected_words * 8;
            let available = bytes.len() - *offset;
            if available < needed {
                return Err(CodecError::Truncated { needed, available });
            }
            row.clear();
            row.extend(
                bytes[*offset..*offset + needed]
                    .chunks_exact(8)
                    .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("8 bytes"))),
            );
            *offset += needed;
        }
        U64_ROW_INDEXED => {
            let count = get_varu(bytes, offset)?;
            if count > expected_words as u64 {
                return Err(CodecError::Malformed {
                    what: "u64 row",
                    detail: format!("{count} indexed words in a {expected_words}-word row"),
                });
            }
            row.clear();
            row.resize(expected_words, 0);
            let mut prev: Option<u64> = None;
            for _ in 0..count {
                let index = get_varu(bytes, offset)?;
                if index >= expected_words as u64 {
                    return Err(CodecError::Malformed {
                        what: "u64 row",
                        detail: format!(
                            "word index {index} out of range (row has {expected_words} words)"
                        ),
                    });
                }
                if prev.is_some_and(|p| index <= p) {
                    return Err(CodecError::Malformed {
                        what: "u64 row",
                        detail: "word indices not strictly increasing".to_owned(),
                    });
                }
                let available = bytes.len() - *offset;
                if available < 8 {
                    return Err(CodecError::Truncated { needed: 8, available });
                }
                let word =
                    u64::from_le_bytes(bytes[*offset..*offset + 8].try_into().expect("8 bytes"));
                *offset += 8;
                if word == 0 {
                    return Err(CodecError::Malformed {
                        what: "u64 row",
                        detail: format!("zero word stored at index {index} of an indexed row"),
                    });
                }
                row[index as usize] = word;
                prev = Some(index);
            }
        }
        U64_ROW_RUNS => {
            let run_count = get_varu(bytes, offset)?;
            row.clear();
            row.resize(expected_words, 0);
            let total_bits = expected_words as u64 * 64;
            let mut cursor = 0u64;
            for i in 0..run_count {
                let gap = get_varu(bytes, offset)?;
                if i > 0 && gap == 0 {
                    return Err(CodecError::Malformed {
                        what: "u64 row",
                        detail: "adjacent bit runs not merged".to_owned(),
                    });
                }
                let len = get_varu(bytes, offset)?;
                if len == 0 {
                    return Err(CodecError::Malformed {
                        what: "u64 row",
                        detail: "empty bit run".to_owned(),
                    });
                }
                let (Some(start), Some(end)) = (
                    cursor.checked_add(gap),
                    cursor.checked_add(gap).and_then(|s| s.checked_add(len)),
                ) else {
                    return Err(CodecError::Malformed {
                        what: "u64 row",
                        detail: "bit-run position overflows".to_owned(),
                    });
                };
                if end > total_bits {
                    return Err(CodecError::Malformed {
                        what: "u64 row",
                        detail: format!(
                            "run of {len} bits at bit {start} passes the row end ({total_bits} \
                             bits)"
                        ),
                    });
                }
                set_bit_range(row, start, end);
                cursor = end;
            }
        }
        other => {
            return Err(CodecError::Malformed {
                what: "u64 row",
                detail: format!("unknown encoding tag {other}"),
            });
        }
    }
    Ok(tag)
}

/// `f64`-row encoding tag: every value stored packed ([`put_f64_packed`]).
pub const F64_ROW_DENSE: u8 = 0;
/// `f64`-row encoding tag: a packed base value (the row's most common) plus
/// strictly increasing (varint index, packed value) exceptions.
pub const F64_ROW_BASED: u8 = 1;

/// Appends `values` under the smaller of the two value-row encodings —
/// dense packed values, or a base value plus exceptions (1 + a few bytes for
/// the constant rows that dominate per-user sensitivity state) — and returns
/// the tag chosen. Values compare by bit pattern, so the decoded row is
/// bit-exact, NaNs included; ties break toward dense.
pub fn put_f64_row(out: &mut Vec<u8>, values: &[f64]) -> u8 {
    let mut dense_size = 1usize;
    for &value in values {
        dense_size += f64_packed_len(value);
    }
    let based = if values.is_empty() {
        None
    } else {
        // The mode by bit pattern: sort a copy, scan for the longest group
        // (smallest pattern on ties, keeping the choice deterministic).
        let mut bits: Vec<u64> = values.iter().map(|value| value.to_bits()).collect();
        bits.sort_unstable();
        let mut best = (bits[0], 0usize);
        let mut current = (bits[0], 0usize);
        for &b in &bits {
            if b == current.0 {
                current.1 += 1;
            } else {
                current = (b, 1);
            }
            if current.1 > best.1 {
                best = current;
            }
        }
        let base_bits = best.0;
        let mut size = 1 + f64_packed_len(f64::from_bits(base_bits));
        let mut exceptions = 0u64;
        let mut body = 0usize;
        for (index, &value) in values.iter().enumerate() {
            if value.to_bits() != base_bits {
                exceptions += 1;
                body += varu_len(index as u64) + f64_packed_len(value);
            }
        }
        size += varu_len(exceptions) + body;
        Some((base_bits, size))
    };
    match based {
        Some((base_bits, size)) if size < dense_size => {
            out.push(F64_ROW_BASED);
            put_f64_packed(out, f64::from_bits(base_bits));
            let exceptions = values.iter().filter(|value| value.to_bits() != base_bits).count();
            put_varu(out, exceptions as u64);
            for (index, &value) in values.iter().enumerate() {
                if value.to_bits() != base_bits {
                    put_varu(out, index as u64);
                    put_f64_packed(out, value);
                }
            }
            F64_ROW_BASED
        }
        _ => {
            out.push(F64_ROW_DENSE);
            for &value in values {
                put_f64_packed(out, value);
            }
            F64_ROW_DENSE
        }
    }
}

/// Reads a row written by [`put_f64_row`] into `row` (cleared and resized to
/// `expected`), advancing `*offset` past it. Returns the encoding tag found.
///
/// # Errors
///
/// Rejects, as typed [`CodecError`]s: widths past [`MAX_ROW_ELEMS`], unknown
/// tags, truncation, and exception lists that are over-long, out of range,
/// or not strictly increasing.
pub fn get_f64_row(
    bytes: &[u8],
    offset: &mut usize,
    expected: usize,
    row: &mut Vec<f64>,
) -> Result<u8, CodecError> {
    if expected > MAX_ROW_ELEMS {
        return Err(CodecError::Malformed {
            what: "f64 row",
            detail: format!("declared width of {expected} values exceeds {MAX_ROW_ELEMS}"),
        });
    }
    let Some(&tag) = bytes.get(*offset) else {
        return Err(CodecError::Truncated { needed: 1, available: 0 });
    };
    *offset += 1;
    match tag {
        F64_ROW_DENSE => {
            row.clear();
            for _ in 0..expected {
                row.push(get_f64_packed(bytes, offset)?);
            }
        }
        F64_ROW_BASED => {
            let base = get_f64_packed(bytes, offset)?;
            row.clear();
            row.resize(expected, base);
            let count = get_varu(bytes, offset)?;
            if count > expected as u64 {
                return Err(CodecError::Malformed {
                    what: "f64 row",
                    detail: format!("{count} exceptions in a {expected}-value row"),
                });
            }
            let mut prev: Option<u64> = None;
            for _ in 0..count {
                let index = get_varu(bytes, offset)?;
                if index >= expected as u64 {
                    return Err(CodecError::Malformed {
                        what: "f64 row",
                        detail: format!(
                            "exception index {index} out of range (row has {expected} values)"
                        ),
                    });
                }
                if prev.is_some_and(|p| index <= p) {
                    return Err(CodecError::Malformed {
                        what: "f64 row",
                        detail: "exception indices not strictly increasing".to_owned(),
                    });
                }
                row[index as usize] = get_f64_packed(bytes, offset)?;
                prev = Some(index);
            }
        }
        other => {
            return Err(CodecError::Malformed {
                what: "f64 row",
                detail: format!("unknown encoding tag {other}"),
            });
        }
    }
    Ok(tag)
}

/// The largest frame [`read_frame`] will accept from a byte stream. Frames
/// on pipes are control messages and event batches, never bulk data; a
/// declared length past this is a corrupted or hostile header, and rejecting
/// it up front keeps a bad peer from driving a gigabyte allocation.
pub const MAX_STREAM_FRAME: u64 = 256 * 1024 * 1024;

/// A typed failure while reading a frame from a byte *stream* (a pipe or
/// socket, where the reader cannot see the whole input at once).
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameIoError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The stream carried bytes that cannot open as a frame: wrong magic, a
    /// truncated header/body, or a declared length past [`MAX_STREAM_FRAME`].
    Codec(CodecError),
}

impl fmt::Display for FrameIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameIoError::Io(error) => write!(f, "frame stream i/o failure: {error}"),
            FrameIoError::Codec(error) => write!(f, "unreadable stream frame: {error}"),
        }
    }
}

impl Error for FrameIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameIoError::Io(error) => Some(error),
            FrameIoError::Codec(error) => Some(error),
        }
    }
}

impl From<std::io::Error> for FrameIoError {
    fn from(error: std::io::Error) -> Self {
        FrameIoError::Io(error)
    }
}

impl From<CodecError> for FrameIoError {
    fn from(error: CodecError) -> Self {
        FrameIoError::Codec(error)
    }
}

/// Writes one sealed frame (the output of [`Encoder::finish`]) to a byte
/// stream and flushes it, so a peer blocked on [`read_frame`] sees the
/// message immediately.
///
/// # Errors
///
/// Returns [`FrameIoError::Io`] if the write or flush fails (e.g. the peer
/// closed its end of the pipe).
pub fn write_frame(writer: &mut impl std::io::Write, frame: &[u8]) -> Result<(), FrameIoError> {
    writer.write_all(frame)?;
    writer.flush()?;
    Ok(())
}

/// Reads exactly one frame from a byte stream, using the declared payload
/// length in the header to find the frame boundary. Returns `Ok(None)` on a
/// clean end-of-stream **at** a frame boundary (the peer closed after its
/// last complete message); EOF *inside* a frame is a typed truncation error.
///
/// The returned bytes are the whole frame, ready for [`Decoder::new`] —
/// which still performs the full validation (kind, version, checksum); this
/// function only checks what it must to delimit the stream (magic and a sane
/// declared length).
///
/// # Errors
///
/// Returns [`FrameIoError::Io`] for read failures and [`FrameIoError::Codec`]
/// for a stream that is not speaking this codec (bad magic, truncation
/// mid-frame, a declared length past [`MAX_STREAM_FRAME`]).
pub fn read_frame(reader: &mut impl std::io::Read) -> Result<Option<Vec<u8>>, FrameIoError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        let n = reader.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(CodecError::Truncated { needed: HEADER_LEN, available: filled }.into());
        }
        filled += n;
    }
    if header[..4] != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&header[..4]);
        return Err(CodecError::BadMagic { expected: MAGIC, found }.into());
    }
    let payload_len = u64::from_le_bytes(header[12..HEADER_LEN].try_into().expect("8 bytes"));
    if payload_len > MAX_STREAM_FRAME {
        return Err(CodecError::Malformed {
            what: "stream frame length",
            detail: format!("declared payload of {payload_len} bytes exceeds {MAX_STREAM_FRAME}"),
        }
        .into());
    }
    let rest = payload_len as usize + CHECKSUM_LEN;
    let mut frame = Vec::with_capacity(HEADER_LEN + rest);
    frame.extend_from_slice(&header);
    frame.resize(HEADER_LEN + rest, 0);
    let mut filled = HEADER_LEN;
    while filled < frame.len() {
        let n = reader.read(&mut frame[filled..])?;
        if n == 0 {
            return Err(CodecError::Truncated { needed: frame.len(), available: filled }.into());
        }
        filled += n;
    }
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIND: [u8; 4] = *b"TEST";

    fn sample_frame() -> Vec<u8> {
        let mut encoder = Encoder::new(KIND, 3);
        encoder.u8(7);
        encoder.bool(true);
        encoder.u32(123_456);
        encoder.u64(u64::MAX - 1);
        encoder.f64(0.75);
        encoder.str("snapshot");
        encoder.u64_slice(&[1, 2, 3]);
        encoder.finish()
    }

    #[test]
    fn round_trips_every_primitive() {
        let bytes = sample_frame();
        let mut decoder = Decoder::new(&bytes, KIND, 3).unwrap();
        assert_eq!(decoder.u8().unwrap(), 7);
        assert!(decoder.bool().unwrap());
        assert_eq!(decoder.u32().unwrap(), 123_456);
        assert_eq!(decoder.u64().unwrap(), u64::MAX - 1);
        assert_eq!(decoder.f64().unwrap(), 0.75);
        assert_eq!(decoder.string().unwrap(), "snapshot");
        assert_eq!(decoder.u64_slice().unwrap(), vec![1, 2, 3]);
        decoder.finish().unwrap();
    }

    #[test]
    fn rejects_wrong_magic_kind_and_version() {
        let bytes = sample_frame();
        assert!(matches!(
            Decoder::new(b"not a frame at all", KIND, 3),
            Err(CodecError::BadMagic { .. })
        ));
        assert!(matches!(
            Decoder::new(&bytes, *b"ELSE", 3),
            Err(CodecError::BadMagic { expected: [b'E', b'L', b'S', b'E'], .. })
        ));
        assert!(matches!(
            Decoder::new(&bytes, KIND, 4),
            Err(CodecError::UnsupportedVersion { found: 3, supported: 4 })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample_frame();
        for len in 0..bytes.len() {
            let error = Decoder::new(&bytes[..len], KIND, 3)
                .map(|_| ())
                .expect_err("truncated frame must not open");
            assert!(
                matches!(error, CodecError::Truncated { .. } | CodecError::BadMagic { .. }),
                "prefix of {len} bytes produced {error:?}"
            );
        }
    }

    #[test]
    fn rejects_any_single_bit_flip() {
        let bytes = sample_frame();
        for position in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[position] ^= 1 << bit;
                assert!(
                    Decoder::new(&flipped, KIND, 3).is_err(),
                    "flipping bit {bit} of byte {position} went undetected"
                );
            }
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = sample_frame();
        bytes.push(0);
        assert!(matches!(
            Decoder::new(&bytes, KIND, 3),
            Err(CodecError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn finish_rejects_unread_payload() {
        let bytes = sample_frame();
        let decoder = Decoder::new(&bytes, KIND, 3).unwrap();
        assert!(matches!(decoder.finish(), Err(CodecError::TrailingBytes { .. })));
    }

    #[test]
    fn malformed_values_are_typed_not_panics() {
        let mut encoder = Encoder::new(KIND, 1);
        encoder.u8(9); // neither 0 nor 1
        let bytes = encoder.finish();
        let mut decoder = Decoder::new(&bytes, KIND, 1).unwrap();
        assert!(matches!(decoder.bool(), Err(CodecError::Malformed { what: "bool", .. })));

        let mut encoder = Encoder::new(KIND, 1);
        encoder.u32(3);
        encoder.u8(0xFF); // invalid UTF-8 start, declared length 3 but 1 byte
        let bytes = encoder.finish();
        let mut decoder = Decoder::new(&bytes, KIND, 1).unwrap();
        assert!(matches!(decoder.string(), Err(CodecError::Truncated { .. })));

        // A corrupted element count larger than the remaining payload is
        // rejected before allocating.
        let mut encoder = Encoder::new(KIND, 1);
        encoder.u32(u32::MAX);
        let bytes = encoder.finish();
        let mut decoder = Decoder::new(&bytes, KIND, 1).unwrap();
        assert!(matches!(decoder.u64_slice(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn empty_payload_frames_round_trip() {
        let bytes = Encoder::new(KIND, 1).finish();
        let decoder = Decoder::new(&bytes, KIND, 1).unwrap();
        decoder.finish().unwrap();
    }

    #[test]
    fn byte_blobs_round_trip_and_nest_whole_frames() {
        let inner = sample_frame();
        let mut encoder = Encoder::new(KIND, 2);
        encoder.bytes(&inner);
        encoder.bytes(&[]);
        let bytes = encoder.finish();

        let mut decoder = Decoder::new(&bytes, KIND, 2).unwrap();
        let carried = decoder.bytes().unwrap();
        assert_eq!(carried, inner);
        assert_eq!(decoder.bytes().unwrap(), Vec::<u8>::new());
        decoder.finish().unwrap();

        // The carried blob opens as the original frame.
        let mut nested = Decoder::new(&carried, KIND, 3).unwrap();
        assert_eq!(nested.u8().unwrap(), 7);
    }

    #[test]
    fn truncated_byte_blob_is_typed() {
        let mut encoder = Encoder::new(KIND, 1);
        encoder.u32(50); // declares 50 blob bytes, provides none
        let bytes = encoder.finish();
        let mut decoder = Decoder::new(&bytes, KIND, 1).unwrap();
        assert!(matches!(decoder.bytes(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn varints_round_trip_and_reject_overlong_forms() {
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::from(u32::MAX), u64::MAX];
        for &value in &values {
            let mut out = Vec::new();
            put_varu(&mut out, value);
            assert_eq!(out.len(), varu_len(value), "length formula for {value}");
            let mut offset = 0;
            assert_eq!(get_varu(&out, &mut offset).unwrap(), value);
            assert_eq!(offset, out.len());
        }
        // Overlong: 0x80 0x00 also "encodes" 0, but only 0x00 is canonical.
        let mut offset = 0;
        assert!(matches!(
            get_varu(&[0x80, 0x00], &mut offset),
            Err(CodecError::Malformed { what: "varint", .. })
        ));
        // 11 continuation bytes: more than 64 bits of payload.
        let mut offset = 0;
        assert!(matches!(
            get_varu(&[0xFF; 11], &mut offset),
            Err(CodecError::Malformed { what: "varint", .. })
        ));
        // Truncated mid-varint.
        let mut offset = 0;
        assert!(matches!(get_varu(&[0x80], &mut offset), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn packed_floats_round_trip_bit_exact_and_round_values_pack_small() {
        for value in
            [0.0, -0.0, 0.25, 0.5, 0.75, 1.0, -1.0, f64::NAN, f64::INFINITY, 1.0e300, 0.123_456_789]
        {
            let mut out = Vec::new();
            put_f64_packed(&mut out, value);
            let mut offset = 0;
            let back = get_f64_packed(&out, &mut offset).unwrap();
            assert_eq!(back.to_bits(), value.to_bits(), "packed f64 {value} not bit-exact");
        }
        assert_eq!(f64_packed_len(0.0), 1);
        assert!(f64_packed_len(0.25) <= 3, "quarter grades must stay small");
        assert!(f64_packed_len(1.0) <= 3);
    }

    fn u64_row_round_trip(words: &[u64], expect_tag: u8) {
        let mut out = Vec::new();
        let tag = put_u64_row(&mut out, words);
        assert_eq!(tag, expect_tag, "encoding choice for {words:?}");
        assert_eq!(out[0], expect_tag);
        let mut offset = 0;
        let mut row = Vec::new();
        assert_eq!(get_u64_row(&out, &mut offset, words.len(), &mut row).unwrap(), expect_tag);
        assert_eq!(offset, out.len(), "row decode must consume the row exactly");
        assert_eq!(row, words);
    }

    #[test]
    fn u64_rows_pick_the_smallest_encoding_and_round_trip() {
        // Scattered random-ish bits everywhere: dense wins.
        u64_row_round_trip(
            &[0x9E37_79B9_7F4A_7C15, 0xDEAD_BEEF_CAFE_F00D, 0x0123_4567_89AB_CDEF],
            U64_ROW_DENSE,
        );
        // Few nonzero words with scattered bits in a wide row: indexed wins.
        let mut scattered = vec![0u64; 64];
        scattered[17] = 0xAAAA_AAAA_AAAA_AAAA;
        u64_row_round_trip(&scattered, U64_ROW_INDEXED);
        // Empty row: 2 bytes either sparse way; the tie breaks to indexed.
        u64_row_round_trip(&[0u64; 64], U64_ROW_INDEXED);
        u64_row_round_trip(&[], U64_ROW_DENSE);
        // Clustered bits, including a run spanning word boundaries: runs win.
        let mut clustered = vec![0u64; 64];
        clustered[3] = u64::MAX;
        clustered[4] = u64::MAX;
        clustered[5] = 0b111;
        u64_row_round_trip(&clustered, U64_ROW_RUNS);
        // All ones is a single run.
        u64_row_round_trip(&[u64::MAX; 64], U64_ROW_RUNS);
        // Single low bit.
        u64_row_round_trip(&[1], U64_ROW_RUNS);
    }

    #[test]
    fn u64_row_decoder_rejects_non_canonical_and_hostile_rows() {
        let decode = |bytes: &[u8], expected: usize| {
            let mut offset = 0;
            let mut row = Vec::new();
            get_u64_row(bytes, &mut offset, expected, &mut row)
        };
        // Unknown tag.
        assert!(matches!(decode(&[9], 1), Err(CodecError::Malformed { what: "u64 row", .. })));
        // Truncated dense row.
        assert!(matches!(decode(&[U64_ROW_DENSE, 1, 2], 1), Err(CodecError::Truncated { .. })));
        // Indexed: count past the row width (rejected before any allocation).
        let mut bytes = vec![U64_ROW_INDEXED];
        put_varu(&mut bytes, 2);
        assert!(matches!(decode(&bytes, 1), Err(CodecError::Malformed { .. })));
        // Indexed: a zero word is not canonical.
        let mut bytes = vec![U64_ROW_INDEXED];
        put_varu(&mut bytes, 1);
        put_varu(&mut bytes, 0);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(decode(&bytes, 4), Err(CodecError::Malformed { .. })));
        // Indexed: indices must strictly increase.
        let mut bytes = vec![U64_ROW_INDEXED];
        put_varu(&mut bytes, 2);
        for _ in 0..2 {
            put_varu(&mut bytes, 1);
            bytes.extend_from_slice(&7u64.to_le_bytes());
        }
        assert!(matches!(decode(&bytes, 4), Err(CodecError::Malformed { .. })));
        // Runs: a run past the row end.
        let mut bytes = vec![U64_ROW_RUNS];
        put_varu(&mut bytes, 1);
        put_varu(&mut bytes, 0);
        put_varu(&mut bytes, 65);
        assert!(matches!(decode(&bytes, 1), Err(CodecError::Malformed { .. })));
        // Runs: empty and unmerged runs are not canonical.
        let mut bytes = vec![U64_ROW_RUNS];
        put_varu(&mut bytes, 1);
        put_varu(&mut bytes, 0);
        put_varu(&mut bytes, 0);
        assert!(matches!(decode(&bytes, 1), Err(CodecError::Malformed { .. })));
        let mut bytes = vec![U64_ROW_RUNS];
        put_varu(&mut bytes, 2);
        for _ in 0..2 {
            put_varu(&mut bytes, 0);
            put_varu(&mut bytes, 1);
        }
        assert!(matches!(decode(&bytes, 1), Err(CodecError::Malformed { .. })));
        // A width past MAX_ROW_ELEMS is rejected before any allocation.
        assert!(matches!(
            decode(&[U64_ROW_INDEXED, 0], MAX_ROW_ELEMS + 1),
            Err(CodecError::Malformed { .. })
        ));
    }

    fn f64_row_round_trip(values: &[f64], expect_tag: u8) {
        let mut out = Vec::new();
        let tag = put_f64_row(&mut out, values);
        assert_eq!(tag, expect_tag, "encoding choice for {values:?}");
        let mut offset = 0;
        let mut row = Vec::new();
        assert_eq!(get_f64_row(&out, &mut offset, values.len(), &mut row).unwrap(), expect_tag);
        assert_eq!(offset, out.len());
        let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        let back: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
        assert_eq!(back, bits, "f64 row not bit-exact");
    }

    #[test]
    fn f64_rows_pick_the_smaller_encoding_and_round_trip() {
        f64_row_round_trip(&[], F64_ROW_DENSE);
        f64_row_round_trip(&[0.25], F64_ROW_DENSE);
        f64_row_round_trip(&[0.0; 8], F64_ROW_BASED);
        f64_row_round_trip(&[0.0, 0.0, 0.75, 0.0, 0.0, 0.25, 0.0, 0.0], F64_ROW_BASED);
        f64_row_round_trip(&[0.1, 0.2, 0.3, 0.4], F64_ROW_DENSE);
    }

    #[test]
    fn f64_row_decoder_rejects_malformed_exception_lists() {
        let decode = |bytes: &[u8], expected: usize| {
            let mut offset = 0;
            let mut row = Vec::new();
            get_f64_row(bytes, &mut offset, expected, &mut row)
        };
        assert!(matches!(decode(&[7], 1), Err(CodecError::Malformed { what: "f64 row", .. })));
        // More exceptions than values.
        let mut bytes = vec![F64_ROW_BASED];
        put_f64_packed(&mut bytes, 0.0);
        put_varu(&mut bytes, 3);
        assert!(matches!(decode(&bytes, 2), Err(CodecError::Malformed { .. })));
        // Exception index out of range.
        let mut bytes = vec![F64_ROW_BASED];
        put_f64_packed(&mut bytes, 0.0);
        put_varu(&mut bytes, 1);
        put_varu(&mut bytes, 5);
        put_f64_packed(&mut bytes, 1.0);
        assert!(matches!(decode(&bytes, 2), Err(CodecError::Malformed { .. })));
        // Non-increasing exception indices.
        let mut bytes = vec![F64_ROW_BASED];
        put_f64_packed(&mut bytes, 0.0);
        put_varu(&mut bytes, 2);
        for _ in 0..2 {
            put_varu(&mut bytes, 0);
            put_f64_packed(&mut bytes, 1.0);
        }
        assert!(matches!(decode(&bytes, 3), Err(CodecError::Malformed { .. })));
        // Truncated mid-row.
        assert!(matches!(decode(&[F64_ROW_DENSE], 2), Err(CodecError::Truncated { .. })));
    }

    /// A frame exercising all three `u64` row encodings plus both `f64` row
    /// encodings, for the envelope-integrity sweeps below.
    fn row_frame() -> Vec<u8> {
        let mut encoder = Encoder::new(KIND, 5);
        encoder.varu(3);
        encoder.str_var("u123");
        assert_eq!(encoder.u64_row(&[0xDEAD_BEEF_0BAD_F00D, 0x0123_4567_89AB_CDEF]), U64_ROW_DENSE);
        let mut scattered = vec![0u64; 32];
        scattered[9] = 0x5555_5555_5555_5555;
        assert_eq!(encoder.u64_row(&scattered), U64_ROW_INDEXED);
        assert_eq!(encoder.u64_row(&[0b1111_0000]), U64_ROW_RUNS);
        assert_eq!(encoder.f64_row(&[0.5, 0.25, 0.125]), F64_ROW_DENSE);
        assert_eq!(encoder.f64_row(&[0.0; 6]), F64_ROW_BASED);
        encoder.finish()
    }

    fn decode_row_frame(bytes: &[u8]) -> Result<(), CodecError> {
        let mut decoder = Decoder::new(bytes, KIND, 5)?;
        assert_eq!(decoder.varu()?, 3);
        assert_eq!(decoder.string_var()?, "u123");
        let mut words = Vec::new();
        decoder.u64_row_into(2, &mut words)?;
        assert_eq!(words, vec![0xDEAD_BEEF_0BAD_F00D, 0x0123_4567_89AB_CDEF]);
        decoder.u64_row_into(32, &mut words)?;
        assert_eq!(words[9], 0x5555_5555_5555_5555);
        decoder.u64_row_into(1, &mut words)?;
        assert_eq!(words, vec![0b1111_0000]);
        let mut values = Vec::new();
        decoder.f64_row_into(3, &mut values)?;
        assert_eq!(values, vec![0.5, 0.25, 0.125]);
        decoder.f64_row_into(6, &mut values)?;
        assert_eq!(values, vec![0.0; 6]);
        decoder.finish()
    }

    #[test]
    fn row_frames_round_trip_and_reject_every_bit_flip_and_truncation() {
        let bytes = row_frame();
        decode_row_frame(&bytes).expect("intact row frame decodes");
        for len in 0..bytes.len() {
            assert!(decode_row_frame(&bytes[..len]).is_err(), "prefix of {len} bytes accepted");
        }
        for position in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[position] ^= 1 << bit;
                assert!(
                    decode_row_frame(&flipped).is_err(),
                    "flipping bit {bit} of byte {position} went undetected"
                );
            }
        }
    }

    #[test]
    fn stream_frames_round_trip_back_to_back() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &sample_frame()).unwrap();
        write_frame(&mut stream, &Encoder::new(KIND, 9).finish()).unwrap();

        let mut reader = &stream[..];
        let first = read_frame(&mut reader).unwrap().expect("first frame");
        assert_eq!(first, sample_frame());
        let second = read_frame(&mut reader).unwrap().expect("second frame");
        Decoder::new(&second, KIND, 9).unwrap().finish().unwrap();
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF at a boundary");
    }

    #[test]
    fn stream_eof_mid_frame_is_truncation_not_none() {
        let frame = sample_frame();
        for len in 1..frame.len() {
            let mut reader = &frame[..len];
            let error = read_frame(&mut reader).map(|_| ()).expect_err("partial frame");
            assert!(
                matches!(error, FrameIoError::Codec(CodecError::Truncated { .. })),
                "prefix of {len} bytes produced {error:?}"
            );
        }
    }

    #[test]
    fn stream_rejects_foreign_bytes_and_absurd_lengths() {
        let mut reader = &b"this is not a frame and never will be"[..];
        assert!(matches!(
            read_frame(&mut reader),
            Err(FrameIoError::Codec(CodecError::BadMagic { .. }))
        ));

        let mut header = Vec::new();
        header.extend_from_slice(b"PMBF");
        header.extend_from_slice(KIND.as_slice());
        header.extend_from_slice(&1u32.to_le_bytes());
        header.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut reader = &header[..];
        assert!(matches!(
            read_frame(&mut reader),
            Err(FrameIoError::Codec(CodecError::Malformed { what: "stream frame length", .. }))
        ));
    }
}
