//! Semantic resolution of a parsed [`ModelAst`] into a runnable
//! [`PrivacySystem`] plus the user profiles declared in the document.

use crate::ast::*;
use crate::error::InterchangeError;
use privacy_access::{FieldScope, Grant, Permission, Role, RoleGrant};
use privacy_core::{PrivacySystem, PrivacySystemBuilder};
use privacy_dataflow::DiagramBuilder;
use privacy_model::{
    Actor, DataField, DataSchema, DatastoreDecl, FieldId, SensitivityCategory, ServiceDecl,
    ServiceId, UserProfile,
};
use std::collections::BTreeSet;

/// The result of resolving a `.psm` document.
#[derive(Debug, Clone)]
pub struct ModelDocument {
    /// The system name given in the `system "<name>"` header.
    pub name: String,
    /// The resolved system model (catalog + data flows + access policy).
    pub system: PrivacySystem,
    /// User profiles declared with `user` blocks, in source order.
    pub users: Vec<UserProfile>,
}

impl ModelDocument {
    /// Looks up a declared user profile by identifier.
    pub fn user(&self, id: &str) -> Option<&UserProfile> {
        self.users.iter().find(|u| u.id().as_str() == id)
    }
}

/// Resolves a parsed AST into a [`ModelDocument`].
///
/// # Errors
///
/// Returns an [`InterchangeError`] pointing at the first declaration that
/// references an unknown element, re-declares an existing one, or fails the
/// substrate crates' own validation.
///
/// # Examples
///
/// ```
/// use privacy_interchange::{parse_ast, resolve_ast};
/// let ast = parse_ast(
///     "system S { actor A : role field F : other schema Sc { F } \
///      datastore D : Sc service Svc { actors A } \
///      flows Svc { 1: collect A { F } for \"x\" } }",
/// ).unwrap();
/// let document = resolve_ast(&ast).unwrap();
/// assert_eq!(document.system.catalog().actor_count(), 1);
/// ```
pub fn resolve_ast(ast: &ModelAst) -> Result<ModelDocument, InterchangeError> {
    Resolver::new(ast).run()
}

struct Resolver<'a> {
    ast: &'a ModelAst,
    builder: PrivacySystemBuilder,
    actors: BTreeSet<String>,
    fields: BTreeSet<String>,
    schemas: BTreeSet<String>,
    datastores: BTreeSet<String>,
    services: BTreeSet<String>,
    roles: BTreeSet<String>,
}

impl<'a> Resolver<'a> {
    fn new(ast: &'a ModelAst) -> Self {
        Resolver {
            ast,
            builder: PrivacySystem::builder(),
            actors: BTreeSet::new(),
            fields: BTreeSet::new(),
            schemas: BTreeSet::new(),
            datastores: BTreeSet::new(),
            services: BTreeSet::new(),
            roles: BTreeSet::new(),
        }
    }

    fn run(mut self) -> Result<ModelDocument, InterchangeError> {
        self.catalog()?;
        self.policy()?;
        self.flows()?;
        let users = self.users()?;
        let system = self
            .builder
            .build()
            .map_err(|e| InterchangeError::model(e, crate::span::Span::default()))?;
        Ok(ModelDocument { name: self.ast.name.clone(), system, users })
    }

    fn check_known(
        &self,
        set: &BTreeSet<String>,
        name: &Name,
        what: &str,
    ) -> Result<(), InterchangeError> {
        if set.contains(&name.text) {
            Ok(())
        } else {
            Err(InterchangeError::resolve(format!("unknown {what} `{}`", name.text), name.span))
        }
    }

    fn check_field(&self, name: &Name) -> Result<(), InterchangeError> {
        self.check_known(&self.fields, name, "field")
    }

    fn catalog(&mut self) -> Result<(), InterchangeError> {
        for decl in &self.ast.actors {
            let kind_ctor: fn(&str) -> Actor = match decl.kind {
                ActorKindAst::Role => |id| Actor::role(id),
                ActorKindAst::Individual => |id| Actor::individual(id),
                ActorKindAst::DataSubject => |id| Actor::data_subject(id),
                ActorKindAst::System => |id| Actor::system(id),
            };
            let mut actor = kind_ctor(&decl.name.text);
            if let Some(description) = &decl.description {
                actor = actor.with_description(description.clone());
            }
            self.builder
                .catalog_mut()
                .add_actor(actor)
                .map_err(|e| InterchangeError::model(e, decl.name.span))?;
            self.actors.insert(decl.name.text.clone());
        }

        for decl in &self.ast.fields {
            let field = match decl.kind {
                FieldKindAst::Identifier => DataField::identifier(decl.name.text.as_str()),
                FieldKindAst::QuasiIdentifier => {
                    DataField::quasi_identifier(decl.name.text.as_str())
                }
                FieldKindAst::Sensitive => DataField::sensitive(decl.name.text.as_str()),
                FieldKindAst::Other => DataField::other(decl.name.text.as_str()),
            };
            if decl.anonymised {
                self.builder
                    .catalog_mut()
                    .add_field_with_anonymised(field)
                    .map_err(|e| InterchangeError::model(e, decl.name.span))?;
                self.fields
                    .insert(FieldId::new(decl.name.text.as_str()).anonymised().into_string());
            } else {
                self.builder
                    .catalog_mut()
                    .add_field(field)
                    .map_err(|e| InterchangeError::model(e, decl.name.span))?;
            }
            self.fields.insert(decl.name.text.clone());
        }

        for decl in &self.ast.schemas {
            for field in &decl.fields {
                self.check_field(field)?;
            }
            let schema = DataSchema::new(
                decl.name.text.as_str(),
                decl.fields.iter().map(|f| FieldId::new(f.text.as_str())),
            );
            self.builder
                .catalog_mut()
                .add_schema(schema)
                .map_err(|e| InterchangeError::model(e, decl.name.span))?;
            self.schemas.insert(decl.name.text.clone());
        }

        for decl in &self.ast.datastores {
            self.check_known(&self.schemas, &decl.schema, "schema")?;
            let datastore = if decl.anonymised {
                DatastoreDecl::anonymised(decl.name.text.as_str(), decl.schema.text.as_str())
            } else {
                DatastoreDecl::new(decl.name.text.as_str(), decl.schema.text.as_str())
            };
            self.builder
                .catalog_mut()
                .add_datastore(datastore)
                .map_err(|e| InterchangeError::model(e, decl.name.span))?;
            self.datastores.insert(decl.name.text.clone());
        }

        for decl in &self.ast.services {
            for actor in &decl.actors {
                self.check_known(&self.actors, actor, "actor")?;
            }
            let mut service = ServiceDecl::new(
                decl.name.text.as_str(),
                decl.actors.iter().map(|a| privacy_model::ActorId::new(a.text.as_str())),
            );
            if let Some(description) = &decl.description {
                service = service.with_description(description.clone());
            }
            self.builder
                .catalog_mut()
                .add_service(service)
                .map_err(|e| InterchangeError::model(e, decl.name.span))?;
            self.services.insert(decl.name.text.clone());
        }
        Ok(())
    }

    fn convert_permissions(permissions: &[PermissionAst]) -> Vec<Permission> {
        permissions
            .iter()
            .map(|p| match p {
                PermissionAst::Read => Permission::Read,
                PermissionAst::Create => Permission::Create,
                PermissionAst::Delete => Permission::Delete,
                PermissionAst::Disclose => Permission::Disclose,
            })
            .collect()
    }

    fn convert_scope(&self, fields: &Option<Vec<Name>>) -> Result<FieldScope, InterchangeError> {
        match fields {
            None => Ok(FieldScope::all()),
            Some(names) => {
                for name in names {
                    self.check_field(name)?;
                }
                Ok(FieldScope::fields(names.iter().map(|n| FieldId::new(n.text.as_str()))))
            }
        }
    }

    fn policy(&mut self) -> Result<(), InterchangeError> {
        // ACL grants.
        for allow in &self.ast.policy.allows {
            self.check_known(&self.actors, &allow.actor, "actor")?;
            self.check_known(&self.datastores, &allow.datastore, "datastore")?;
            let scope = self.convert_scope(&allow.fields)?;
            let grant = Grant::new(
                allow.actor.text.as_str(),
                allow.datastore.text.as_str(),
                scope,
                Self::convert_permissions(&allow.permissions),
            );
            self.builder.policy_mut().acl_mut().grant(grant);
        }

        // RBAC roles.
        for role_decl in &self.ast.policy.roles {
            let mut role = Role::new(role_decl.name.text.as_str());
            for grant in &role_decl.grants {
                self.check_known(&self.datastores, &grant.datastore, "datastore")?;
                let scope = self.convert_scope(&grant.fields)?;
                role = role.with_grant(RoleGrant::new(
                    grant.datastore.text.as_str(),
                    scope,
                    Self::convert_permissions(&grant.permissions),
                ));
            }
            self.builder
                .policy_mut()
                .rbac_mut()
                .add_role(role)
                .map_err(|e| InterchangeError::model(e, role_decl.name.span))?;
            self.roles.insert(role_decl.name.text.clone());
        }

        // RBAC assignments.
        for assign in &self.ast.policy.assignments {
            self.check_known(&self.actors, &assign.actor, "actor")?;
            self.check_known(&self.roles, &assign.role, "role")?;
            self.builder
                .policy_mut()
                .rbac_mut()
                .assign(assign.actor.text.as_str(), assign.role.text.as_str())
                .map_err(|e| InterchangeError::model(e, assign.role.span))?;
        }
        Ok(())
    }

    fn flows(&mut self) -> Result<(), InterchangeError> {
        for block in &self.ast.flows {
            self.check_known(&self.services, &block.service, "service")?;
            let mut diagram = DiagramBuilder::new(block.service.text.as_str());
            for flow in &block.flows {
                for field in &flow.fields {
                    self.check_field(field)?;
                }
                let fields: Vec<FieldId> =
                    flow.fields.iter().map(|f| FieldId::new(f.text.as_str())).collect();
                diagram = match &flow.kind {
                    FlowKindAst::Collect { actor } => {
                        self.check_known(&self.actors, actor, "actor")?;
                        diagram.collect(
                            actor.text.as_str(),
                            fields,
                            flow.purpose.as_str(),
                            flow.order,
                        )
                    }
                    FlowKindAst::Disclose { from, to } => {
                        self.check_known(&self.actors, from, "actor")?;
                        self.check_known(&self.actors, to, "actor")?;
                        diagram.disclose(
                            from.text.as_str(),
                            to.text.as_str(),
                            fields,
                            flow.purpose.as_str(),
                            flow.order,
                        )
                    }
                    FlowKindAst::Create { actor, datastore } => {
                        self.check_known(&self.actors, actor, "actor")?;
                        self.check_known(&self.datastores, datastore, "datastore")?;
                        diagram.create(
                            actor.text.as_str(),
                            datastore.text.as_str(),
                            fields,
                            flow.purpose.as_str(),
                            flow.order,
                        )
                    }
                    FlowKindAst::Anonymise { actor, datastore } => {
                        self.check_known(&self.actors, actor, "actor")?;
                        self.check_known(&self.datastores, datastore, "datastore")?;
                        diagram.anonymise(
                            actor.text.as_str(),
                            datastore.text.as_str(),
                            fields,
                            flow.purpose.as_str(),
                            flow.order,
                        )
                    }
                    FlowKindAst::Read { actor, datastore } => {
                        self.check_known(&self.actors, actor, "actor")?;
                        self.check_known(&self.datastores, datastore, "datastore")?;
                        diagram.read(
                            actor.text.as_str(),
                            datastore.text.as_str(),
                            fields,
                            flow.purpose.as_str(),
                            flow.order,
                        )
                    }
                }
                .map_err(|e| InterchangeError::model(e, flow.span))?;
            }
            self.builder
                .add_diagram(diagram.build())
                .map_err(|e| InterchangeError::model(e, block.service.span))?;
        }
        Ok(())
    }

    fn users(&mut self) -> Result<Vec<UserProfile>, InterchangeError> {
        let mut users = Vec::new();
        for decl in &self.ast.users {
            let mut profile = UserProfile::new(decl.name.text.as_str());
            for service in &decl.consents {
                self.check_known(&self.services, service, "service")?;
                profile = profile.consents_to(ServiceId::new(service.text.as_str()));
            }
            for (field, sensitivity) in &decl.sensitivities {
                self.check_field(field)?;
                let field_id = FieldId::new(field.text.as_str());
                profile = match sensitivity {
                    SensitivityAst::Category(word) => {
                        let category = match word.as_str() {
                            "low" => SensitivityCategory::Low,
                            "medium" => SensitivityCategory::Medium,
                            _ => SensitivityCategory::High,
                        };
                        profile.with_category_sensitivity(field_id, category)
                    }
                    SensitivityAst::Value(value) => {
                        let sensitivity = privacy_model::Sensitivity::new(*value)
                            .map_err(|e| InterchangeError::model(e, field.span))?;
                        profile.with_sensitivity(field_id, sensitivity)
                    }
                };
            }
            users.push(profile);
        }
        Ok(users)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ast;

    const CLINIC: &str = r#"
    system "Clinic" {
        actor Doctor : role
        actor Researcher : role
        field Name : identifier
        field Diagnosis : sensitive anonymised
        schema EHRSchema { Name, Diagnosis }
        schema AnonSchema { Diagnosis_anon }
        datastore EHR : EHRSchema
        datastore AnonEHR : AnonSchema anonymised
        service MedicalService { actors Doctor }
        service ResearchService { actors Researcher }
        policy {
            allow Doctor read, create on EHR
            allow Researcher read on AnonEHR
            role Auditor { read on EHR fields { Name } }
            assign Researcher -> Auditor
        }
        flows MedicalService {
            1: collect Doctor { Name, Diagnosis } for "consultation"
            2: create Doctor -> EHR { Name, Diagnosis } for "record keeping"
        }
        flows ResearchService {
            1: anonymise Doctor -> AnonEHR { Diagnosis_anon } for "release"
            2: read Researcher <- AnonEHR { Diagnosis_anon } for "research"
        }
        user "patient-1" {
            consents MedicalService
            sensitivity Diagnosis = high
            sensitivity Name = 0.2
        }
    }
    "#;

    fn resolve(source: &str) -> Result<ModelDocument, InterchangeError> {
        resolve_ast(&parse_ast(source).unwrap())
    }

    #[test]
    fn resolves_the_clinic_document_end_to_end() {
        let document = resolve(CLINIC).unwrap();
        assert_eq!(document.name, "Clinic");
        let catalog = document.system.catalog();
        assert_eq!(catalog.actor_count(), 2);
        // Diagnosis declared `anonymised` registers its _anon counterpart too.
        assert_eq!(catalog.field_count(), 3);
        assert_eq!(catalog.datastore_count(), 2);
        assert_eq!(catalog.service_count(), 2);
        assert_eq!(document.system.dataflows().len(), 2);
        assert_eq!(document.users.len(), 1);
    }

    #[test]
    fn resolved_policy_answers_access_queries() {
        let document = resolve(CLINIC).unwrap();
        let policy = document.system.policy();
        let ehr = privacy_model::DatastoreId::new("EHR");
        let diagnosis = FieldId::new("Diagnosis");
        let name = FieldId::new("Name");
        assert!(policy.can(
            &privacy_model::ActorId::new("Doctor"),
            Permission::Read,
            &ehr,
            &diagnosis
        ));
        // The researcher's RBAC role only covers the Name field of the EHR.
        assert!(policy.can(
            &privacy_model::ActorId::new("Researcher"),
            Permission::Read,
            &ehr,
            &name
        ));
        assert!(!policy.can(
            &privacy_model::ActorId::new("Researcher"),
            Permission::Read,
            &ehr,
            &diagnosis
        ));
    }

    #[test]
    fn resolved_users_carry_consent_and_sensitivities() {
        let document = resolve(CLINIC).unwrap();
        let user = document.user("patient-1").unwrap();
        assert!(user.consent().includes(&ServiceId::new("MedicalService")));
        assert!(!user.consent().includes(&ServiceId::new("ResearchService")));
        assert_eq!(
            user.sensitivities().sensitivity(&FieldId::new("Diagnosis")).category(),
            SensitivityCategory::High
        );
        assert!(
            (user.sensitivities().sensitivity(&FieldId::new("Name")).value() - 0.2).abs() < 1e-9
        );
    }

    #[test]
    fn resolved_system_generates_an_lts() {
        let document = resolve(CLINIC).unwrap();
        let lts = document.system.generate_lts().unwrap();
        assert!(lts.state_count() > 1);
        assert!(lts.transition_count() >= 4);
    }

    #[test]
    fn unknown_field_in_schema_is_reported_with_location() {
        let source = r#"system S {
            field Name : identifier
            schema Sc { Name, Missing }
        }"#;
        let error = resolve(source).unwrap_err();
        assert!(error.to_string().contains("unknown field `Missing`"));
        assert_eq!(error.span().start.line, 3);
    }

    #[test]
    fn unknown_actor_in_service_is_reported() {
        let source = r#"system S { service Svc { actors Ghost } }"#;
        let error = resolve(source).unwrap_err();
        assert!(error.to_string().contains("unknown actor `Ghost`"));
    }

    #[test]
    fn unknown_datastore_in_allow_rule_is_reported() {
        let source = r#"system S {
            actor A : role
            policy { allow A read on Nowhere }
        }"#;
        let error = resolve(source).unwrap_err();
        assert!(error.to_string().contains("unknown datastore `Nowhere`"));
    }

    #[test]
    fn assignment_to_undefined_role_is_reported() {
        let source = r#"system S {
            actor A : role
            policy { assign A -> Phantom }
        }"#;
        let error = resolve(source).unwrap_err();
        assert!(error.to_string().contains("unknown role `Phantom`"));
    }

    #[test]
    fn duplicate_actor_is_reported_as_a_model_error() {
        let source = r#"system S { actor A : role actor A : role }"#;
        let error = resolve(source).unwrap_err();
        assert!(error.to_string().contains("duplicate actor"));
    }

    #[test]
    fn out_of_range_sensitivity_is_rejected() {
        let source = r#"system S {
            actor A : role
            field F : other
            schema Sc { F }
            datastore D : Sc
            service Svc { actors A }
            user U { consents Svc sensitivity F = 1.5 }
        }"#;
        let error = resolve(source).unwrap_err();
        assert!(error.to_string().contains("model error"));
    }

    #[test]
    fn consent_to_unknown_service_is_rejected() {
        let source = r#"system S { user U { consents Ghost } }"#;
        let error = resolve(source).unwrap_err();
        assert!(error.to_string().contains("unknown service `Ghost`"));
    }
}
