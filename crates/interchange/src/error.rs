//! Diagnostics raised while lexing, parsing or resolving `.psm` documents.

use crate::span::Span;
use privacy_model::ModelError;
use std::error::Error;
use std::fmt;

/// The category of an [`InterchangeError`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InterchangeErrorKind {
    /// A character sequence could not be tokenised.
    Lex {
        /// Description of the offending input.
        message: String,
    },
    /// The token stream did not match the grammar.
    Parse {
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// The document was syntactically valid but semantically inconsistent
    /// (e.g. a flow references an undeclared field).
    Resolve {
        /// Description of the inconsistency.
        message: String,
    },
    /// A model-construction error bubbled up from the substrate crates.
    Model(ModelError),
}

/// An error produced while reading a `.psm` document, carrying the source
/// location it refers to.
#[derive(Debug, Clone, PartialEq)]
pub struct InterchangeError {
    kind: InterchangeErrorKind,
    span: Span,
}

impl InterchangeError {
    /// Creates a lexical error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        InterchangeError { kind: InterchangeErrorKind::Lex { message: message.into() }, span }
    }

    /// Creates a parse error from an expectation and the offending token.
    pub fn parse(expected: impl Into<String>, found: impl Into<String>, span: Span) -> Self {
        InterchangeError {
            kind: InterchangeErrorKind::Parse { expected: expected.into(), found: found.into() },
            span,
        }
    }

    /// Creates a resolution (semantic) error.
    pub fn resolve(message: impl Into<String>, span: Span) -> Self {
        InterchangeError { kind: InterchangeErrorKind::Resolve { message: message.into() }, span }
    }

    /// Wraps a substrate [`ModelError`] at a source location.
    pub fn model(error: ModelError, span: Span) -> Self {
        InterchangeError { kind: InterchangeErrorKind::Model(error), span }
    }

    /// The error category.
    pub fn kind(&self) -> &InterchangeErrorKind {
        &self.kind
    }

    /// The source span the error refers to.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders the error together with the offending source line and a caret
    /// marker, in the style of a compiler diagnostic.
    ///
    /// # Examples
    ///
    /// ```
    /// use privacy_interchange::parse_ast;
    /// let source = "system \"X\" {\n    actor : role\n}";
    /// let error = parse_ast(source).unwrap_err();
    /// let rendered = error.render(source);
    /// assert!(rendered.contains("line 2"));
    /// assert!(rendered.contains("^"));
    /// ```
    pub fn render(&self, source: &str) -> String {
        let line_number = self.span.start.line as usize;
        let column = self.span.start.column as usize;
        let mut out = format!("error at {}: {self}\n", self.span);
        if let Some(line) = source.lines().nth(line_number.saturating_sub(1)) {
            out.push_str(&format!("  --> line {line_number}\n"));
            out.push_str(&format!("   | {line}\n"));
            let caret_width = {
                let same_line = self.span.start.line == self.span.end.line;
                let end = if same_line { self.span.end.column as usize } else { column + 1 };
                end.saturating_sub(column).max(1)
            };
            out.push_str(&format!(
                "   | {}{}\n",
                " ".repeat(column.saturating_sub(1)),
                "^".repeat(caret_width)
            ));
        }
        out
    }
}

impl fmt::Display for InterchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            InterchangeErrorKind::Lex { message } => write!(f, "lexical error: {message}"),
            InterchangeErrorKind::Parse { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            InterchangeErrorKind::Resolve { message } => f.write_str(message),
            InterchangeErrorKind::Model(error) => write!(f, "model error: {error}"),
        }
    }
}

impl Error for InterchangeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            InterchangeErrorKind::Model(error) => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Position, Span};

    fn span() -> Span {
        Span::new(Position::new(2, 5), Position::new(2, 9))
    }

    #[test]
    fn display_mentions_expectation_for_parse_errors() {
        let error = InterchangeError::parse("`{`", "`,`", span());
        assert_eq!(error.to_string(), "expected `{`, found `,`");
    }

    #[test]
    fn display_forwards_resolve_message() {
        let error = InterchangeError::resolve("unknown field `Weight`", span());
        assert_eq!(error.to_string(), "unknown field `Weight`");
        assert_eq!(error.span(), span());
    }

    #[test]
    fn model_errors_are_wrapped_with_source() {
        let error = InterchangeError::model(ModelError::duplicate("actor", "Doctor"), span());
        assert!(error.to_string().contains("duplicate actor"));
        assert!(Error::source(&error).is_some());
    }

    #[test]
    fn render_points_at_the_offending_column() {
        let source = "line one\nabcdefghij\nline three";
        let error = InterchangeError::lex("unexpected character `%`", span());
        let rendered = error.render(source);
        assert!(rendered.contains("line 2"));
        assert!(rendered.contains("abcdefghij"));
        // Caret starts under column 5 and spans four characters (5..9).
        assert!(rendered.contains("   |     ^^^^"), "{rendered}");
    }

    #[test]
    fn render_survives_out_of_range_lines() {
        let error = InterchangeError::lex("boom", Span::at(Position::new(99, 1)));
        let rendered = error.render("only one line");
        assert!(rendered.contains("boom"));
    }
}
