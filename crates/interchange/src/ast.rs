//! Abstract syntax tree of a `.psm` model document.
//!
//! The AST mirrors the surface grammar and keeps the [`Span`] of every
//! declaration so the [`resolver`](crate::resolve) can report semantic
//! errors at the location of the offending text.

use crate::span::Span;

/// A parsed name (identifier or quoted string) with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Name {
    /// The textual value.
    pub text: String,
    /// Where it appeared.
    pub span: Span,
}

impl Name {
    /// Creates a name.
    pub fn new(text: impl Into<String>, span: Span) -> Self {
        Name { text: text.into(), span }
    }
}

/// The kind of an actor declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorKindAst {
    /// A role type (the common case, `role`).
    Role,
    /// A named individual (`individual`).
    Individual,
    /// The data subject (`subject`).
    DataSubject,
    /// An automated system component (`system`).
    System,
}

/// The kind of a field declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKindAst {
    /// Directly identifying (`identifier`).
    Identifier,
    /// Quasi-identifier (`quasi`).
    QuasiIdentifier,
    /// Sensitive attribute (`sensitive`).
    Sensitive,
    /// Anything else (`other`).
    Other,
}

/// `actor <name> : <kind> ["description"]`
#[derive(Debug, Clone, PartialEq)]
pub struct ActorDecl {
    /// The actor identifier.
    pub name: Name,
    /// The actor kind.
    pub kind: ActorKindAst,
    /// Optional free-text description.
    pub description: Option<String>,
}

/// `field <name> : <kind> [anonymised]`
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// The field identifier.
    pub name: Name,
    /// The field kind.
    pub kind: FieldKindAst,
    /// Whether a pseudonymised counterpart (`<name>_anon`) is also declared.
    pub anonymised: bool,
}

/// `schema <name> { field, field, ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaDecl {
    /// The schema identifier.
    pub name: Name,
    /// The fields contained in the schema.
    pub fields: Vec<Name>,
}

/// `datastore <name> : <schema> [anonymised]`
#[derive(Debug, Clone, PartialEq)]
pub struct DatastoreDeclAst {
    /// The datastore identifier.
    pub name: Name,
    /// The schema stored in the datastore.
    pub schema: Name,
    /// Whether the datastore holds pseudonymised data.
    pub anonymised: bool,
}

/// `service <name> { actors a, b [description "..."] }`
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDeclAst {
    /// The service identifier.
    pub name: Name,
    /// The actors involved in providing the service.
    pub actors: Vec<Name>,
    /// Optional free-text description.
    pub description: Option<String>,
}

/// A permission keyword in a policy rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermissionAst {
    /// `read`
    Read,
    /// `create`
    Create,
    /// `delete`
    Delete,
    /// `disclose`
    Disclose,
}

/// `allow <actor> <perm,...> on <datastore> [fields { ... }]`
#[derive(Debug, Clone, PartialEq)]
pub struct AllowDecl {
    /// The actor granted access.
    pub actor: Name,
    /// The granted permissions.
    pub permissions: Vec<PermissionAst>,
    /// The datastore the grant applies to.
    pub datastore: Name,
    /// Restriction to specific fields; `None` means the whole store.
    pub fields: Option<Vec<Name>>,
    /// Location of the whole rule (for diagnostics).
    pub span: Span,
}

/// One grant inside a `role` declaration: `<perm,...> on <datastore> [fields {...}]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RoleGrantDecl {
    /// The granted permissions.
    pub permissions: Vec<PermissionAst>,
    /// The datastore the grant applies to.
    pub datastore: Name,
    /// Restriction to specific fields; `None` means the whole store.
    pub fields: Option<Vec<Name>>,
}

/// `role <name> { <grant>* }`
#[derive(Debug, Clone, PartialEq)]
pub struct RoleDecl {
    /// The role identifier.
    pub name: Name,
    /// The grants attached to the role.
    pub grants: Vec<RoleGrantDecl>,
}

/// `assign <actor> -> <role>`
#[derive(Debug, Clone, PartialEq)]
pub struct AssignDecl {
    /// The actor receiving the role.
    pub actor: Name,
    /// The assigned role.
    pub role: Name,
}

/// The body of a `policy { ... }` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyDecl {
    /// ACL rules.
    pub allows: Vec<AllowDecl>,
    /// RBAC role definitions.
    pub roles: Vec<RoleDecl>,
    /// RBAC role assignments.
    pub assignments: Vec<AssignDecl>,
}

/// The kind of a flow statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowKindAst {
    /// `collect <actor> { fields }` — user → actor.
    Collect {
        /// The collecting actor.
        actor: Name,
    },
    /// `disclose <from> -> <to> { fields }` — actor → actor.
    Disclose {
        /// The disclosing actor.
        from: Name,
        /// The receiving actor.
        to: Name,
    },
    /// `create <actor> -> <datastore> { fields }` — actor → datastore.
    Create {
        /// The writing actor.
        actor: Name,
        /// The target datastore.
        datastore: Name,
    },
    /// `anonymise <actor> -> <datastore> { fields }` — actor → anonymised
    /// datastore (surface sugar; behaves like `create`).
    Anonymise {
        /// The writing actor.
        actor: Name,
        /// The target (anonymised) datastore.
        datastore: Name,
    },
    /// `read <actor> <- <datastore> { fields }` — datastore → actor.
    Read {
        /// The reading actor.
        actor: Name,
        /// The source datastore.
        datastore: Name,
    },
}

/// One `order: <kind> { fields } for "purpose"` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDecl {
    /// The execution order of the flow inside its service.
    pub order: u32,
    /// The flow kind and endpoints.
    pub kind: FlowKindAst,
    /// The fields carried by the flow.
    pub fields: Vec<Name>,
    /// The stated purpose of the flow.
    pub purpose: String,
    /// Location of the whole statement (for diagnostics).
    pub span: Span,
}

/// `flows <service> { <flow>* }`
#[derive(Debug, Clone, PartialEq)]
pub struct FlowsDecl {
    /// The service the flows belong to.
    pub service: Name,
    /// The flow statements.
    pub flows: Vec<FlowDecl>,
}

/// A user sensitivity setting: either a category keyword or a number in `[0,1]`.
#[derive(Debug, Clone, PartialEq)]
pub enum SensitivityAst {
    /// `low`, `medium` or `high`.
    Category(String),
    /// A numeric value.
    Value(f64),
}

/// `user <name> { consents ...  sensitivity <field> = ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct UserDecl {
    /// The user identifier.
    pub name: Name,
    /// Services the user consents to.
    pub consents: Vec<Name>,
    /// Per-field sensitivities.
    pub sensitivities: Vec<(Name, SensitivityAst)>,
}

/// The root of a parsed `.psm` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAst {
    /// The system name (from `system "<name>" { ... }`).
    pub name: String,
    /// Actor declarations in source order.
    pub actors: Vec<ActorDecl>,
    /// Field declarations in source order.
    pub fields: Vec<FieldDecl>,
    /// Schema declarations in source order.
    pub schemas: Vec<SchemaDecl>,
    /// Datastore declarations in source order.
    pub datastores: Vec<DatastoreDeclAst>,
    /// Service declarations in source order.
    pub services: Vec<ServiceDeclAst>,
    /// The merged policy block(s).
    pub policy: PolicyDecl,
    /// Data-flow blocks, one per service.
    pub flows: Vec<FlowsDecl>,
    /// Declared user profiles.
    pub users: Vec<UserDecl>,
}

impl ModelAst {
    /// Creates an empty document with the given system name.
    pub fn empty(name: impl Into<String>) -> Self {
        ModelAst {
            name: name.into(),
            actors: Vec::new(),
            fields: Vec::new(),
            schemas: Vec::new(),
            datastores: Vec::new(),
            services: Vec::new(),
            policy: PolicyDecl::default(),
            flows: Vec::new(),
            users: Vec::new(),
        }
    }

    /// Total number of declarations of any kind (useful as a size heuristic).
    pub fn declaration_count(&self) -> usize {
        self.actors.len()
            + self.fields.len()
            + self.schemas.len()
            + self.datastores.len()
            + self.services.len()
            + self.policy.allows.len()
            + self.policy.roles.len()
            + self.policy.assignments.len()
            + self.flows.iter().map(|f| f.flows.len()).sum::<usize>()
            + self.users.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    #[test]
    fn empty_document_has_no_declarations() {
        let ast = ModelAst::empty("Demo");
        assert_eq!(ast.name, "Demo");
        assert_eq!(ast.declaration_count(), 0);
    }

    #[test]
    fn declaration_count_sums_every_section() {
        let mut ast = ModelAst::empty("Demo");
        ast.actors.push(ActorDecl {
            name: Name::new("Doctor", Span::default()),
            kind: ActorKindAst::Role,
            description: None,
        });
        ast.fields.push(FieldDecl {
            name: Name::new("Name", Span::default()),
            kind: FieldKindAst::Identifier,
            anonymised: false,
        });
        ast.policy.allows.push(AllowDecl {
            actor: Name::new("Doctor", Span::default()),
            permissions: vec![PermissionAst::Read],
            datastore: Name::new("EHR", Span::default()),
            fields: None,
            span: Span::default(),
        });
        ast.flows.push(FlowsDecl {
            service: Name::new("MedicalService", Span::default()),
            flows: vec![FlowDecl {
                order: 1,
                kind: FlowKindAst::Collect { actor: Name::new("Doctor", Span::default()) },
                fields: vec![Name::new("Name", Span::default())],
                purpose: "consultation".into(),
                span: Span::default(),
            }],
        });
        assert_eq!(ast.declaration_count(), 4);
    }
}
