//! # privacy-interchange
//!
//! A textual **model interchange format** for the privacy-system models of
//! *"Identifying Privacy Risks in Distributed Data Services"* (Grace et al.,
//! ICDCS 2018).
//!
//! The paper's pipeline starts from *"design artifacts curated during the
//! system design phase"* — data-flow diagrams, data schemas and access
//! policies.  In the authors' (closed) tooling these live in an MDE editor;
//! here they are concrete text files in the `.psm` ("privacy system model")
//! format so that models can be versioned, diffed, reviewed and fed to the
//! analysis pipeline without writing Rust:
//!
//! ```text
//! system "Clinic" {
//!     actor Doctor : role "treats patients"
//!     field Name : identifier
//!     field Diagnosis : sensitive anonymised
//!     schema EHRSchema { Name, Diagnosis }
//!     datastore EHR : EHRSchema
//!     service MedicalService { actors Doctor }
//!
//!     policy {
//!         allow Doctor read, create on EHR
//!     }
//!
//!     flows MedicalService {
//!         1: collect Doctor { Name, Diagnosis } for "consultation"
//!         2: create Doctor -> EHR { Name, Diagnosis } for "record keeping"
//!     }
//!
//!     user "patient-1" {
//!         consents MedicalService
//!         sensitivity Diagnosis = high
//!     }
//! }
//! ```
//!
//! The crate is organised as a classic front end:
//!
//! * [`span`] — source positions and spans used by every diagnostic;
//! * [`token`] / [`lexer`] — tokenisation with comment support;
//! * [`ast`] — the abstract syntax tree of a model document;
//! * [`parser`] — a recursive-descent parser producing the AST;
//! * [`resolve`] — semantic resolution of the AST into a
//!   [`privacy_core::PrivacySystem`] plus the declared user profiles;
//! * [`printer`] — the inverse direction: rendering an existing system (and
//!   users) back into canonical `.psm` text, which round-trips through the
//!   parser;
//! * [`error`] — parse/resolve diagnostics with source excerpts;
//! * [`binary`] — the framed, checksummed binary codec persistable runtime
//!   artefacts (monitor snapshots) are serialized through.
//!
//! # Example
//!
//! ```
//! use privacy_interchange::{parse_document, render_document};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = r#"
//! system "Demo" {
//!     actor Analyst : role
//!     field Email : identifier
//!     schema CrmSchema { Email }
//!     datastore Crm : CrmSchema
//!     service Marketing { actors Analyst }
//!     policy { allow Analyst read on Crm }
//!     flows Marketing {
//!         1: read Analyst <- Crm { Email } for "campaign"
//!     }
//! }
//! "#;
//! let document = parse_document(source)?;
//! assert_eq!(document.system.catalog().actor_count(), 1);
//! let rendered = render_document(&document);
//! let again = parse_document(&rendered)?;
//! assert_eq!(again.system.catalog().actor_count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod binary;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod resolve;
pub mod span;
pub mod token;

pub use ast::ModelAst;
pub use binary::{read_frame, write_frame, CodecError, Decoder, Encoder, FrameIoError};
pub use error::{InterchangeError, InterchangeErrorKind};
pub use parser::parse_ast;
pub use printer::{render_document, render_system};
pub use resolve::{resolve_ast, ModelDocument};
pub use span::{Position, Span};
pub use token::{Token, TokenKind};

/// Parses `.psm` source text all the way to a resolved [`ModelDocument`].
///
/// This is the main entry point: it lexes, parses and resolves the source,
/// returning the built [`privacy_core::PrivacySystem`] together with any
/// declared user profiles.
///
/// # Errors
///
/// Returns an [`InterchangeError`] carrying the source location of the first
/// lexical, syntactic or semantic problem encountered.
pub fn parse_document(source: &str) -> Result<ModelDocument, InterchangeError> {
    let ast = parse_ast(source)?;
    resolve_ast(&ast)
}

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::ast::ModelAst;
    pub use crate::error::{InterchangeError, InterchangeErrorKind};
    pub use crate::parse_document;
    pub use crate::parser::parse_ast;
    pub use crate::printer::{render_document, render_system};
    pub use crate::resolve::{resolve_ast, ModelDocument};
    pub use crate::span::{Position, Span};
}
