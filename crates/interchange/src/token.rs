//! Tokens produced by the [`lexer`](crate::lexer).

use crate::span::Span;
use std::fmt;

/// The different kinds of token recognised by the `.psm` grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare identifier, e.g. `Doctor` or `EHRSchema`.
    Ident(String),
    /// A double-quoted string literal (quotes removed, escapes resolved),
    /// e.g. `"Date of Birth"`.
    Str(String),
    /// A numeric literal, e.g. `2` or `0.9`.
    Number(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `->`
    Arrow,
    /// `<-`
    BackArrow,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Str(text) => format!("string \"{text}\""),
            TokenKind::Number(value) => format!("number `{value}`"),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::Colon => "`:`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Equals => "`=`".to_string(),
            TokenKind::Arrow => "`->`".to_string(),
            TokenKind::BackArrow => "`<-`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }

    /// Returns the textual content of an identifier or string token.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(name) => Some(name),
            TokenKind::Str(text) => Some(text),
            _ => None,
        }
    }

    /// Returns `true` if the token is the identifier `keyword`
    /// (case-sensitive).
    pub fn is_keyword(&self, keyword: &str) -> bool {
        matches!(self, TokenKind::Ident(name) if name == keyword)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token together with the source span it was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was read.
    pub kind: TokenKind,
    /// Where it was read from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Position, Span};

    #[test]
    fn describe_is_human_readable() {
        assert_eq!(TokenKind::Ident("Doctor".into()).describe(), "identifier `Doctor`");
        assert_eq!(TokenKind::Str("a b".into()).describe(), "string \"a b\"");
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }

    #[test]
    fn as_name_extracts_identifier_and_string_content() {
        assert_eq!(TokenKind::Ident("EHR".into()).as_name(), Some("EHR"));
        assert_eq!(TokenKind::Str("Date of Birth".into()).as_name(), Some("Date of Birth"));
        assert_eq!(TokenKind::Comma.as_name(), None);
        assert_eq!(TokenKind::Number(4.0).as_name(), None);
    }

    #[test]
    fn keyword_check_is_exact() {
        assert!(TokenKind::Ident("actor".into()).is_keyword("actor"));
        assert!(!TokenKind::Ident("Actor".into()).is_keyword("actor"));
        assert!(!TokenKind::Str("actor".into()).is_keyword("actor"));
    }

    #[test]
    fn token_display_includes_span() {
        let token =
            Token::new(TokenKind::Colon, Span::new(Position::new(2, 5), Position::new(2, 6)));
        assert_eq!(token.to_string(), "`:` at 2:5-2:6");
    }
}
