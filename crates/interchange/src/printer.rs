//! Rendering system models back into canonical `.psm` text.
//!
//! The printer is the inverse of the parser: `parse_document(render_document(d))`
//! yields a document describing the same system.  Output is deterministic
//! (catalog iteration order), so rendered models can be diffed meaningfully
//! in version control.
//!
//! ABAC rules are intentionally not rendered — the `.psm` surface syntax
//! covers ACL and RBAC only; systems using ABAC must be built with the Rust
//! API.

use crate::resolve::ModelDocument;
use privacy_access::Permission;
use privacy_core::PrivacySystem;
use privacy_dataflow::{FlowKind, Node};
use privacy_model::{ActorKind, FieldKind, UserProfile};
use std::fmt::Write as _;

/// Renders a resolved document (system plus users) into `.psm` text.
///
/// # Examples
///
/// ```
/// use privacy_interchange::{parse_document, render_document};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let source = "system S { actor A : role field F : other schema Sc { F } \
///               datastore D : Sc service Svc { actors A } \
///               flows Svc { 1: collect A { F } for \"x\" } }";
/// let document = parse_document(source)?;
/// let rendered = render_document(&document);
/// assert!(rendered.starts_with("system"));
/// assert!(parse_document(&rendered).is_ok());
/// # Ok(())
/// # }
/// ```
pub fn render_document(document: &ModelDocument) -> String {
    render(&document.name, &document.system, &document.users)
}

/// Renders a [`PrivacySystem`] (with no user profiles) into `.psm` text.
pub fn render_system(name: &str, system: &PrivacySystem) -> String {
    render(name, system, &[])
}

fn render(name: &str, system: &PrivacySystem, users: &[UserProfile]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "system {} {{", quote(name));

    render_actors(&mut out, system);
    render_fields(&mut out, system);
    render_schemas(&mut out, system);
    render_datastores(&mut out, system);
    render_services(&mut out, system);
    render_policy(&mut out, system);
    render_flows(&mut out, system);
    render_users(&mut out, users);

    out.push_str("}\n");
    out
}

fn render_actors(out: &mut String, system: &PrivacySystem) {
    for actor in system.catalog().actors() {
        let kind = match actor.kind() {
            ActorKind::Individual => "individual",
            ActorKind::DataSubject => "subject",
            ActorKind::System => "system",
            // `Role` and any future kinds render as the common case.
            _ => "role",
        };
        let _ = write!(out, "    actor {} : {kind}", quote(actor.id().as_str()));
        if !actor.description().is_empty() {
            let _ = write!(out, " {}", quote_always(actor.description()));
        }
        out.push('\n');
    }
}

fn render_fields(out: &mut String, system: &PrivacySystem) {
    let catalog = system.catalog();
    for field in catalog.fields() {
        if field.is_pseudonymised() {
            // Skip counterparts that will be re-created by the `anonymised`
            // marker on their original; render orphans as plain fields.
            if let Some(original) = field.original() {
                if catalog.field(&original).is_some() {
                    continue;
                }
            }
        }
        let kind = match field.kind() {
            FieldKind::Identifier => "identifier",
            FieldKind::QuasiIdentifier => "quasi",
            FieldKind::Sensitive => "sensitive",
            // `Other` and any future kinds render as the catch-all case.
            _ => "other",
        };
        let _ = write!(out, "    field {} : {kind}", quote(field.id().as_str()));
        if !field.is_pseudonymised() && catalog.field(&field.id().anonymised()).is_some() {
            out.push_str(" anonymised");
        }
        out.push('\n');
    }
}

fn render_schemas(out: &mut String, system: &PrivacySystem) {
    for schema in system.catalog().schemas() {
        let fields: Vec<String> = schema.fields().iter().map(|f| quote(f.as_str())).collect();
        let _ =
            writeln!(out, "    schema {} {{ {} }}", quote(schema.id().as_str()), fields.join(", "));
    }
}

fn render_datastores(out: &mut String, system: &PrivacySystem) {
    for datastore in system.catalog().datastores() {
        let _ = write!(
            out,
            "    datastore {} : {}",
            quote(datastore.id().as_str()),
            quote(datastore.schema().as_str())
        );
        if datastore.is_anonymised() {
            out.push_str(" anonymised");
        }
        out.push('\n');
    }
}

fn render_services(out: &mut String, system: &PrivacySystem) {
    for service in system.catalog().services() {
        let actors: Vec<String> = service.actors().iter().map(|a| quote(a.as_str())).collect();
        let _ = write!(
            out,
            "    service {} {{ actors {}",
            quote(service.id().as_str()),
            actors.join(", ")
        );
        if !service.description().is_empty() {
            let _ = write!(out, " description {}", quote_always(service.description()));
        }
        out.push_str(" }\n");
    }
}

fn permission_keyword(permission: Permission) -> &'static str {
    match permission {
        Permission::Create => "create",
        Permission::Delete => "delete",
        Permission::Disclose => "disclose",
        // `Read` and any future permissions render as the least-privileged
        // keyword the grammar accepts.
        _ => "read",
    }
}

fn render_policy(out: &mut String, system: &PrivacySystem) {
    let policy = system.policy();
    let acl = policy.acl();
    let rbac = policy.rbac();
    if acl.is_empty() && rbac.role_count() == 0 {
        return;
    }
    out.push_str("    policy {\n");
    for grant in acl.grants() {
        let permissions: Vec<&str> =
            grant.permissions().iter().map(|p| permission_keyword(*p)).collect();
        let _ = write!(
            out,
            "        allow {} {} on {}",
            quote(grant.actor().as_str()),
            permissions.join(", "),
            quote(grant.datastore().as_str())
        );
        if let Some(fields) = grant.scope().explicit_fields() {
            let fields: Vec<String> = fields.iter().map(|f| quote(f.as_str())).collect();
            let _ = write!(out, " fields {{ {} }}", fields.join(", "));
        }
        out.push('\n');
    }
    for role in rbac.roles() {
        let _ = write!(out, "        role {} {{", quote(role.id().as_str()));
        if role.grants().is_empty() {
            out.push_str(" }\n");
            continue;
        }
        out.push('\n');
        for grant in role.grants() {
            let permissions: Vec<&str> =
                grant.permissions().iter().map(|p| permission_keyword(*p)).collect();
            let _ = write!(
                out,
                "            {} on {}",
                permissions.join(", "),
                quote(grant.datastore().as_str())
            );
            if let Some(fields) = grant.scope().explicit_fields() {
                let fields: Vec<String> = fields.iter().map(|f| quote(f.as_str())).collect();
                let _ = write!(out, " fields {{ {} }}", fields.join(", "));
            }
            out.push('\n');
        }
        out.push_str("        }\n");
    }
    for (actor, role) in rbac.assignments() {
        let _ =
            writeln!(out, "        assign {} -> {}", quote(actor.as_str()), quote(role.as_str()));
    }
    out.push_str("    }\n");
}

fn render_flows(out: &mut String, system: &PrivacySystem) {
    let anonymised_stores: std::collections::BTreeSet<_> = system
        .catalog()
        .datastores()
        .filter(|d| d.is_anonymised())
        .map(|d| d.id().clone())
        .collect();
    for diagram in system.dataflows().diagrams() {
        let _ = writeln!(out, "    flows {} {{", quote(diagram.service().as_str()));
        let mut flows: Vec<_> = diagram.flows().iter().collect();
        flows.sort_by_key(|f| f.order());
        for flow in flows {
            let fields: Vec<String> = flow.fields().iter().map(|f| quote(f.as_str())).collect();
            let verb = match (flow.from(), flow.to()) {
                (Node::User, Node::Actor(actor)) => {
                    format!("collect {}", quote(actor.as_str()))
                }
                (Node::Actor(from), Node::Actor(to)) => {
                    format!("disclose {} -> {}", quote(from.as_str()), quote(to.as_str()))
                }
                (Node::Actor(actor), Node::Datastore(datastore)) => {
                    let keyword = if flow.kind(&anonymised_stores) == FlowKind::Anonymise {
                        "anonymise"
                    } else {
                        "create"
                    };
                    format!("{keyword} {} -> {}", quote(actor.as_str()), quote(datastore.as_str()))
                }
                (Node::Datastore(datastore), Node::Actor(actor)) => {
                    format!("read {} <- {}", quote(actor.as_str()), quote(datastore.as_str()))
                }
                // Remaining combinations are rejected by diagram validation;
                // render them as a disclose-style comment-free best effort.
                (from, to) => {
                    format!("disclose {} -> {}", quote(&from.to_string()), quote(&to.to_string()))
                }
            };
            let _ = writeln!(
                out,
                "        {}: {verb} {{ {} }} for {}",
                flow.order(),
                fields.join(", "),
                quote_always(flow.purpose().as_str())
            );
        }
        out.push_str("    }\n");
    }
}

fn render_users(out: &mut String, users: &[UserProfile]) {
    for user in users {
        let _ = writeln!(out, "    user {} {{", quote(user.id().as_str()));
        let consents: Vec<String> = user.consent().services().map(|s| quote(s.as_str())).collect();
        if !consents.is_empty() {
            let _ = writeln!(out, "        consents {}", consents.join(", "));
        }
        for (field, sensitivity) in user.sensitivities().iter() {
            let _ = writeln!(
                out,
                "        sensitivity {} = {}",
                quote(field.as_str()),
                format_number(sensitivity.value())
            );
        }
        out.push_str("    }\n");
    }
}

fn format_number(value: f64) -> String {
    if value.fract() == 0.0 {
        format!("{value:.1}")
    } else {
        format!("{value}")
    }
}

/// Quotes a name only when it cannot be written as a bare identifier.
fn quote(name: &str) -> String {
    let bare = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '-')
        && !is_reserved(name);
    if bare {
        name.to_string()
    } else {
        quote_always(name)
    }
}

/// Always wraps the text in quotes, escaping embedded quotes and backslashes.
fn quote_always(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len() + 2);
    escaped.push('"');
    for c in text.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            other => escaped.push(other),
        }
    }
    escaped.push('"');
    escaped
}

/// Keywords that would change the parse if emitted as bare identifiers in
/// name position are always quoted.
fn is_reserved(name: &str) -> bool {
    matches!(
        name,
        "actor"
            | "field"
            | "schema"
            | "datastore"
            | "service"
            | "policy"
            | "flows"
            | "user"
            | "allow"
            | "role"
            | "assign"
            | "consents"
            | "sensitivity"
            | "fields"
            | "actors"
            | "description"
            | "anonymised"
            | "on"
            | "for"
            | "system"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    const CLINIC: &str = r#"
    system "Clinic" {
        actor Doctor : role "treats patients"
        actor Researcher : role
        field Name : identifier
        field Diagnosis : sensitive anonymised
        field "Date of Birth" : quasi
        schema EHRSchema { Name, "Date of Birth", Diagnosis }
        schema AnonSchema { Diagnosis_anon }
        datastore EHR : EHRSchema
        datastore AnonEHR : AnonSchema anonymised
        service MedicalService { actors Doctor description "consultation" }
        service ResearchService { actors Researcher }
        policy {
            allow Doctor read, create on EHR
            allow Researcher read on AnonEHR fields { Diagnosis_anon }
            role Auditor { read on EHR fields { Name } }
            assign Researcher -> Auditor
        }
        flows MedicalService {
            1: collect Doctor { Name, Diagnosis } for "consultation"
            2: create Doctor -> EHR { Name, Diagnosis } for "record keeping"
        }
        flows ResearchService {
            1: anonymise Doctor -> AnonEHR { Diagnosis_anon } for "release"
            2: read Researcher <- AnonEHR { Diagnosis_anon } for "research"
        }
        user "patient-1" {
            consents MedicalService
            sensitivity Diagnosis = 0.9
        }
    }
    "#;

    #[test]
    fn rendered_document_reparses() {
        let document = parse_document(CLINIC).unwrap();
        let rendered = render_document(&document);
        let again = parse_document(&rendered).unwrap();
        assert_eq!(again.name, "Clinic");
        assert_eq!(again.system.catalog().actor_count(), document.system.catalog().actor_count());
        assert_eq!(again.system.catalog().field_count(), document.system.catalog().field_count());
        assert_eq!(again.system.dataflows().flow_count(), document.system.dataflows().flow_count());
        assert_eq!(again.users.len(), 1);
    }

    #[test]
    fn round_trip_preserves_access_decisions() {
        let document = parse_document(CLINIC).unwrap();
        let again = parse_document(&render_document(&document)).unwrap();
        let ehr = privacy_model::DatastoreId::new("EHR");
        let anon = privacy_model::DatastoreId::new("AnonEHR");
        let doctor = privacy_model::ActorId::new("Doctor");
        let researcher = privacy_model::ActorId::new("Researcher");
        let diagnosis = privacy_model::FieldId::new("Diagnosis");
        let name = privacy_model::FieldId::new("Name");
        for (policy_a, policy_b) in
            [(document.system.policy(), again.system.policy())].iter().map(|(a, b)| (*a, *b))
        {
            for (actor, store, field) in [
                (&doctor, &ehr, &diagnosis),
                (&researcher, &ehr, &diagnosis),
                (&researcher, &ehr, &name),
                (&researcher, &anon, &diagnosis.anonymised()),
            ] {
                assert_eq!(
                    policy_a.can(actor, Permission::Read, store, field),
                    policy_b.can(actor, Permission::Read, store, field),
                    "decision changed for {actor} on {store}/{field}"
                );
            }
        }
    }

    #[test]
    fn round_trip_preserves_user_sensitivities() {
        let document = parse_document(CLINIC).unwrap();
        let again = parse_document(&render_document(&document)).unwrap();
        let diagnosis = privacy_model::FieldId::new("Diagnosis");
        let before = document.users[0].sensitivities().sensitivity(&diagnosis).value();
        let after = again.users[0].sensitivities().sensitivity(&diagnosis).value();
        assert!((before - after).abs() < 1e-9);
        assert!(again.users[0]
            .consent()
            .includes(&privacy_model::ServiceId::new("MedicalService")));
    }

    #[test]
    fn names_with_spaces_are_quoted() {
        let document = parse_document(CLINIC).unwrap();
        let rendered = render_document(&document);
        assert!(rendered.contains("\"Date of Birth\""));
        assert!(!rendered.contains("\nDate of Birth"));
    }

    #[test]
    fn reserved_words_used_as_names_are_quoted() {
        assert_eq!(quote("actor"), "\"actor\"");
        assert_eq!(quote("Doctor"), "Doctor");
        assert_eq!(quote("1st"), "\"1st\"");
        assert_eq!(quote(""), "\"\"");
    }

    #[test]
    fn quote_always_escapes_quotes_and_backslashes() {
        assert_eq!(quote_always("say \"hi\""), "\"say \\\"hi\\\"\"");
        assert_eq!(quote_always("a\\b"), "\"a\\\\b\"");
    }

    #[test]
    fn anonymise_flows_render_with_the_anonymise_keyword() {
        let document = parse_document(CLINIC).unwrap();
        let rendered = render_document(&document);
        assert!(rendered.contains("anonymise Doctor -> AnonEHR"), "{rendered}");
        assert!(rendered.contains("read Researcher <- AnonEHR"));
    }

    #[test]
    fn render_system_without_users_omits_user_blocks() {
        let document = parse_document(CLINIC).unwrap();
        let rendered = render_system("Clinic", &document.system);
        assert!(!rendered.contains("user "));
        assert!(parse_document(&rendered).unwrap().users.is_empty());
    }
}
