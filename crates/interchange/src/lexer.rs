//! The `.psm` lexer.
//!
//! Tokenises source text into [`Token`]s, tracking 1-based line/column
//! positions for diagnostics.  Both `#` and `//` line comments are
//! supported; string literals use double quotes with `\"` and `\\` escapes.

use crate::error::InterchangeError;
use crate::span::{Position, Span};
use crate::token::{Token, TokenKind};

/// Tokenises an entire document.
///
/// The returned vector always ends with a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns an [`InterchangeError`] for unterminated strings, malformed
/// numbers or characters outside the grammar's alphabet.
///
/// # Examples
///
/// ```
/// use privacy_interchange::lexer::tokenize;
/// use privacy_interchange::TokenKind;
///
/// let tokens = tokenize("actor Doctor : role").unwrap();
/// assert_eq!(tokens.len(), 5); // actor, Doctor, `:`, role, EOF
/// assert!(matches!(tokens.last().unwrap().kind, TokenKind::Eof));
/// ```
pub fn tokenize(source: &str) -> Result<Vec<Token>, InterchangeError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    position: Position,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer { chars: source.chars().peekable(), position: Position::START, tokens: Vec::new() }
    }

    fn run(mut self) -> Result<Vec<Token>, InterchangeError> {
        while let Some(&c) = self.chars.peek() {
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '#' => self.skip_line_comment(),
                '/' => {
                    let start = self.position;
                    self.bump();
                    if self.chars.peek() == Some(&'/') {
                        self.skip_line_comment();
                    } else {
                        return Err(InterchangeError::lex(
                            "unexpected character `/` (did you mean a `//` comment?)",
                            Span::at(start),
                        ));
                    }
                }
                '{' => self.single(TokenKind::LBrace),
                '}' => self.single(TokenKind::RBrace),
                ':' => self.single(TokenKind::Colon),
                ',' => self.single(TokenKind::Comma),
                '=' => self.single(TokenKind::Equals),
                '-' => self.arrow()?,
                '<' => self.back_arrow()?,
                '"' => self.string()?,
                c if c.is_ascii_digit() => self.number()?,
                c if is_ident_start(c) => self.ident(),
                other => {
                    return Err(InterchangeError::lex(
                        format!("unexpected character `{other}`"),
                        Span::at(self.position),
                    ));
                }
            }
        }
        self.tokens.push(Token::new(TokenKind::Eof, Span::at(self.position)));
        Ok(self.tokens)
    }

    /// Consumes one character, updating the line/column bookkeeping.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.position.line += 1;
            self.position.column = 1;
        } else {
            self.position.column += 1;
        }
        Some(c)
    }

    fn skip_line_comment(&mut self) {
        while let Some(&c) = self.chars.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn single(&mut self, kind: TokenKind) {
        let start = self.position;
        self.bump();
        self.tokens.push(Token::new(kind, Span::new(start, self.position)));
    }

    fn arrow(&mut self) -> Result<(), InterchangeError> {
        let start = self.position;
        self.bump(); // '-'
        if self.chars.peek() == Some(&'>') {
            self.bump();
            self.tokens.push(Token::new(TokenKind::Arrow, Span::new(start, self.position)));
            Ok(())
        } else {
            Err(InterchangeError::lex("expected `->`", Span::at(start)))
        }
    }

    fn back_arrow(&mut self) -> Result<(), InterchangeError> {
        let start = self.position;
        self.bump(); // '<'
        if self.chars.peek() == Some(&'-') {
            self.bump();
            self.tokens.push(Token::new(TokenKind::BackArrow, Span::new(start, self.position)));
            Ok(())
        } else {
            Err(InterchangeError::lex("expected `<-`", Span::at(start)))
        }
    }

    fn string(&mut self) -> Result<(), InterchangeError> {
        let start = self.position;
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('"') => text.push('"'),
                    Some('\\') => text.push('\\'),
                    Some('n') => text.push('\n'),
                    Some(other) => {
                        return Err(InterchangeError::lex(
                            format!("unknown escape `\\{other}`"),
                            Span::new(start, self.position),
                        ));
                    }
                    None => {
                        return Err(InterchangeError::lex(
                            "unterminated string literal",
                            Span::new(start, self.position),
                        ));
                    }
                },
                Some('\n') | None => {
                    return Err(InterchangeError::lex(
                        "unterminated string literal",
                        Span::new(start, self.position),
                    ));
                }
                Some(other) => text.push(other),
            }
        }
        self.tokens.push(Token::new(TokenKind::Str(text), Span::new(start, self.position)));
        Ok(())
    }

    fn number(&mut self) -> Result<(), InterchangeError> {
        let start = self.position;
        let mut text = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() || c == '.' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let value: f64 = text.parse().map_err(|_| {
            InterchangeError::lex(
                format!("malformed number `{text}`"),
                Span::new(start, self.position),
            )
        })?;
        self.tokens.push(Token::new(TokenKind::Number(value), Span::new(start, self.position)));
        Ok(())
    }

    fn ident(&mut self) {
        let start = self.position;
        let mut text = String::new();
        while let Some(&c) = self.chars.peek() {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.tokens.push(Token::new(TokenKind::Ident(text), Span::new(start, self.position)));
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenises_punctuation_and_identifiers() {
        let tokens = kinds("actor Doctor : role { } , =");
        assert_eq!(
            tokens,
            vec![
                TokenKind::Ident("actor".into()),
                TokenKind::Ident("Doctor".into()),
                TokenKind::Colon,
                TokenKind::Ident("role".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Comma,
                TokenKind::Equals,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenises_arrows() {
        assert_eq!(
            kinds("A -> B <- C"),
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::Arrow,
                TokenKind::Ident("B".into()),
                TokenKind::BackArrow,
                TokenKind::Ident("C".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenises_strings_with_spaces_and_escapes() {
        let tokens = kinds(r#""Date of Birth" "say \"hi\"""#);
        assert_eq!(
            tokens,
            vec![
                TokenKind::Str("Date of Birth".into()),
                TokenKind::Str("say \"hi\"".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenises_integers_and_decimals() {
        assert_eq!(
            kinds("2 0.95"),
            vec![TokenKind::Number(2.0), TokenKind::Number(0.95), TokenKind::Eof]
        );
    }

    #[test]
    fn skips_hash_and_slash_comments() {
        let source = "# heading\nactor // trailing comment\nDoctor";
        assert_eq!(
            kinds(source),
            vec![
                TokenKind::Ident("actor".into()),
                TokenKind::Ident("Doctor".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_line_and_column_positions() {
        let tokens = tokenize("actor\n  Doctor").unwrap();
        assert_eq!(tokens[0].span.start.line, 1);
        assert_eq!(tokens[0].span.start.column, 1);
        assert_eq!(tokens[1].span.start.line, 2);
        assert_eq!(tokens[1].span.start.column, 3);
    }

    #[test]
    fn rejects_unterminated_strings() {
        let error = tokenize("\"never closed").unwrap_err();
        assert!(error.to_string().contains("unterminated"));
    }

    #[test]
    fn rejects_stray_characters() {
        let error = tokenize("actor %").unwrap_err();
        assert!(error.to_string().contains("unexpected character `%`"));
        assert_eq!(error.span().start.column, 7);
    }

    #[test]
    fn rejects_lone_dash_and_lone_angle() {
        assert!(tokenize("a - b").is_err());
        assert!(tokenize("a < b").is_err());
    }

    #[test]
    fn rejects_malformed_numbers() {
        let error = tokenize("1.2.3").unwrap_err();
        assert!(error.to_string().contains("malformed number"));
    }

    #[test]
    fn empty_input_yields_only_eof() {
        let tokens = tokenize("").unwrap();
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].kind, TokenKind::Eof);
    }

    #[test]
    fn identifiers_may_contain_dashes_and_underscores() {
        assert_eq!(
            kinds("case-a-user some_field"),
            vec![
                TokenKind::Ident("case-a-user".into()),
                TokenKind::Ident("some_field".into()),
                TokenKind::Eof,
            ]
        );
    }
}
