//! Privacy policies: named, ordered collections of [`Statement`]s.

use crate::statement::{ActorMatcher, FieldMatcher, Statement, StatementKind};
use privacy_model::{Catalog, FieldKind, Purpose};
use std::fmt;

/// A privacy policy: the promises a service makes about how personal data is
/// handled, in machine-checkable form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PrivacyPolicy {
    name: String,
    statements: Vec<Statement>,
}

impl PrivacyPolicy {
    /// Creates an empty policy with the given name.
    ///
    /// # Examples
    ///
    /// ```
    /// use privacy_compliance::{FieldMatcher, PrivacyPolicy, Statement};
    ///
    /// let policy = PrivacyPolicy::new("clinic policy")
    ///     .with_statement(Statement::require_erasure("E1", "erasable", FieldMatcher::Any));
    /// assert_eq!(policy.len(), 1);
    /// ```
    pub fn new(name: impl Into<String>) -> Self {
        PrivacyPolicy { name: name.into(), statements: Vec::new() }
    }

    /// Adds a statement (builder style).
    pub fn with_statement(mut self, statement: Statement) -> Self {
        self.statements.push(statement);
        self
    }

    /// Adds a statement in place.
    pub fn add_statement(&mut self, statement: Statement) -> &mut Self {
        self.statements.push(statement);
        self
    }

    /// The policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The statements in declaration order.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// Looks up a statement by identifier.
    pub fn statement(&self, id: &str) -> Option<&Statement> {
        self.statements.iter().find(|s| s.id() == id)
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// Whether the policy has no statements.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Iterates over the statements.
    pub fn iter(&self) -> impl Iterator<Item = &Statement> {
        self.statements.iter()
    }
}

impl FromIterator<Statement> for PrivacyPolicy {
    fn from_iter<T: IntoIterator<Item = Statement>>(iter: T) -> Self {
        PrivacyPolicy { name: "privacy policy".into(), statements: iter.into_iter().collect() }
    }
}

impl Extend<Statement> for PrivacyPolicy {
    fn extend<T: IntoIterator<Item = Statement>>(&mut self, iter: T) {
        self.statements.extend(iter);
    }
}

impl fmt::Display for PrivacyPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "privacy policy `{}` ({} statements)", self.name, self.statements.len())?;
        for statement in &self.statements {
            writeln!(f, "  {statement}")?;
        }
        Ok(())
    }
}

/// Derives a baseline "data-protection hygiene" policy from a catalog, in the
/// spirit of GDPR-style obligations:
///
/// * every *sensitive* field must be erasable (right to erasure);
/// * every *sensitive* field may only be processed for the given purposes
///   (purpose limitation), when `allowed_purposes` is non-empty;
/// * every *identifier* field gets a bounded-exposure statement limiting how
///   many distinct actors may be able to identify it (data minimisation).
///
/// The generated statement identifiers are `ERASE-<field>`, `PURPOSE-<field>`
/// and `EXPOSE-<field>`.
///
/// # Examples
///
/// ```
/// use privacy_compliance::baseline_policy;
/// use privacy_model::{Catalog, DataField};
///
/// # fn main() -> Result<(), privacy_model::ModelError> {
/// let mut catalog = Catalog::new();
/// catalog.add_field(DataField::sensitive("Diagnosis"))?;
/// catalog.add_field(DataField::identifier("Name"))?;
/// let policy = baseline_policy(&catalog, [], 3);
/// assert_eq!(policy.len(), 2); // ERASE-Diagnosis + EXPOSE-Name
/// # Ok(())
/// # }
/// ```
pub fn baseline_policy(
    catalog: &Catalog,
    allowed_purposes: impl IntoIterator<Item = Purpose>,
    max_identifier_exposure: usize,
) -> PrivacyPolicy {
    let allowed: Vec<Purpose> = allowed_purposes.into_iter().collect();
    let mut policy = PrivacyPolicy::new("baseline data-protection policy");
    for field in catalog.fields() {
        if field.is_pseudonymised() {
            continue;
        }
        match field.kind() {
            FieldKind::Sensitive => {
                policy.add_statement(Statement::require_erasure(
                    format!("ERASE-{}", field.id()),
                    format!("`{}` must be erasable on request", field.id()),
                    FieldMatcher::only([field.id().clone()]),
                ));
                if !allowed.is_empty() {
                    policy.add_statement(Statement::purpose_limit(
                        format!("PURPOSE-{}", field.id()),
                        format!("`{}` is processed only for declared purposes", field.id()),
                        FieldMatcher::only([field.id().clone()]),
                        allowed.iter().cloned(),
                    ));
                }
            }
            FieldKind::Identifier => {
                policy.add_statement(Statement::max_exposure(
                    format!("EXPOSE-{}", field.id()),
                    format!(
                        "at most {max_identifier_exposure} actors may be able to identify `{}`",
                        field.id()
                    ),
                    field.id().clone(),
                    max_identifier_exposure,
                ));
            }
            _ => {}
        }
    }
    policy
}

/// A convenience statement forbidding every non-allowed actor from every
/// action on the given fields — the compliance counterpart of the paper's
/// "non-allowed actor" notion.
pub fn forbid_non_allowed(
    id: impl Into<String>,
    allowed_actors: impl IntoIterator<Item = privacy_model::ActorId>,
    fields: FieldMatcher,
) -> Statement {
    let allowed: Vec<privacy_model::ActorId> = allowed_actors.into_iter().collect();
    let description = format!(
        "only {{{}}} may act on {fields}",
        allowed.iter().map(|a| a.as_str()).collect::<Vec<_>>().join(", ")
    );
    Statement::new(
        id,
        description,
        StatementKind::Forbid { actors: ActorMatcher::except(allowed), action: None, fields },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::{ActorId, DataField, FieldId};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::quasi_identifier("Age")).unwrap();
        catalog.add_field_with_anonymised(DataField::sensitive("Diagnosis")).unwrap();
        catalog.add_field(DataField::sensitive("Weight")).unwrap();
        catalog
    }

    #[test]
    fn policy_builder_accumulates_statements_in_order() {
        let policy = PrivacyPolicy::new("p")
            .with_statement(Statement::require_erasure("A", "a", FieldMatcher::Any))
            .with_statement(Statement::max_exposure("B", "b", FieldId::new("Name"), 2));
        assert_eq!(policy.len(), 2);
        assert_eq!(policy.statements()[0].id(), "A");
        assert_eq!(policy.statement("B").unwrap().description(), "b");
        assert!(policy.statement("C").is_none());
        assert!(!policy.is_empty());
    }

    #[test]
    fn policy_collects_from_iterator_and_extends() {
        let mut policy: PrivacyPolicy =
            [Statement::require_erasure("A", "a", FieldMatcher::Any)].into_iter().collect();
        policy.extend([Statement::require_erasure("B", "b", FieldMatcher::Any)]);
        assert_eq!(policy.len(), 2);
    }

    #[test]
    fn baseline_policy_covers_sensitive_and_identifier_fields() {
        let policy = baseline_policy(&catalog(), [Purpose::new("treatment").unwrap()], 3);
        // Diagnosis + Weight get ERASE and PURPOSE, Name gets EXPOSE.
        assert!(policy.statement("ERASE-Diagnosis").is_some());
        assert!(policy.statement("PURPOSE-Diagnosis").is_some());
        assert!(policy.statement("ERASE-Weight").is_some());
        assert!(policy.statement("EXPOSE-Name").is_some());
        assert!(policy.statement("ERASE-Age").is_none());
        assert_eq!(policy.len(), 5);
    }

    #[test]
    fn baseline_policy_skips_pseudonymised_fields() {
        let policy = baseline_policy(&catalog(), [], 3);
        assert!(policy.iter().all(|s| !s.id().contains(privacy_model::FieldId::ANON_SUFFIX)));
    }

    #[test]
    fn baseline_policy_without_purposes_omits_purpose_statements() {
        let policy = baseline_policy(&catalog(), [], 3);
        assert!(policy.statement("PURPOSE-Diagnosis").is_none());
        assert!(policy.statement("ERASE-Diagnosis").is_some());
    }

    #[test]
    fn forbid_non_allowed_excludes_exactly_the_allowed_actors() {
        let statement = forbid_non_allowed(
            "F1",
            [ActorId::new("Doctor"), ActorId::new("Nurse")],
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        );
        match statement.kind() {
            StatementKind::Forbid { actors, action, fields } => {
                assert!(action.is_none());
                assert!(!actors.matches(&ActorId::new("Doctor")));
                assert!(actors.matches(&ActorId::new("Researcher")));
                assert!(fields.matches(&FieldId::new("Diagnosis")));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn policy_display_lists_every_statement() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "A",
            "erasable",
            FieldMatcher::Any,
        ));
        let text = policy.to_string();
        assert!(text.contains("privacy policy `p`"));
        assert!(text.contains("[A] erasable"));
    }
}
