//! Checking a privacy policy against the generated LTS privacy model.
//!
//! Every transition in the LTS represents a possible action on personal
//! data, so design-time compliance amounts to scanning the transition
//! relation (and, for exposure bounds, the reachable states) for behaviour
//! the policy rules out.

use crate::policy::PrivacyPolicy;
use crate::report::{ComplianceReport, StatementOutcome, Violation};
use crate::statement::{Statement, StatementKind};
use privacy_lts::{ActionKind, Lts, LtsQuery};
use privacy_model::FieldId;
use std::collections::BTreeSet;

/// Checks every statement of `policy` against the transitions and states of
/// `lts`.
///
/// [`StatementKind::ServiceLimit`] statements are reported as *skipped*: LTS
/// transitions carry an action, actor, field set and purpose, but not the
/// executing service, so the statement can only be checked against runtime
/// event logs ([`crate::runtime_check::check_log`]).
///
/// # Examples
///
/// ```
/// use privacy_compliance::{check_lts, FieldMatcher, PrivacyPolicy, Statement};
/// use privacy_core::casestudy;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = casestudy::healthcare()?;
/// let lts = system.generate_lts()?;
/// let policy = PrivacyPolicy::new("erasure only")
///     .with_statement(Statement::require_erasure("E1", "erasable", FieldMatcher::Any));
/// let report = check_lts(&lts, &policy);
/// // The healthcare flows never delete anything, so erasure fails.
/// assert!(!report.is_compliant());
/// # Ok(())
/// # }
/// ```
pub fn check_lts(lts: &Lts, policy: &PrivacyPolicy) -> ComplianceReport {
    let outcomes = policy.iter().map(|statement| check_statement(lts, statement)).collect();
    ComplianceReport::new(
        format!("LTS ({} states, {} transitions)", lts.state_count(), lts.transition_count()),
        outcomes,
    )
}

fn check_statement(lts: &Lts, statement: &Statement) -> StatementOutcome {
    let violations = match statement.kind() {
        StatementKind::Forbid { actors, action, fields } => {
            let mut violations = Vec::new();
            for (id, transition) in lts.transitions() {
                let label = transition.label();
                let action_matches = action.is_none_or(|a| a == label.action());
                if action_matches
                    && actors.matches(label.actor())
                    && fields.matches_any(label.fields())
                {
                    violations.push(Violation::new(
                        statement.id(),
                        format!("transition #{}", id.0),
                        format!(
                            "{:?} on {{{}}} by `{}` is forbidden by the policy",
                            label.action(),
                            join_fields(label.fields()),
                            label.actor()
                        ),
                    ));
                }
            }
            violations
        }
        StatementKind::PurposeLimit { fields, allowed } => {
            let mut violations = Vec::new();
            for (id, transition) in lts.transitions() {
                let label = transition.label();
                if !fields.matches_any(label.fields()) {
                    continue;
                }
                match label.purpose() {
                    Some(purpose) if allowed.contains(purpose) => {}
                    Some(purpose) => violations.push(Violation::new(
                        statement.id(),
                        format!("transition #{}", id.0),
                        format!(
                            "purpose `{purpose}` is not among the declared purposes for {{{}}}",
                            join_fields(label.fields())
                        ),
                    )),
                    None => violations.push(Violation::new(
                        statement.id(),
                        format!("transition #{}", id.0),
                        "the transition states no purpose for purpose-limited fields".to_string(),
                    )),
                }
            }
            violations
        }
        StatementKind::ServiceLimit { .. } => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "LTS transitions carry no service information; check the event log instead"
                    .into(),
            };
        }
        StatementKind::RequireErasure { fields } => {
            let processed: BTreeSet<&FieldId> = lts
                .transitions()
                .flat_map(|(_, t)| t.label().fields().iter())
                .filter(|f| fields.matches(f))
                .collect();
            let mut violations = Vec::new();
            for field in processed {
                let erasable = lts.transitions().any(|(_, t)| {
                    t.label().action() == ActionKind::Delete && t.label().involves_field(field)
                });
                if !erasable {
                    violations.push(Violation::new(
                        statement.id(),
                        format!("field `{field}`"),
                        "the model contains no delete action covering this field",
                    ));
                }
            }
            violations
        }
        StatementKind::MaxExposure { field, max_actors } => {
            let query = LtsQuery::new(lts);
            let exposed: Vec<&privacy_model::ActorId> = lts
                .space()
                .actors()
                .iter()
                .filter(|actor| query.can_actor_identify(actor, field))
                .collect();
            if exposed.len() > *max_actors {
                vec![Violation::new(
                    statement.id(),
                    format!("field `{field}`"),
                    format!(
                        "{} actors can identify the field (limit {}): {}",
                        exposed.len(),
                        max_actors,
                        exposed.iter().map(|a| a.as_str()).collect::<Vec<_>>().join(", ")
                    ),
                )]
            } else {
                Vec::new()
            }
        }
        // Future statement kinds default to skipped rather than silently passing.
        #[allow(unreachable_patterns)]
        _ => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "statement kind is not supported by the LTS checker".into(),
            };
        }
    };
    StatementOutcome::Checked { statement: statement.clone(), violations }
}

fn join_fields(fields: &BTreeSet<FieldId>) -> String {
    fields.iter().map(|f| f.as_str()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::{ActorMatcher, FieldMatcher};
    use privacy_lts::{PrivacyState, TransitionLabel, VarSpace};
    use privacy_model::{ActorId, Purpose};

    /// A tiny hand-built LTS: the Doctor collects and stores Diagnosis, the
    /// Administrator reads it, nothing is ever deleted.
    fn tiny_lts() -> Lts {
        let space = VarSpace::new(
            [ActorId::new("Doctor"), ActorId::new("Administrator")],
            [FieldId::new("Name"), FieldId::new("Diagnosis")],
        );
        let mut lts = Lts::new(space.clone());
        let s0 = lts.initial();
        let s1 = lts.intern(PrivacyState::absolute(&space).with_has(
            &space,
            &ActorId::new("Doctor"),
            &FieldId::new("Diagnosis"),
        ));
        let s2 = lts.intern(lts.state(s1).with_has(
            &space,
            &ActorId::new("Administrator"),
            &FieldId::new("Diagnosis"),
        ));
        lts.add_transition(
            s0,
            s1,
            TransitionLabel::new(ActionKind::Collect, "Doctor", [FieldId::new("Diagnosis")], None)
                .with_purpose(Purpose::new("consultation").unwrap()),
        );
        lts.add_transition(
            s1,
            s2,
            TransitionLabel::new(
                ActionKind::Read,
                "Administrator",
                [FieldId::new("Diagnosis")],
                None,
            )
            .with_purpose(Purpose::new("maintenance").unwrap()),
        );
        lts
    }

    #[test]
    fn forbid_flags_matching_transitions() {
        let lts = tiny_lts();
        let policy = PrivacyPolicy::new("p").with_statement(Statement::forbid(
            "F1",
            "administrator must not read diagnosis",
            ActorMatcher::only([ActorId::new("Administrator")]),
            Some(ActionKind::Read),
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        let report = check_lts(&lts, &policy);
        assert_eq!(report.violation_count(), 1);
        let violation = report.violations().next().unwrap();
        assert!(violation.subject().contains("transition #1"));
        assert!(violation.detail().contains("Administrator"));
    }

    #[test]
    fn forbid_with_unmatched_actor_passes() {
        let lts = tiny_lts();
        let policy = PrivacyPolicy::new("p").with_statement(Statement::forbid(
            "F2",
            "researcher must not read",
            ActorMatcher::only([ActorId::new("Researcher")]),
            None,
            FieldMatcher::Any,
        ));
        assert!(check_lts(&lts, &policy).is_compliant());
    }

    #[test]
    fn purpose_limit_accepts_declared_purposes_and_rejects_others() {
        let lts = tiny_lts();
        let ok = PrivacyPolicy::new("p").with_statement(Statement::purpose_limit(
            "P1",
            "diagnosis only for consultation and maintenance",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [Purpose::new("consultation").unwrap(), Purpose::new("maintenance").unwrap()],
        ));
        assert!(check_lts(&lts, &ok).is_compliant());

        let narrow = PrivacyPolicy::new("p").with_statement(Statement::purpose_limit(
            "P2",
            "diagnosis only for consultation",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [Purpose::new("consultation").unwrap()],
        ));
        let report = check_lts(&lts, &narrow);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("maintenance"));
    }

    #[test]
    fn purpose_limit_flags_missing_purposes() {
        let space = VarSpace::new([ActorId::new("Doctor")], [FieldId::new("Diagnosis")]);
        let mut lts = Lts::new(space);
        let s0 = lts.initial();
        lts.add_transition(
            s0,
            s0,
            TransitionLabel::new(ActionKind::Read, "Doctor", [FieldId::new("Diagnosis")], None),
        );
        let policy = PrivacyPolicy::new("p").with_statement(Statement::purpose_limit(
            "P3",
            "must state a purpose",
            FieldMatcher::Any,
            [Purpose::new("treatment").unwrap()],
        ));
        let report = check_lts(&lts, &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("no purpose"));
    }

    #[test]
    fn require_erasure_fails_without_delete_transitions() {
        let lts = tiny_lts();
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be erasable",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        let report = check_lts(&lts, &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().subject().contains("Diagnosis"));
    }

    #[test]
    fn require_erasure_passes_when_a_delete_action_exists() {
        let mut lts = tiny_lts();
        let s0 = lts.initial();
        lts.add_transition(
            s0,
            s0,
            TransitionLabel::new(ActionKind::Delete, "Doctor", [FieldId::new("Diagnosis")], None),
        );
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be erasable",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        assert!(check_lts(&lts, &policy).is_compliant());
    }

    #[test]
    fn require_erasure_ignores_fields_never_processed() {
        let lts = tiny_lts();
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E2",
            "weight must be erasable",
            FieldMatcher::only([FieldId::new("Weight")]),
        ));
        // Weight never appears in the LTS, so there is nothing to erase.
        assert!(check_lts(&lts, &policy).is_compliant());
    }

    #[test]
    fn max_exposure_counts_identifying_actors() {
        let lts = tiny_lts();
        let strict = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M1",
            "only one actor may identify diagnosis",
            FieldId::new("Diagnosis"),
            1,
        ));
        let report = check_lts(&lts, &strict);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("2 actors"));

        let relaxed = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M2",
            "two actors may identify diagnosis",
            FieldId::new("Diagnosis"),
            2,
        ));
        assert!(check_lts(&lts, &relaxed).is_compliant());
    }

    #[test]
    fn service_limit_is_skipped_on_the_lts() {
        let lts = tiny_lts();
        let policy = PrivacyPolicy::new("p").with_statement(Statement::service_limit(
            "S1",
            "diagnosis stays in the medical service",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [privacy_model::ServiceId::new("MedicalService")],
        ));
        let report = check_lts(&lts, &policy);
        assert!(report.is_compliant());
        assert_eq!(report.skipped().count(), 1);
    }

    #[test]
    fn report_target_mentions_the_lts_size() {
        let lts = tiny_lts();
        let report = check_lts(&lts, &PrivacyPolicy::new("empty"));
        assert!(report.target().contains("states"));
        assert!(report.is_compliant());
    }
}
