//! Checking a privacy policy against the generated LTS privacy model.
//!
//! Every transition in the LTS represents a possible action on personal
//! data, so design-time compliance amounts to finding behaviour the policy
//! rules out. Two interchangeable strategies exist:
//!
//! * **Index probes** ([`check_lts`], [`check_lts_indexed`],
//!   [`check_lts_batch`]) — the default. A columnar
//!   [`LtsIndex`] is built (or reused) and every statement resolves through
//!   posting lists and packed bitsets: `O(statements × transitions)` label
//!   scans become per-statement probes, and one index build is amortised
//!   over all statements of a policy (or, with the batch API, over many
//!   policies).
//! * **Label scans** ([`check_lts_scan`]) — the original implementation,
//!   retained verbatim for differential testing: for every statement it
//!   walks the full transition relation (and, for exposure bounds, the
//!   reachable states) comparing labels. Both strategies produce *identical*
//!   [`ComplianceReport`]s — same outcomes, same violation order, same
//!   messages — which the property tests in `tests/index_differential.rs`
//!   pin over random models.

use crate::policy::PrivacyPolicy;
use crate::report::{ComplianceReport, StatementOutcome, Violation};
use crate::statement::{FieldMatcher, Statement, StatementKind};
use privacy_lts::{ActionKind, Lts, LtsIndex, LtsQuery};
use privacy_model::FieldId;
use std::collections::BTreeSet;

/// Checks every statement of `policy` against the transitions and states of
/// `lts`, building a columnar analysis index once and probing it per
/// statement.
///
/// [`StatementKind::ServiceLimit`] statements are reported as *skipped*: LTS
/// transitions carry an action, actor, field set and purpose, but not the
/// executing service, so the statement can only be checked against runtime
/// event logs ([`crate::runtime_check::check_log`]).
///
/// # Examples
///
/// ```
/// use privacy_compliance::{check_lts, FieldMatcher, PrivacyPolicy, Statement};
/// use privacy_core::casestudy;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = casestudy::healthcare()?;
/// let lts = system.generate_lts()?;
/// let policy = PrivacyPolicy::new("erasure only")
///     .with_statement(Statement::require_erasure("E1", "erasable", FieldMatcher::Any));
/// let report = check_lts(&lts, &policy);
/// // The healthcare flows never delete anything, so erasure fails.
/// assert!(!report.is_compliant());
/// # Ok(())
/// # }
/// ```
pub fn check_lts(lts: &Lts, policy: &PrivacyPolicy) -> ComplianceReport {
    let index = LtsIndex::build(lts);
    check_lts_indexed(lts, &index, policy)
}

/// Checks a policy against a prebuilt analysis index. The index must have
/// been built from `lts` (and the LTS must not have been mutated since);
/// reusing one index across many [`check_lts_indexed`] calls is how the
/// batch path amortises the single build.
pub fn check_lts_indexed(lts: &Lts, index: &LtsIndex, policy: &PrivacyPolicy) -> ComplianceReport {
    let outcomes =
        policy.iter().map(|statement| check_statement_indexed(lts, index, statement)).collect();
    ComplianceReport::new(report_target(lts), outcomes)
}

/// Checks many policies over **one** index build, evaluating policies in
/// parallel over `threads` crossbeam scoped threads (`None` = one per CPU).
///
/// Reports come back in policy order and are identical to running
/// [`check_lts`] per policy (and therefore to [`check_lts_scan`]) — the
/// parallelism only partitions the policy list, never the evaluation of a
/// single statement.
pub fn check_lts_batch(
    lts: &Lts,
    policies: &[PrivacyPolicy],
    threads: Option<usize>,
) -> Vec<ComplianceReport> {
    let index = LtsIndex::build(lts);
    check_lts_batch_indexed(lts, &index, policies, threads)
}

/// Like [`check_lts_batch`] but over a prebuilt index (the benchmark uses
/// this to time probe throughput separately from the build).
pub fn check_lts_batch_indexed(
    lts: &Lts,
    index: &LtsIndex,
    policies: &[PrivacyPolicy],
    threads: Option<usize>,
) -> Vec<ComplianceReport> {
    privacy_lts::batch::parallel_map(policies, threads, |policy| {
        check_lts_indexed(lts, index, policy)
    })
}

/// The original full-scan checker, retained for differential testing and as
/// the reference semantics of [`check_lts`].
pub fn check_lts_scan(lts: &Lts, policy: &PrivacyPolicy) -> ComplianceReport {
    let outcomes = policy.iter().map(|statement| check_statement_scan(lts, statement)).collect();
    ComplianceReport::new(report_target(lts), outcomes)
}

fn report_target(lts: &Lts) -> String {
    format!("LTS ({} states, {} transitions)", lts.state_count(), lts.transition_count())
}

/// Checks one statement through index probes. Candidate transitions are
/// always visited in ascending id order — the order the scan path reports
/// violations in — so the two strategies render identical reports.
fn check_statement_indexed(lts: &Lts, index: &LtsIndex, statement: &Statement) -> StatementOutcome {
    let violations = match statement.kind() {
        StatementKind::Forbid { actors, action, fields } => {
            let field_mask = only_mask(index, fields);
            let actor_accept: Vec<bool> =
                index.actors().iter().map(|actor| actors.matches(actor)).collect();
            // Every transition's actor is interned, so a matcher accepting
            // no interned actor can never fire: skip the candidate walk.
            if !actor_accept.iter().any(|&accepted| accepted) {
                return StatementOutcome::Checked {
                    statement: statement.clone(),
                    violations: Vec::new(),
                };
            }
            let matches = |tx: u32| {
                actor_accept[index.actor_index_of(tx) as usize]
                    && matches_fields(index, tx, field_mask.as_deref())
            };
            let mut violations = Vec::new();
            let mut push = |tx: u32| {
                let label = lts.transition(privacy_lts::TransitionId(tx as usize)).label();
                violations.push(Violation::new(
                    statement.id(),
                    format!("transition #{tx}"),
                    format!(
                        "{:?} on {{{}}} by `{}` is forbidden by the policy",
                        label.action(),
                        join_fields(label.fields()),
                        label.actor()
                    ),
                ));
            };
            match action {
                Some(action) => {
                    for &tx in index.transitions_of_kind(*action) {
                        if matches(tx) {
                            push(tx);
                        }
                    }
                }
                None => {
                    for tx in 0..index.transition_count() as u32 {
                        if matches(tx) {
                            push(tx);
                        }
                    }
                }
            }
            violations
        }
        StatementKind::PurposeLimit { fields, allowed } => {
            let allowed_ids: BTreeSet<u32> =
                allowed.iter().filter_map(|purpose| index.purpose_index(purpose)).collect();
            let mut violations = Vec::new();
            for tx in candidate_transitions(index, fields) {
                match index.purpose_index_of(tx) {
                    Some(purpose) if allowed_ids.contains(&purpose) => {}
                    Some(_) => {
                        let label = lts.transition(privacy_lts::TransitionId(tx as usize)).label();
                        let purpose = label.purpose().expect("purpose column said Some");
                        violations.push(Violation::new(
                            statement.id(),
                            format!("transition #{tx}"),
                            format!(
                                "purpose `{purpose}` is not among the declared purposes for {{{}}}",
                                join_fields(label.fields())
                            ),
                        ));
                    }
                    None => violations.push(Violation::new(
                        statement.id(),
                        format!("transition #{tx}"),
                        "the transition states no purpose for purpose-limited fields".to_string(),
                    )),
                }
            }
            violations
        }
        StatementKind::ServiceLimit { .. } => return skip_service_limit(statement),
        StatementKind::RequireErasure { fields } => {
            // The fields processed anywhere in the model, in `FieldId` order
            // (the scan path's `BTreeSet` iteration order).
            let mut processed: Vec<&FieldId> = index
                .fields()
                .iter()
                .filter(|field| {
                    fields.matches(field) && !index.transitions_involving_field(field).is_empty()
                })
                .collect();
            processed.sort();
            processed
                .into_iter()
                .filter(|field| !index.kind_covers_field(ActionKind::Delete, field))
                .map(|field| {
                    Violation::new(
                        statement.id(),
                        format!("field `{field}`"),
                        "the model contains no delete action covering this field",
                    )
                })
                .collect()
        }
        StatementKind::MaxExposure { field, max_actors } => {
            let exposed: Vec<&privacy_model::ActorId> = lts
                .space()
                .actors()
                .iter()
                .filter(|actor| index.can_actor_identify(actor, field))
                .collect();
            max_exposure_violations(statement, field, *max_actors, exposed)
        }
        // Future statement kinds default to skipped rather than silently passing.
        #[allow(unreachable_patterns)]
        _ => return skip_unsupported(statement),
    };
    StatementOutcome::Checked { statement: statement.clone(), violations }
}

/// The candidate transitions of a field matcher, ascending: for `Any`,
/// every transition that carries at least one field (an empty field set
/// never matches a matcher); for `Only`, the deduplicated union of the
/// listed fields' posting lists.
fn candidate_transitions(index: &LtsIndex, fields: &FieldMatcher) -> Vec<u32> {
    match fields {
        FieldMatcher::Any => {
            (0..index.transition_count() as u32).filter(|&tx| index.has_fields(tx)).collect()
        }
        FieldMatcher::Only(set) => {
            let mut union: Vec<u32> = set
                .iter()
                .flat_map(|field| index.transitions_involving_field(field).iter().copied())
                .collect();
            union.sort_unstable();
            union.dedup();
            union
        }
    }
}

/// `None` means the matcher is [`FieldMatcher::Any`].
fn only_mask(index: &LtsIndex, fields: &FieldMatcher) -> Option<Vec<u64>> {
    match fields {
        FieldMatcher::Any => None,
        FieldMatcher::Only(set) => Some(index.field_mask(set.iter())),
    }
}

fn matches_fields(index: &LtsIndex, tx: u32, mask: Option<&[u64]>) -> bool {
    match mask {
        // `FieldMatcher::Any.matches_any` over an empty label field set is
        // false, so Any still requires at least one field.
        None => index.has_fields(tx),
        Some(mask) => index.involves_any(tx, mask),
    }
}

fn max_exposure_violations(
    statement: &Statement,
    field: &FieldId,
    max_actors: usize,
    exposed: Vec<&privacy_model::ActorId>,
) -> Vec<Violation> {
    if exposed.len() > max_actors {
        vec![Violation::new(
            statement.id(),
            format!("field `{field}`"),
            format!(
                "{} actors can identify the field (limit {}): {}",
                exposed.len(),
                max_actors,
                exposed.iter().map(|a| a.as_str()).collect::<Vec<_>>().join(", ")
            ),
        )]
    } else {
        Vec::new()
    }
}

fn skip_service_limit(statement: &Statement) -> StatementOutcome {
    StatementOutcome::Skipped {
        statement: statement.clone(),
        reason: "LTS transitions carry no service information; check the event log instead".into(),
    }
}

fn skip_unsupported(statement: &Statement) -> StatementOutcome {
    StatementOutcome::Skipped {
        statement: statement.clone(),
        reason: "statement kind is not supported by the LTS checker".into(),
    }
}

/// Checks one statement by scanning the transition relation (the retained
/// reference semantics).
fn check_statement_scan(lts: &Lts, statement: &Statement) -> StatementOutcome {
    let violations = match statement.kind() {
        StatementKind::Forbid { actors, action, fields } => {
            let mut violations = Vec::new();
            for (id, transition) in lts.transitions() {
                let label = transition.label();
                let action_matches = action.is_none_or(|a| a == label.action());
                if action_matches
                    && actors.matches(label.actor())
                    && fields.matches_any(label.fields())
                {
                    violations.push(Violation::new(
                        statement.id(),
                        format!("transition #{}", id.0),
                        format!(
                            "{:?} on {{{}}} by `{}` is forbidden by the policy",
                            label.action(),
                            join_fields(label.fields()),
                            label.actor()
                        ),
                    ));
                }
            }
            violations
        }
        StatementKind::PurposeLimit { fields, allowed } => {
            let mut violations = Vec::new();
            for (id, transition) in lts.transitions() {
                let label = transition.label();
                if !fields.matches_any(label.fields()) {
                    continue;
                }
                match label.purpose() {
                    Some(purpose) if allowed.contains(purpose) => {}
                    Some(purpose) => violations.push(Violation::new(
                        statement.id(),
                        format!("transition #{}", id.0),
                        format!(
                            "purpose `{purpose}` is not among the declared purposes for {{{}}}",
                            join_fields(label.fields())
                        ),
                    )),
                    None => violations.push(Violation::new(
                        statement.id(),
                        format!("transition #{}", id.0),
                        "the transition states no purpose for purpose-limited fields".to_string(),
                    )),
                }
            }
            violations
        }
        StatementKind::ServiceLimit { .. } => return skip_service_limit(statement),
        StatementKind::RequireErasure { fields } => {
            let processed: BTreeSet<&FieldId> = lts
                .transitions()
                .flat_map(|(_, t)| t.label().fields().iter())
                .filter(|f| fields.matches(f))
                .collect();
            let mut violations = Vec::new();
            for field in processed {
                let erasable = lts.transitions().any(|(_, t)| {
                    t.label().action() == ActionKind::Delete && t.label().involves_field(field)
                });
                if !erasable {
                    violations.push(Violation::new(
                        statement.id(),
                        format!("field `{field}`"),
                        "the model contains no delete action covering this field",
                    ));
                }
            }
            violations
        }
        StatementKind::MaxExposure { field, max_actors } => {
            let query = LtsQuery::new(lts);
            let exposed: Vec<&privacy_model::ActorId> = lts
                .space()
                .actors()
                .iter()
                .filter(|actor| query.can_actor_identify(actor, field))
                .collect();
            max_exposure_violations(statement, field, *max_actors, exposed)
        }
        // Future statement kinds default to skipped rather than silently passing.
        #[allow(unreachable_patterns)]
        _ => return skip_unsupported(statement),
    };
    StatementOutcome::Checked { statement: statement.clone(), violations }
}

fn join_fields(fields: &BTreeSet<FieldId>) -> String {
    fields.iter().map(|f| f.as_str()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::{ActorMatcher, FieldMatcher};
    use privacy_lts::{PrivacyState, TransitionLabel, VarSpace};
    use privacy_model::{ActorId, Purpose};

    /// A tiny hand-built LTS: the Doctor collects and stores Diagnosis, the
    /// Administrator reads it, nothing is ever deleted.
    fn tiny_lts() -> Lts {
        let space = VarSpace::new(
            [ActorId::new("Doctor"), ActorId::new("Administrator")],
            [FieldId::new("Name"), FieldId::new("Diagnosis")],
        );
        let mut lts = Lts::new(space.clone());
        let s0 = lts.initial();
        let s1 = lts.intern(PrivacyState::absolute(&space).with_has(
            &space,
            &ActorId::new("Doctor"),
            &FieldId::new("Diagnosis"),
        ));
        let s2 = lts.intern(lts.state(s1).with_has(
            &space,
            &ActorId::new("Administrator"),
            &FieldId::new("Diagnosis"),
        ));
        lts.add_transition(
            s0,
            s1,
            TransitionLabel::new(ActionKind::Collect, "Doctor", [FieldId::new("Diagnosis")], None)
                .with_purpose(Purpose::new("consultation").unwrap()),
        );
        lts.add_transition(
            s1,
            s2,
            TransitionLabel::new(
                ActionKind::Read,
                "Administrator",
                [FieldId::new("Diagnosis")],
                None,
            )
            .with_purpose(Purpose::new("maintenance").unwrap()),
        );
        lts
    }

    /// Every unit-test policy must produce identical reports through the
    /// index and through the scan.
    fn check_both(lts: &Lts, policy: &PrivacyPolicy) -> ComplianceReport {
        let indexed = check_lts(lts, policy);
        let scanned = check_lts_scan(lts, policy);
        assert_eq!(indexed, scanned, "index and scan reports diverge");
        indexed
    }

    #[test]
    fn forbid_flags_matching_transitions() {
        let lts = tiny_lts();
        let policy = PrivacyPolicy::new("p").with_statement(Statement::forbid(
            "F1",
            "administrator must not read diagnosis",
            ActorMatcher::only([ActorId::new("Administrator")]),
            Some(ActionKind::Read),
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        let report = check_both(&lts, &policy);
        assert_eq!(report.violation_count(), 1);
        let violation = report.violations().next().unwrap();
        assert!(violation.subject().contains("transition #1"));
        assert!(violation.detail().contains("Administrator"));
    }

    #[test]
    fn forbid_with_unmatched_actor_passes() {
        let lts = tiny_lts();
        let policy = PrivacyPolicy::new("p").with_statement(Statement::forbid(
            "F2",
            "researcher must not read",
            ActorMatcher::only([ActorId::new("Researcher")]),
            None,
            FieldMatcher::Any,
        ));
        assert!(check_both(&lts, &policy).is_compliant());
    }

    #[test]
    fn purpose_limit_accepts_declared_purposes_and_rejects_others() {
        let lts = tiny_lts();
        let ok = PrivacyPolicy::new("p").with_statement(Statement::purpose_limit(
            "P1",
            "diagnosis only for consultation and maintenance",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [Purpose::new("consultation").unwrap(), Purpose::new("maintenance").unwrap()],
        ));
        assert!(check_both(&lts, &ok).is_compliant());

        let narrow = PrivacyPolicy::new("p").with_statement(Statement::purpose_limit(
            "P2",
            "diagnosis only for consultation",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [Purpose::new("consultation").unwrap()],
        ));
        let report = check_both(&lts, &narrow);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("maintenance"));
    }

    #[test]
    fn purpose_limit_flags_missing_purposes() {
        let space = VarSpace::new([ActorId::new("Doctor")], [FieldId::new("Diagnosis")]);
        let mut lts = Lts::new(space);
        let s0 = lts.initial();
        lts.add_transition(
            s0,
            s0,
            TransitionLabel::new(ActionKind::Read, "Doctor", [FieldId::new("Diagnosis")], None),
        );
        let policy = PrivacyPolicy::new("p").with_statement(Statement::purpose_limit(
            "P3",
            "must state a purpose",
            FieldMatcher::Any,
            [Purpose::new("treatment").unwrap()],
        ));
        let report = check_both(&lts, &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("no purpose"));
    }

    #[test]
    fn require_erasure_fails_without_delete_transitions() {
        let lts = tiny_lts();
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be erasable",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        let report = check_both(&lts, &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().subject().contains("Diagnosis"));
    }

    #[test]
    fn require_erasure_passes_when_a_delete_action_exists() {
        let mut lts = tiny_lts();
        let s0 = lts.initial();
        lts.add_transition(
            s0,
            s0,
            TransitionLabel::new(ActionKind::Delete, "Doctor", [FieldId::new("Diagnosis")], None),
        );
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be erasable",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        assert!(check_both(&lts, &policy).is_compliant());
    }

    #[test]
    fn require_erasure_ignores_fields_never_processed() {
        let lts = tiny_lts();
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E2",
            "weight must be erasable",
            FieldMatcher::only([FieldId::new("Weight")]),
        ));
        // Weight never appears in the LTS, so there is nothing to erase.
        assert!(check_both(&lts, &policy).is_compliant());
    }

    #[test]
    fn max_exposure_counts_identifying_actors() {
        let lts = tiny_lts();
        let strict = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M1",
            "only one actor may identify diagnosis",
            FieldId::new("Diagnosis"),
            1,
        ));
        let report = check_both(&lts, &strict);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("2 actors"));

        let relaxed = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M2",
            "two actors may identify diagnosis",
            FieldId::new("Diagnosis"),
            2,
        ));
        assert!(check_both(&lts, &relaxed).is_compliant());
    }

    #[test]
    fn service_limit_is_skipped_on_the_lts() {
        let lts = tiny_lts();
        let policy = PrivacyPolicy::new("p").with_statement(Statement::service_limit(
            "S1",
            "diagnosis stays in the medical service",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [privacy_model::ServiceId::new("MedicalService")],
        ));
        let report = check_both(&lts, &policy);
        assert!(report.is_compliant());
        assert_eq!(report.skipped().count(), 1);
    }

    #[test]
    fn report_target_mentions_the_lts_size() {
        let lts = tiny_lts();
        let report = check_both(&lts, &PrivacyPolicy::new("empty"));
        assert!(report.target().contains("states"));
        assert!(report.is_compliant());
    }

    #[test]
    fn batch_reports_match_per_policy_checks_in_order() {
        let lts = tiny_lts();
        let policies: Vec<PrivacyPolicy> = vec![
            PrivacyPolicy::new("a").with_statement(Statement::forbid(
                "F1",
                "no admin reads",
                ActorMatcher::only([ActorId::new("Administrator")]),
                Some(ActionKind::Read),
                FieldMatcher::Any,
            )),
            PrivacyPolicy::new("b").with_statement(Statement::require_erasure(
                "E1",
                "erasable",
                FieldMatcher::Any,
            )),
            PrivacyPolicy::new("c"),
        ];
        let expected: Vec<ComplianceReport> =
            policies.iter().map(|policy| check_lts_scan(&lts, policy)).collect();
        for threads in [None, Some(1), Some(2), Some(4)] {
            assert_eq!(check_lts_batch(&lts, &policies, threads), expected);
        }
        assert!(check_lts_batch(&lts, &[], Some(2)).is_empty());
    }

    #[test]
    fn indexed_checker_reuses_a_prebuilt_index() {
        let lts = tiny_lts();
        let index = LtsIndex::build(&lts);
        let policy = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M1",
            "bounded",
            FieldId::new("Diagnosis"),
            1,
        ));
        let a = check_lts_indexed(&lts, &index, &policy);
        let b = check_lts_indexed(&lts, &index, &policy);
        assert_eq!(a, b);
        assert_eq!(a, check_lts_scan(&lts, &policy));
    }
}
