//! Compliance reports: the outcome of checking a policy against a model or
//! an observed execution.

use crate::statement::Statement;
use std::fmt;

/// One detected breach of a policy statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    statement_id: String,
    subject: String,
    detail: String,
}

impl Violation {
    /// Creates a violation record.
    pub fn new(
        statement_id: impl Into<String>,
        subject: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        Violation {
            statement_id: statement_id.into(),
            subject: subject.into(),
            detail: detail.into(),
        }
    }

    /// The identifier of the violated statement.
    pub fn statement_id(&self) -> &str {
        &self.statement_id
    }

    /// What violated it (a transition, an event, a field...).
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// Why it is a violation.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.statement_id, self.subject, self.detail)
    }
}

/// The outcome of checking one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementOutcome {
    /// The statement was checked; zero violations means it holds.
    Checked {
        /// The checked statement.
        statement: Statement,
        /// The violations found (empty when the statement holds).
        violations: Vec<Violation>,
    },
    /// The statement cannot be evaluated against this artifact (e.g. a
    /// service-limit statement against an LTS, which carries no service
    /// information).
    Skipped {
        /// The skipped statement.
        statement: Statement,
        /// Why it was skipped.
        reason: String,
    },
}

impl StatementOutcome {
    /// The statement this outcome refers to.
    pub fn statement(&self) -> &Statement {
        match self {
            StatementOutcome::Checked { statement, .. }
            | StatementOutcome::Skipped { statement, .. } => statement,
        }
    }

    /// The violations found (empty for skipped statements).
    pub fn violations(&self) -> &[Violation] {
        match self {
            StatementOutcome::Checked { violations, .. } => violations,
            StatementOutcome::Skipped { .. } => &[],
        }
    }

    /// Whether the statement was checked and holds.
    pub fn holds(&self) -> bool {
        matches!(self, StatementOutcome::Checked { violations, .. } if violations.is_empty())
    }

    /// Whether the statement was skipped.
    pub fn is_skipped(&self) -> bool {
        matches!(self, StatementOutcome::Skipped { .. })
    }
}

/// The result of checking a whole [`crate::PrivacyPolicy`] against one
/// artifact (an LTS or an event log).
#[derive(Debug, Clone, PartialEq)]
pub struct ComplianceReport {
    target: String,
    outcomes: Vec<StatementOutcome>,
}

impl ComplianceReport {
    /// Creates a report for the named target artifact.
    pub fn new(target: impl Into<String>, outcomes: Vec<StatementOutcome>) -> Self {
        ComplianceReport { target: target.into(), outcomes }
    }

    /// A short description of what was checked (e.g. `"LTS of MedicalService"`).
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Per-statement outcomes in policy order.
    pub fn outcomes(&self) -> &[StatementOutcome] {
        &self.outcomes
    }

    /// Every violation across all statements.
    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.outcomes.iter().flat_map(|o| o.violations().iter())
    }

    /// Total number of violations.
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }

    /// Statements that could not be evaluated against this artifact.
    pub fn skipped(&self) -> impl Iterator<Item = &StatementOutcome> {
        self.outcomes.iter().filter(|o| o.is_skipped())
    }

    /// Whether every checked statement holds (skipped statements do not count
    /// against compliance).
    pub fn is_compliant(&self) -> bool {
        self.violation_count() == 0
    }

    /// The outcome for a particular statement identifier.
    pub fn outcome(&self, statement_id: &str) -> Option<&StatementOutcome> {
        self.outcomes.iter().find(|o| o.statement().id() == statement_id)
    }

    /// Renders a human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "compliance report for {} — {} statement(s), {} violation(s)\n",
            self.target,
            self.outcomes.len(),
            self.violation_count()
        );
        for outcome in &self.outcomes {
            match outcome {
                StatementOutcome::Checked { statement, violations } if violations.is_empty() => {
                    out.push_str(&format!("  PASS  {statement}\n"));
                }
                StatementOutcome::Checked { statement, violations } => {
                    out.push_str(&format!("  FAIL  {statement}\n"));
                    for violation in violations {
                        out.push_str(&format!(
                            "        - {}: {}\n",
                            violation.subject(),
                            violation.detail()
                        ));
                    }
                }
                StatementOutcome::Skipped { statement, reason } => {
                    out.push_str(&format!("  SKIP  {statement} ({reason})\n"));
                }
            }
        }
        out
    }
}

impl fmt::Display for ComplianceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::FieldMatcher;

    fn statement(id: &str) -> Statement {
        Statement::require_erasure(id, "erasable", FieldMatcher::Any)
    }

    fn sample_report() -> ComplianceReport {
        ComplianceReport::new(
            "test artifact",
            vec![
                StatementOutcome::Checked { statement: statement("A"), violations: vec![] },
                StatementOutcome::Checked {
                    statement: statement("B"),
                    violations: vec![Violation::new("B", "field `Weight`", "no delete action")],
                },
                StatementOutcome::Skipped {
                    statement: statement("C"),
                    reason: "not checkable here".into(),
                },
            ],
        )
    }

    #[test]
    fn report_counts_violations_across_statements() {
        let report = sample_report();
        assert_eq!(report.violation_count(), 1);
        assert!(!report.is_compliant());
        assert_eq!(report.skipped().count(), 1);
        assert_eq!(report.outcomes().len(), 3);
    }

    #[test]
    fn statement_outcomes_expose_holds_and_skipped() {
        let report = sample_report();
        assert!(report.outcome("A").unwrap().holds());
        assert!(!report.outcome("B").unwrap().holds());
        assert!(report.outcome("C").unwrap().is_skipped());
        assert!(report.outcome("Z").is_none());
    }

    #[test]
    fn empty_report_is_compliant() {
        let report = ComplianceReport::new("nothing", vec![]);
        assert!(report.is_compliant());
        assert_eq!(report.violation_count(), 0);
    }

    #[test]
    fn render_marks_pass_fail_and_skip_lines() {
        let text = sample_report().render();
        assert!(text.contains("PASS  [A]"));
        assert!(text.contains("FAIL  [B]"));
        assert!(text.contains("SKIP  [C]"));
        assert!(text.contains("no delete action"));
        assert_eq!(text, sample_report().to_string());
    }

    #[test]
    fn violation_accessors_round_trip() {
        let violation = Violation::new("X", "transition #3", "forbidden read");
        assert_eq!(violation.statement_id(), "X");
        assert_eq!(violation.subject(), "transition #3");
        assert_eq!(violation.detail(), "forbidden read");
        assert_eq!(violation.to_string(), "[X] transition #3: forbidden read");
    }
}
