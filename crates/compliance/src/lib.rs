//! # privacy-compliance
//!
//! Privacy-policy compliance checking for the model-driven framework of
//! *"Identifying Privacy Risks in Distributed Data Services"* (Grace et al.,
//! ICDCS 2018).
//!
//! Section V of the paper observes that a system's behaviour should be
//! matched against its own stated privacy policy and notes that the
//! generated LTS "can be similarly analysed".  This crate provides that
//! analysis:
//!
//! * [`statement`] — the machine-checkable vocabulary of policy statements:
//!   prohibitions ([`StatementKind::Forbid`]), purpose limitation, service
//!   limitation, the right to erasure and exposure bounds;
//! * [`policy`] — [`PrivacyPolicy`]: a named collection of statements, plus
//!   [`baseline_policy`] which derives GDPR-style hygiene obligations from a
//!   catalog;
//! * [`lts_check`] — design-time checking of a policy against the generated
//!   LTS privacy model: [`check_lts`] probes a columnar
//!   [`privacy_lts::LtsIndex`] built once per call (or reused across calls
//!   via [`check_lts_indexed`] and the parallel [`check_lts_batch`]), while
//!   [`check_lts_scan`] retains the original full-scan semantics for
//!   differential testing;
//! * [`runtime_check`] — operation-time checking of the same policy against
//!   the event logs produced by the [`privacy_runtime`] service simulator:
//!   [`check_log`] probes a columnar [`privacy_runtime::EventLogIndex`]
//!   built once per call (or reused across calls via [`check_log_indexed`]),
//!   while [`check_log_scan`] retains the original per-statement full scans
//!   for differential testing; periodic audits over the append-only log go
//!   through [`check_log_checkpointed`] with an [`AuditCheckpoint`], paying
//!   only for the suffix appended since the previous audit;
//! * [`report`] — the per-statement pass / fail / skipped outcome and a
//!   renderable [`ComplianceReport`].
//!
//! # Example
//!
//! ```
//! use privacy_compliance::{check_lts, ActorMatcher, FieldMatcher, PrivacyPolicy, Statement};
//! use privacy_core::casestudy;
//! use privacy_lts::ActionKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = casestudy::healthcare()?;
//! let lts = system.generate_lts()?;
//!
//! // "Only the care team may read the diagnosis."
//! let policy = PrivacyPolicy::new("clinic promises").with_statement(Statement::forbid(
//!     "NO-ADMIN-READ",
//!     "administrators never read the diagnosis",
//!     ActorMatcher::only([casestudy::actors::administrator()]),
//!     Some(ActionKind::Read),
//!     FieldMatcher::only([casestudy::fields::diagnosis()]),
//! ));
//!
//! let report = check_lts(&lts, &policy);
//! // The default access policy lets the administrator read the EHR, so the
//! // promise does not hold — exactly the unwanted disclosure of Case Study A.
//! assert!(!report.is_compliant());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lts_check;
pub mod policy;
pub mod report;
pub mod runtime_check;
pub mod statement;

pub use lts_check::{
    check_lts, check_lts_batch, check_lts_batch_indexed, check_lts_indexed, check_lts_scan,
};
pub use policy::{baseline_policy, forbid_non_allowed, PrivacyPolicy};
pub use report::{ComplianceReport, StatementOutcome, Violation};
pub use runtime_check::{
    check_log, check_log_checkpointed, check_log_indexed, check_log_scan, AuditCheckpoint,
    AuditError,
};
pub use statement::{ActorMatcher, FieldMatcher, Statement, StatementKind};

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::lts_check::{
        check_lts, check_lts_batch, check_lts_batch_indexed, check_lts_indexed, check_lts_scan,
    };
    pub use crate::policy::{baseline_policy, forbid_non_allowed, PrivacyPolicy};
    pub use crate::report::{ComplianceReport, StatementOutcome, Violation};
    pub use crate::runtime_check::{
        check_log, check_log_checkpointed, check_log_indexed, check_log_scan, AuditCheckpoint,
        AuditError,
    };
    pub use crate::statement::{ActorMatcher, FieldMatcher, Statement, StatementKind};
}
