//! The vocabulary of privacy-policy statements.
//!
//! A [`Statement`] is one machine-checkable promise made by a system's
//! privacy policy.  The related-work section of the paper (Section V)
//! observes that a system's *behaviour* should be matched against its own
//! stated privacy policy; the checkers in [`crate::lts_check`] and
//! [`crate::runtime_check`] do exactly that, against the generated LTS and
//! against runtime event logs respectively.

use privacy_lts::ActionKind;
use privacy_model::{ActorId, FieldId, Purpose, ServiceId};
use std::collections::BTreeSet;
use std::fmt;

/// Selects which actors a statement applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActorMatcher {
    /// Every actor.
    Any,
    /// Only the listed actors.
    Only(BTreeSet<ActorId>),
    /// Every actor except the listed ones.
    Except(BTreeSet<ActorId>),
}

impl ActorMatcher {
    /// Matches only the given actors.
    pub fn only(actors: impl IntoIterator<Item = ActorId>) -> Self {
        ActorMatcher::Only(actors.into_iter().collect())
    }

    /// Matches every actor except the given ones.
    pub fn except(actors: impl IntoIterator<Item = ActorId>) -> Self {
        ActorMatcher::Except(actors.into_iter().collect())
    }

    /// Whether the matcher selects `actor`.
    pub fn matches(&self, actor: &ActorId) -> bool {
        match self {
            ActorMatcher::Any => true,
            ActorMatcher::Only(set) => set.contains(actor),
            ActorMatcher::Except(set) => !set.contains(actor),
        }
    }
}

impl fmt::Display for ActorMatcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActorMatcher::Any => f.write_str("any actor"),
            ActorMatcher::Only(set) => {
                let names: Vec<&str> = set.iter().map(|a| a.as_str()).collect();
                write!(f, "only {{{}}}", names.join(", "))
            }
            ActorMatcher::Except(set) => {
                let names: Vec<&str> = set.iter().map(|a| a.as_str()).collect();
                write!(f, "anyone except {{{}}}", names.join(", "))
            }
        }
    }
}

/// Selects which data fields a statement applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldMatcher {
    /// Every field.
    Any,
    /// Only the listed fields.
    Only(BTreeSet<FieldId>),
}

impl FieldMatcher {
    /// Matches only the given fields.
    pub fn only(fields: impl IntoIterator<Item = FieldId>) -> Self {
        FieldMatcher::Only(fields.into_iter().collect())
    }

    /// Whether the matcher selects `field`.
    pub fn matches(&self, field: &FieldId) -> bool {
        match self {
            FieldMatcher::Any => true,
            FieldMatcher::Only(set) => set.contains(field),
        }
    }

    /// Whether any field in `fields` is selected.
    pub fn matches_any<'a>(&self, fields: impl IntoIterator<Item = &'a FieldId>) -> bool {
        fields.into_iter().any(|f| self.matches(f))
    }
}

impl fmt::Display for FieldMatcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldMatcher::Any => f.write_str("any field"),
            FieldMatcher::Only(set) => {
                let names: Vec<&str> = set.iter().map(|x| x.as_str()).collect();
                write!(f, "{{{}}}", names.join(", "))
            }
        }
    }
}

/// The body of a privacy-policy statement.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatementKind {
    /// The listed actors must never perform the (optionally restricted)
    /// action on the listed fields.
    Forbid {
        /// Which actors the prohibition applies to.
        actors: ActorMatcher,
        /// Restrict the prohibition to one action; `None` forbids every
        /// action kind.
        action: Option<ActionKind>,
        /// Which fields are covered.
        fields: FieldMatcher,
    },
    /// The listed fields may only be processed for the listed purposes.
    PurposeLimit {
        /// Which fields are covered.
        fields: FieldMatcher,
        /// The closed set of acceptable purposes.
        allowed: BTreeSet<Purpose>,
    },
    /// The listed fields may only be processed in the course of the listed
    /// services (checkable against runtime event logs, which record the
    /// executing service).
    ServiceLimit {
        /// Which fields are covered.
        fields: FieldMatcher,
        /// The services allowed to process them.
        allowed: BTreeSet<ServiceId>,
    },
    /// Personal data in the listed fields must be erasable: the model (or
    /// the observed behaviour) must contain a `delete` action covering them.
    RequireErasure {
        /// Which fields must be erasable.
        fields: FieldMatcher,
    },
    /// At most `max_actors` distinct actors may be able to identify the
    /// field (counting both *has identified* and *could identify*).
    MaxExposure {
        /// The field whose exposure is bounded.
        field: FieldId,
        /// The maximum number of distinct actors allowed.
        max_actors: usize,
    },
}

/// One statement of a privacy policy: an identifier, a human-readable
/// description and the machine-checkable [`StatementKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    id: String,
    description: String,
    kind: StatementKind,
}

impl Statement {
    /// Creates a statement.
    ///
    /// # Examples
    ///
    /// ```
    /// use privacy_compliance::{ActorMatcher, FieldMatcher, Statement, StatementKind};
    /// use privacy_model::ActorId;
    ///
    /// let statement = Statement::new(
    ///     "S1",
    ///     "researchers must never read raw records",
    ///     StatementKind::Forbid {
    ///         actors: ActorMatcher::only([ActorId::new("Researcher")]),
    ///         action: None,
    ///         fields: FieldMatcher::Any,
    ///     },
    /// );
    /// assert_eq!(statement.id(), "S1");
    /// ```
    pub fn new(id: impl Into<String>, description: impl Into<String>, kind: StatementKind) -> Self {
        Statement { id: id.into(), description: description.into(), kind }
    }

    /// Shorthand for a [`StatementKind::Forbid`] statement.
    pub fn forbid(
        id: impl Into<String>,
        description: impl Into<String>,
        actors: ActorMatcher,
        action: Option<ActionKind>,
        fields: FieldMatcher,
    ) -> Self {
        Statement::new(id, description, StatementKind::Forbid { actors, action, fields })
    }

    /// Shorthand for a [`StatementKind::PurposeLimit`] statement.
    pub fn purpose_limit(
        id: impl Into<String>,
        description: impl Into<String>,
        fields: FieldMatcher,
        allowed: impl IntoIterator<Item = Purpose>,
    ) -> Self {
        Statement::new(
            id,
            description,
            StatementKind::PurposeLimit { fields, allowed: allowed.into_iter().collect() },
        )
    }

    /// Shorthand for a [`StatementKind::ServiceLimit`] statement.
    pub fn service_limit(
        id: impl Into<String>,
        description: impl Into<String>,
        fields: FieldMatcher,
        allowed: impl IntoIterator<Item = ServiceId>,
    ) -> Self {
        Statement::new(
            id,
            description,
            StatementKind::ServiceLimit { fields, allowed: allowed.into_iter().collect() },
        )
    }

    /// Shorthand for a [`StatementKind::RequireErasure`] statement.
    pub fn require_erasure(
        id: impl Into<String>,
        description: impl Into<String>,
        fields: FieldMatcher,
    ) -> Self {
        Statement::new(id, description, StatementKind::RequireErasure { fields })
    }

    /// Shorthand for a [`StatementKind::MaxExposure`] statement.
    pub fn max_exposure(
        id: impl Into<String>,
        description: impl Into<String>,
        field: FieldId,
        max_actors: usize,
    ) -> Self {
        Statement::new(id, description, StatementKind::MaxExposure { field, max_actors })
    }

    /// The statement identifier (e.g. `"P3"`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The machine-checkable body.
    pub fn kind(&self) -> &StatementKind {
        &self.kind
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.id, self.description)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_matcher_any_matches_everything() {
        assert!(ActorMatcher::Any.matches(&ActorId::new("Doctor")));
    }

    #[test]
    fn actor_matcher_only_matches_listed_actors() {
        let matcher = ActorMatcher::only([ActorId::new("Doctor"), ActorId::new("Nurse")]);
        assert!(matcher.matches(&ActorId::new("Doctor")));
        assert!(!matcher.matches(&ActorId::new("Researcher")));
    }

    #[test]
    fn actor_matcher_except_excludes_listed_actors() {
        let matcher = ActorMatcher::except([ActorId::new("Doctor")]);
        assert!(!matcher.matches(&ActorId::new("Doctor")));
        assert!(matcher.matches(&ActorId::new("Researcher")));
    }

    #[test]
    fn field_matcher_only_matches_listed_fields() {
        let matcher = FieldMatcher::only([FieldId::new("Diagnosis")]);
        assert!(matcher.matches(&FieldId::new("Diagnosis")));
        assert!(!matcher.matches(&FieldId::new("Name")));
        assert!(matcher.matches_any([&FieldId::new("Name"), &FieldId::new("Diagnosis")]));
        assert!(!matcher.matches_any([&FieldId::new("Name")]));
    }

    #[test]
    fn matchers_render_readably() {
        assert_eq!(ActorMatcher::Any.to_string(), "any actor");
        assert_eq!(
            ActorMatcher::only([ActorId::new("A"), ActorId::new("B")]).to_string(),
            "only {A, B}"
        );
        assert_eq!(ActorMatcher::except([ActorId::new("A")]).to_string(), "anyone except {A}");
        assert_eq!(FieldMatcher::Any.to_string(), "any field");
        assert_eq!(FieldMatcher::only([FieldId::new("W")]).to_string(), "{W}");
    }

    #[test]
    fn statement_accessors_and_display() {
        let statement =
            Statement::require_erasure("E1", "data must be erasable", FieldMatcher::Any);
        assert_eq!(statement.id(), "E1");
        assert_eq!(statement.description(), "data must be erasable");
        assert!(matches!(statement.kind(), StatementKind::RequireErasure { .. }));
        assert_eq!(statement.to_string(), "[E1] data must be erasable");
    }

    #[test]
    fn shorthand_constructors_produce_the_expected_kinds() {
        let forbid = Statement::forbid(
            "F1",
            "no researcher reads",
            ActorMatcher::only([ActorId::new("Researcher")]),
            Some(ActionKind::Read),
            FieldMatcher::Any,
        );
        assert!(matches!(
            forbid.kind(),
            StatementKind::Forbid { action: Some(ActionKind::Read), .. }
        ));

        let purpose = Statement::purpose_limit(
            "P1",
            "diagnosis only for treatment",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [Purpose::new("treatment").unwrap()],
        );
        assert!(
            matches!(purpose.kind(), StatementKind::PurposeLimit { allowed, .. } if allowed.len() == 1)
        );

        let service = Statement::service_limit(
            "S1",
            "diagnosis stays in the medical service",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [ServiceId::new("MedicalService")],
        );
        assert!(
            matches!(service.kind(), StatementKind::ServiceLimit { allowed, .. } if allowed.len() == 1)
        );

        let exposure = Statement::max_exposure("M1", "bounded", FieldId::new("Weight"), 3);
        assert!(matches!(exposure.kind(), StatementKind::MaxExposure { max_actors: 3, .. }));
    }
}
