//! Checking a privacy policy against runtime event logs.
//!
//! The paper motivates applying the model-driven analysis to *running*
//! systems; the [`privacy_runtime`] simulator produces an [`EventLog`] of
//! permitted and denied actions, and this module audits that log against the
//! same [`PrivacyPolicy`] used at design time.
//!
//! Two interchangeable execution strategies exist, mirroring the LTS
//! checker's split:
//!
//! * **Index probes** ([`check_log`], [`check_log_indexed`]) — the default.
//!   One columnar [`EventLogIndex`] build turns every statement into posting
//!   -list probes: matchers are evaluated once per *distinct* interned
//!   actor/service instead of once per event, prohibitions walk only their
//!   action's posting list, erasure reads a precomputed per-`(user, field)`
//!   timeline and exposure bounds are a popcount. [`check_log_indexed`]
//!   amortises one build over many policies (the batch-audit shape).
//! * **Full scans** ([`check_log_scan`]) — the original implementation,
//!   retained verbatim for differential testing: every statement re-walks
//!   the whole log. Both strategies produce identical reports; the property
//!   tests in `tests/runtime_log_differential.rs` pin the equivalence.
//!
//! For **periodic audits over the append-only log** there is a third entry
//! point, [`check_log_checkpointed`]: the caller maintains one
//! [`EventLogIndex`] via [`EventLogIndex::append`] and carries an
//! [`AuditCheckpoint`] between audits. Per-event statements (prohibitions,
//! service limits) then probe only the posting-list *suffix* past the
//! checkpoint and splice the previously reported violations in front, while
//! the aggregate statements (erasure, exposure) re-read the incrementally
//! maintained timelines and observer bitsets — so each audit pays O(new
//! events + statements), yet the produced report is identical to a
//! from-scratch [`check_log`] (and [`check_log_scan`]) over the whole log.

use crate::policy::PrivacyPolicy;
use crate::report::{ComplianceReport, StatementOutcome, Violation};
use crate::statement::{FieldMatcher, Statement, StatementKind};
use privacy_lts::ActionKind;
use privacy_model::{ActorId, FieldId, UserId};
use privacy_runtime::{Event, EventLog, EventLogIndex};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Checks every statement of `policy` against the observed events in `log`,
/// building a columnar [`EventLogIndex`] once and probing it per statement.
///
/// Only *permitted* events count as behaviour: denied attempts were stopped
/// by the access-control enforcement and therefore do not breach the policy.
/// [`StatementKind::PurposeLimit`] statements are reported as skipped —
/// runtime events record the executing service but not a per-action purpose.
///
/// # Examples
///
/// ```
/// use privacy_compliance::{check_log, PrivacyPolicy};
/// use privacy_runtime::EventLog;
///
/// let report = check_log(&EventLog::new(), &PrivacyPolicy::new("empty"));
/// assert!(report.is_compliant());
/// ```
pub fn check_log(log: &EventLog, policy: &PrivacyPolicy) -> ComplianceReport {
    let index = EventLogIndex::build(log);
    check_log_indexed(log, &index, policy)
}

/// Like [`check_log`] but over a prebuilt index, so one build serves many
/// policies. The index must have been built from `log` in its current state.
pub fn check_log_indexed(
    log: &EventLog,
    index: &EventLogIndex,
    policy: &PrivacyPolicy,
) -> ComplianceReport {
    let outcomes =
        policy.iter().map(|statement| probe_statement(log, index, statement, 0)).collect();
    ComplianceReport::new(format!("event log ({} events)", log.len()), outcomes)
}

/// The carried-over state of a periodic audit: how much of the append-only
/// log previous audits already covered, and — per per-event statement — the
/// violations already reported for that prefix. Produced and consumed by
/// [`check_log_checkpointed`]; an audit that starts from `None` covers the
/// whole log and is identical to [`check_log`].
#[derive(Debug, Clone, PartialEq)]
pub struct AuditCheckpoint {
    /// Events `0..events_checked` of the log are covered by
    /// [`AuditCheckpoint::statements`].
    events_checked: usize,
    /// One entry per policy statement, in policy order.
    statements: Vec<StatementCheckpoint>,
}

/// One statement's accumulated per-event violations (empty for aggregate
/// statement kinds, which re-read the index's incrementally maintained
/// aggregates instead of accumulating).
#[derive(Debug, Clone, PartialEq)]
struct StatementCheckpoint {
    id: String,
    violations: Vec<Violation>,
}

impl AuditCheckpoint {
    /// How many log events the checkpointed audits have covered.
    pub fn events_checked(&self) -> usize {
        self.events_checked
    }

    /// Number of policy statements the checkpoint tracks.
    pub fn statement_count(&self) -> usize {
        self.statements.len()
    }
}

impl fmt::Display for AuditCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit checkpoint: {} events covered across {} statements",
            self.events_checked,
            self.statements.len()
        )
    }
}

/// A typed failure of a checkpointed audit — every variant means the
/// caller's invariants broke (the index was not appended up to the log, the
/// log shrank, the policy changed) and continuing would produce an unsound
/// report.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AuditError {
    /// The index covers fewer events than the log holds; call
    /// [`EventLogIndex::append`] with the new suffix first.
    IndexLagsLog {
        /// Events the index covers.
        indexed: usize,
        /// Events the log holds.
        log_len: usize,
    },
    /// The index covers *more* events than the log holds — a suffix was
    /// appended twice, or the index belongs to a different (longer) log.
    /// Rebuild the index from this log; appending more would compound the
    /// divergence.
    IndexAheadOfLog {
        /// Events the index covers.
        indexed: usize,
        /// Events the log holds.
        log_len: usize,
    },
    /// The checkpoint covers more events than the log holds — the log is
    /// supposed to be append-only, so a shrinking log invalidates every
    /// carried violation.
    CheckpointAheadOfLog {
        /// Events the checkpoint claims were covered.
        checked: usize,
        /// Events the log holds.
        log_len: usize,
    },
    /// The checkpoint was taken against a different policy (statement
    /// added, removed or reordered); start a fresh audit instead of splicing
    /// violations of one policy into another's report.
    PolicyMismatch {
        /// Human-readable description of the first disagreement.
        detail: String,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::IndexLagsLog { indexed, log_len } => write!(
                f,
                "the index covers only {indexed} events but the log holds {log_len}; append the \
                 new suffix to the index before auditing"
            ),
            AuditError::IndexAheadOfLog { indexed, log_len } => write!(
                f,
                "the index covers {indexed} events but the log holds only {log_len} (a suffix \
                 appended twice, or an index of a different log); rebuild the index from this log"
            ),
            AuditError::CheckpointAheadOfLog { checked, log_len } => write!(
                f,
                "the checkpoint covers {checked} events but the log holds only {log_len}; the \
                 append-only invariant is broken"
            ),
            AuditError::PolicyMismatch { detail } => {
                write!(f, "the checkpoint belongs to a different policy: {detail}")
            }
        }
    }
}

impl Error for AuditError {}

/// Audits the log against the policy, paying only for the suffix past
/// `checkpoint` on the per-event statements: the incremental entry point for
/// periodic audits over the append-only log. `index` must have been kept
/// current via [`EventLogIndex::append`]. Returns the full-log report —
/// identical to [`check_log`] / [`check_log_scan`] over the whole log, as
/// pinned by the checkpointed-audit property tests — together with the next
/// checkpoint.
///
/// The checkpoint is consumed: once the log has grown past it, the old
/// checkpoint describes a prefix no future audit should restart from (and
/// moving it lets the accumulated violations transfer into the new
/// checkpoint without re-copying them every period).
///
/// # Errors
///
/// Returns a typed [`AuditError`] when the caller's invariants do not hold
/// (index behind the log, log shorter than the checkpoint, policy changed
/// since the checkpoint was taken).
///
/// # Examples
///
/// ```
/// use privacy_compliance::{check_log, check_log_checkpointed, PrivacyPolicy};
/// use privacy_runtime::{EventLog, EventLogIndex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let log = EventLog::new();
/// let index = EventLogIndex::build(&log);
/// let policy = PrivacyPolicy::new("empty");
/// let (report, checkpoint) = check_log_checkpointed(&log, &index, &policy, None)?;
/// assert_eq!(report, check_log(&log, &policy));
/// assert_eq!(checkpoint.events_checked(), 0);
/// # Ok(())
/// # }
/// ```
pub fn check_log_checkpointed(
    log: &EventLog,
    index: &EventLogIndex,
    policy: &PrivacyPolicy,
    checkpoint: Option<AuditCheckpoint>,
) -> Result<(ComplianceReport, AuditCheckpoint), AuditError> {
    if index.event_count() < log.len() {
        return Err(AuditError::IndexLagsLog { indexed: index.event_count(), log_len: log.len() });
    }
    if index.event_count() > log.len() {
        return Err(AuditError::IndexAheadOfLog {
            indexed: index.event_count(),
            log_len: log.len(),
        });
    }
    let from = match &checkpoint {
        None => 0usize,
        Some(checkpoint) => {
            if checkpoint.events_checked > log.len() {
                return Err(AuditError::CheckpointAheadOfLog {
                    checked: checkpoint.events_checked,
                    log_len: log.len(),
                });
            }
            if checkpoint.statements.len() != policy.len() {
                return Err(AuditError::PolicyMismatch {
                    detail: format!(
                        "checkpoint tracks {} statements, policy has {}",
                        checkpoint.statements.len(),
                        policy.len()
                    ),
                });
            }
            for (position, (tracked, statement)) in
                checkpoint.statements.iter().zip(policy.iter()).enumerate()
            {
                if tracked.id != statement.id() {
                    return Err(AuditError::PolicyMismatch {
                        detail: format!(
                            "statement {position} is `{}` in the checkpoint but `{}` in the \
                             policy",
                            tracked.id,
                            statement.id()
                        ),
                    });
                }
            }
            checkpoint.events_checked
        }
    };

    let mut prior_statements = checkpoint.map(|checkpoint| checkpoint.statements);
    let mut outcomes = Vec::with_capacity(policy.len());
    let mut statements = Vec::with_capacity(policy.len());
    for (position, statement) in policy.iter().enumerate() {
        // Move the carried violations out of the consumed checkpoint — the
        // accumulated list transfers between periods without re-copying.
        let prior = prior_statements
            .as_mut()
            .map(|tracked| std::mem::take(&mut tracked[position].violations))
            .unwrap_or_default();
        let outcome = match probe_statement(log, index, statement, from as u32) {
            StatementOutcome::Checked { statement, violations } => {
                // Per-event kinds probed only the suffix: splice the carried
                // prefix violations in front (both are in ascending event
                // order, so the concatenation is the full-log order).
                // Aggregate kinds recompute over the whole index and carry
                // nothing. One copy is unavoidable — the report and the next
                // checkpoint each own the list.
                let mut all = prior;
                all.extend(violations);
                statements.push(StatementCheckpoint {
                    id: statement.id().to_owned(),
                    violations: if accumulates_per_event(&statement) {
                        all.clone()
                    } else {
                        Vec::new()
                    },
                });
                StatementOutcome::Checked { statement, violations: all }
            }
            skipped => {
                statements.push(StatementCheckpoint {
                    id: statement.id().to_owned(),
                    violations: Vec::new(),
                });
                skipped
            }
        };
        outcomes.push(outcome);
    }
    let report = ComplianceReport::new(format!("event log ({} events)", log.len()), outcomes);
    Ok((report, AuditCheckpoint { events_checked: log.len(), statements }))
}

/// Whether the statement kind reports one violation per offending event —
/// the kinds whose checkpointed audits accumulate prefix violations instead
/// of recomputing from an aggregate.
fn accumulates_per_event(statement: &Statement) -> bool {
    matches!(statement.kind(), StatementKind::Forbid { .. } | StatementKind::ServiceLimit { .. })
}

/// The retained full-scan checker: every statement re-walks the whole log.
/// Behaviourally identical to [`check_log`]; kept as the reference semantics
/// for differential testing.
pub fn check_log_scan(log: &EventLog, policy: &PrivacyPolicy) -> ComplianceReport {
    let outcomes = policy.iter().map(|statement| scan_statement(log, statement)).collect();
    ComplianceReport::new(format!("event log ({} events)", log.len()), outcomes)
}

/// Checks one statement by probing the index's posting lists and aggregates.
/// Per-event statement kinds consider only events with id ≥ `from` (the
/// checkpointed-audit suffix; `0` probes everything); aggregate kinds always
/// answer from the whole — incrementally maintained — index.
fn probe_statement(
    log: &EventLog,
    index: &EventLogIndex,
    statement: &Statement,
    from: u32,
) -> StatementOutcome {
    let events = log.events();
    // Posting lists are ascending, so each suffix past `from` is one
    // partition-point probe.
    let violations = match statement.kind() {
        StatementKind::Forbid { actors, action, fields } => {
            // Candidates: the action's permitted posting list (or every
            // permitted event for an unrestricted prohibition). The actor
            // matcher is evaluated once per distinct interned actor.
            let candidates = match action {
                Some(action) => index.of_action(*action),
                None => index.permitted(),
            };
            let candidates = &candidates[candidates.partition_point(|&id| id < from)..];
            let actor_ok: Vec<bool> =
                index.actors().iter().map(|actor| actors.matches(actor)).collect();
            let field_mask = match fields {
                FieldMatcher::Any => None,
                FieldMatcher::Only(set) => Some(index.field_mask(set.iter())),
            };
            candidates
                .iter()
                .filter(|&&id| actor_ok[index.actor_index_of(id) as usize])
                .filter(|&&id| match &field_mask {
                    // `matches_any` over an `Any` matcher still requires the
                    // event to carry at least one field.
                    None => index.has_fields(id),
                    Some(mask) => index.involves_any(id, mask),
                })
                .map(|&id| forbid_violation(statement, &events[id as usize]))
                .collect()
        }
        StatementKind::ServiceLimit { fields, allowed } => {
            // The service matcher is evaluated once per distinct service;
            // candidates come from the matched fields' posting lists.
            let service_ok: Vec<bool> =
                index.services().iter().map(|service| allowed.contains(service)).collect();
            let candidates: Vec<u32> = match fields {
                FieldMatcher::Any => {
                    let permitted = index.permitted();
                    permitted[permitted.partition_point(|&id| id < from)..]
                        .iter()
                        .copied()
                        .filter(|&id| index.has_fields(id))
                        .collect()
                }
                FieldMatcher::Only(set) => index.involving_any_field_from(set.iter(), from),
            };
            candidates
                .into_iter()
                .filter(|&id| !service_ok[index.service_index_of(id) as usize])
                .map(|id| service_violation(statement, &events[id as usize]))
                .collect()
        }
        StatementKind::PurposeLimit { .. } => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "runtime events record the service but not a per-action purpose".into(),
            };
        }
        StatementKind::RequireErasure { fields } => index
            .erasure_timelines()
            .filter(|((_, field), _)| fields.matches(field))
            .filter(|(_, timeline)| timeline.violates_erasure())
            .map(|((user, field), _)| erasure_violation(statement, user, field))
            .collect(),
        StatementKind::MaxExposure { field, max_actors } => {
            let exposed = index.observing_actors(field);
            if exposed.len() > *max_actors {
                vec![exposure_violation(statement, field, *max_actors, exposed.into_iter())]
            } else {
                Vec::new()
            }
        }
        // Future statement kinds default to skipped rather than silently passing.
        #[allow(unreachable_patterns)]
        _ => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "statement kind is not supported by the event-log checker".into(),
            };
        }
    };
    StatementOutcome::Checked { statement: statement.clone(), violations }
}

/// The original per-statement full scan, retained for differential testing.
fn scan_statement(log: &EventLog, statement: &Statement) -> StatementOutcome {
    let violations = match statement.kind() {
        StatementKind::Forbid { actors, action, fields } => log
            .iter()
            .filter(|event| event.permitted())
            .filter(|event| action.is_none_or(|a| a == event.action()))
            .filter(|event| actors.matches(event.actor()))
            .filter(|event| fields.matches_any(event.fields()))
            .map(|event| forbid_violation(statement, event))
            .collect(),
        StatementKind::ServiceLimit { fields, allowed } => log
            .iter()
            .filter(|event| event.permitted())
            .filter(|event| fields.matches_any(event.fields()))
            .filter(|event| !allowed.contains(event.service()))
            .map(|event| service_violation(statement, event))
            .collect(),
        StatementKind::PurposeLimit { .. } => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "runtime events record the service but not a per-action purpose".into(),
            };
        }
        StatementKind::RequireErasure { fields } => {
            // For every user whose matched fields were stored (collect /
            // create / anon), a later delete covering the field must exist.
            let mut stored: BTreeMap<(UserId, FieldId), u64> = BTreeMap::new();
            let mut deleted: BTreeMap<(UserId, FieldId), u64> = BTreeMap::new();
            for event in log.iter().filter(|e| e.permitted()) {
                for field in event.fields().iter().filter(|f| fields.matches(f)) {
                    let key = (event.user().clone(), field.clone());
                    match event.action() {
                        ActionKind::Collect | ActionKind::Create | ActionKind::Anon => {
                            stored.entry(key).or_insert(event.sequence());
                        }
                        ActionKind::Delete => {
                            deleted
                                .entry(key)
                                .and_modify(|latest| *latest = (*latest).max(event.sequence()))
                                .or_insert(event.sequence());
                        }
                        _ => {}
                    }
                }
            }
            stored
                .iter()
                .filter(|(key, stored_at)| {
                    deleted.get(key).is_none_or(|deleted_at| deleted_at < stored_at)
                })
                .map(|((user, field), _)| erasure_violation(statement, user, field))
                .collect()
        }
        StatementKind::MaxExposure { field, max_actors } => {
            let exposed: BTreeSet<&ActorId> = log
                .iter()
                .filter(|event| event.permitted())
                .filter(|event| event.fields().contains(field))
                .filter(|event| {
                    matches!(
                        event.action(),
                        ActionKind::Read | ActionKind::Collect | ActionKind::Disclose
                    )
                })
                .map(|event| event.actor())
                .collect();
            if exposed.len() > *max_actors {
                vec![exposure_violation(statement, field, *max_actors, exposed.into_iter())]
            } else {
                Vec::new()
            }
        }
        // Future statement kinds default to skipped rather than silently passing.
        #[allow(unreachable_patterns)]
        _ => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "statement kind is not supported by the event-log checker".into(),
            };
        }
    };
    StatementOutcome::Checked { statement: statement.clone(), violations }
}

/// One prohibition violation — shared by both strategies so the rendered
/// messages cannot drift apart.
fn forbid_violation(statement: &Statement, event: &Event) -> Violation {
    Violation::new(
        statement.id(),
        format!("event #{}", event.sequence()),
        format!(
            "{:?} on {{{}}} by `{}` during `{}` is forbidden by the policy",
            event.action(),
            join_fields(event.fields()),
            event.actor(),
            event.service()
        ),
    )
}

/// One service-limit violation.
fn service_violation(statement: &Statement, event: &Event) -> Violation {
    Violation::new(
        statement.id(),
        format!("event #{}", event.sequence()),
        format!(
            "fields {{{}}} were processed by service `{}`, outside the allowed set",
            join_fields(event.fields()),
            event.service()
        ),
    )
}

/// One right-to-erasure violation.
fn erasure_violation(statement: &Statement, user: &UserId, field: &FieldId) -> Violation {
    Violation::new(
        statement.id(),
        format!("user `{user}`, field `{field}`"),
        "the field was stored but never deleted in the observed execution",
    )
}

/// One exposure-bound violation; `exposed` must arrive sorted by actor id.
fn exposure_violation<'a>(
    statement: &Statement,
    field: &FieldId,
    max_actors: usize,
    exposed: impl ExactSizeIterator<Item = &'a ActorId>,
) -> Violation {
    let count = exposed.len();
    Violation::new(
        statement.id(),
        format!("field `{field}`"),
        format!(
            "{} actors observed the field at runtime (limit {}): {}",
            count,
            max_actors,
            exposed.map(|a| a.as_str()).collect::<Vec<_>>().join(", ")
        ),
    )
}

fn join_fields(fields: &BTreeSet<FieldId>) -> String {
    fields.iter().map(|f| f.as_str()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::{ActorMatcher, FieldMatcher};
    use privacy_model::{DatastoreId, ServiceId};
    use privacy_runtime::Event;

    fn event(
        sequence: u64,
        service: &str,
        actor: &str,
        action: ActionKind,
        fields: &[&str],
        permitted: bool,
    ) -> Event {
        Event::new(
            sequence,
            "user-1",
            service,
            actor,
            action,
            fields.iter().map(|f| FieldId::new(*f)),
            Some(DatastoreId::new("EHR")),
            permitted,
        )
    }

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.append(event(0, "MedicalService", "Doctor", ActionKind::Collect, &["Diagnosis"], true));
        log.append(event(1, "MedicalService", "Doctor", ActionKind::Create, &["Diagnosis"], true));
        log.append(event(2, "MedicalService", "Nurse", ActionKind::Read, &["Treatment"], true));
        log.append(event(
            3,
            "MedicalResearchService",
            "Administrator",
            ActionKind::Read,
            &["Diagnosis"],
            true,
        ));
        log.append(event(
            4,
            "MedicalResearchService",
            "Researcher",
            ActionKind::Read,
            &["Diagnosis"],
            false, // denied by the access policy
        ));
        log
    }

    /// Runs both strategies and asserts they agree before returning the
    /// probed report — every test below therefore doubles as a differential
    /// check.
    fn check_both(log: &EventLog, policy: &PrivacyPolicy) -> ComplianceReport {
        let probed = check_log(log, policy);
        let scanned = check_log_scan(log, policy);
        assert_eq!(probed, scanned, "indexed and scan log reports diverge");
        probed
    }

    #[test]
    fn forbid_flags_only_permitted_matching_events() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::forbid(
            "F1",
            "nobody outside the care team reads diagnosis",
            ActorMatcher::except([ActorId::new("Doctor"), ActorId::new("Nurse")]),
            Some(ActionKind::Read),
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        let report = check_both(&sample_log(), &policy);
        // The administrator's permitted read violates; the researcher's
        // denied attempt does not.
        assert_eq!(report.violation_count(), 1);
        let violation = report.violations().next().unwrap();
        assert!(violation.subject().contains("event #3"));
        assert!(violation.detail().contains("Administrator"));
    }

    #[test]
    fn unrestricted_forbid_requires_at_least_one_field() {
        let mut log = sample_log();
        // A fieldless event never matches `FieldMatcher::Any` (there is no
        // field for `matches_any` to select).
        log.append(Event::new(
            5,
            "user-1",
            "MedicalService",
            "Administrator",
            ActionKind::Read,
            Vec::<FieldId>::new(),
            Some(DatastoreId::new("EHR")),
            true,
        ));
        let policy = PrivacyPolicy::new("p").with_statement(Statement::forbid(
            "F1",
            "the administrator may do nothing",
            ActorMatcher::only([ActorId::new("Administrator")]),
            None,
            FieldMatcher::Any,
        ));
        let report = check_both(&log, &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().subject().contains("event #3"));
    }

    #[test]
    fn service_limit_flags_processing_outside_the_allowed_services() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::service_limit(
            "S1",
            "diagnosis is only processed by the medical service",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [ServiceId::new("MedicalService")],
        ));
        let report = check_both(&sample_log(), &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("MedicalResearchService"));
    }

    #[test]
    fn purpose_limit_is_skipped_at_runtime() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::purpose_limit(
            "P1",
            "purpose limited",
            FieldMatcher::Any,
            [privacy_model::Purpose::new("treatment").unwrap()],
        ));
        let report = check_both(&sample_log(), &policy);
        assert!(report.is_compliant());
        assert_eq!(report.skipped().count(), 1);
    }

    #[test]
    fn require_erasure_fails_for_stored_but_never_deleted_fields() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be deleted",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        let report = check_both(&sample_log(), &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().subject().contains("user-1"));
    }

    #[test]
    fn require_erasure_passes_once_a_later_delete_is_observed() {
        let mut log = sample_log();
        log.append(event(
            5,
            "MedicalService",
            "Administrator",
            ActionKind::Delete,
            &["Diagnosis"],
            true,
        ));
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be deleted",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        assert!(check_both(&log, &policy).is_compliant());
    }

    #[test]
    fn require_erasure_ignores_deletes_that_precede_storage() {
        let mut log = EventLog::new();
        log.append(event(
            0,
            "MedicalService",
            "Administrator",
            ActionKind::Delete,
            &["Diagnosis"],
            true,
        ));
        log.append(event(1, "MedicalService", "Doctor", ActionKind::Create, &["Diagnosis"], true));
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be deleted",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        assert_eq!(check_both(&log, &policy).violation_count(), 1);
    }

    #[test]
    fn max_exposure_counts_distinct_observing_actors() {
        let strict = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M1",
            "only the doctor may observe diagnosis",
            FieldId::new("Diagnosis"),
            1,
        ));
        let report = check_both(&sample_log(), &strict);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("2 actors"));

        let relaxed = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M2",
            "two observers allowed",
            FieldId::new("Diagnosis"),
            2,
        ));
        assert!(check_both(&sample_log(), &relaxed).is_compliant());
    }

    #[test]
    fn empty_log_is_compliant_with_everything_checkable() {
        let policy = PrivacyPolicy::new("p")
            .with_statement(Statement::forbid(
                "F1",
                "no reads at all",
                ActorMatcher::Any,
                Some(ActionKind::Read),
                FieldMatcher::Any,
            ))
            .with_statement(Statement::require_erasure("E1", "erasable", FieldMatcher::Any));
        let report = check_both(&EventLog::new(), &policy);
        assert!(report.is_compliant());
        assert!(report.target().contains("0 events"));
    }

    #[test]
    fn one_index_serves_many_policies() {
        let log = sample_log();
        let index = EventLogIndex::build(&log);
        let forbid = PrivacyPolicy::new("p1").with_statement(Statement::forbid(
            "F1",
            "nobody reads",
            ActorMatcher::Any,
            Some(ActionKind::Read),
            FieldMatcher::Any,
        ));
        let erasure = PrivacyPolicy::new("p2").with_statement(Statement::require_erasure(
            "E1",
            "erasable",
            FieldMatcher::Any,
        ));
        for policy in [&forbid, &erasure] {
            assert_eq!(check_log_indexed(&log, &index, policy), check_log_scan(&log, policy));
        }
    }
}
