//! Checking a privacy policy against runtime event logs.
//!
//! The paper motivates applying the model-driven analysis to *running*
//! systems; the [`privacy_runtime`] simulator produces an [`EventLog`] of
//! permitted and denied actions, and this module audits that log against the
//! same [`PrivacyPolicy`] used at design time.
//!
//! Two interchangeable execution strategies exist, mirroring the LTS
//! checker's split:
//!
//! * **Index probes** ([`check_log`], [`check_log_indexed`]) — the default.
//!   One columnar [`EventLogIndex`] build turns every statement into posting
//!   -list probes: matchers are evaluated once per *distinct* interned
//!   actor/service instead of once per event, prohibitions walk only their
//!   action's posting list, erasure reads a precomputed per-`(user, field)`
//!   timeline and exposure bounds are a popcount. [`check_log_indexed`]
//!   amortises one build over many policies (the batch-audit shape).
//! * **Full scans** ([`check_log_scan`]) — the original implementation,
//!   retained verbatim for differential testing: every statement re-walks
//!   the whole log. Both strategies produce identical reports; the property
//!   tests in `tests/runtime_log_differential.rs` pin the equivalence.

use crate::policy::PrivacyPolicy;
use crate::report::{ComplianceReport, StatementOutcome, Violation};
use crate::statement::{FieldMatcher, Statement, StatementKind};
use privacy_lts::ActionKind;
use privacy_model::{ActorId, FieldId, UserId};
use privacy_runtime::{Event, EventLog, EventLogIndex};
use std::collections::{BTreeMap, BTreeSet};

/// Checks every statement of `policy` against the observed events in `log`,
/// building a columnar [`EventLogIndex`] once and probing it per statement.
///
/// Only *permitted* events count as behaviour: denied attempts were stopped
/// by the access-control enforcement and therefore do not breach the policy.
/// [`StatementKind::PurposeLimit`] statements are reported as skipped —
/// runtime events record the executing service but not a per-action purpose.
///
/// # Examples
///
/// ```
/// use privacy_compliance::{check_log, PrivacyPolicy};
/// use privacy_runtime::EventLog;
///
/// let report = check_log(&EventLog::new(), &PrivacyPolicy::new("empty"));
/// assert!(report.is_compliant());
/// ```
pub fn check_log(log: &EventLog, policy: &PrivacyPolicy) -> ComplianceReport {
    let index = EventLogIndex::build(log);
    check_log_indexed(log, &index, policy)
}

/// Like [`check_log`] but over a prebuilt index, so one build serves many
/// policies. The index must have been built from `log` in its current state.
pub fn check_log_indexed(
    log: &EventLog,
    index: &EventLogIndex,
    policy: &PrivacyPolicy,
) -> ComplianceReport {
    let outcomes = policy.iter().map(|statement| probe_statement(log, index, statement)).collect();
    ComplianceReport::new(format!("event log ({} events)", log.len()), outcomes)
}

/// The retained full-scan checker: every statement re-walks the whole log.
/// Behaviourally identical to [`check_log`]; kept as the reference semantics
/// for differential testing.
pub fn check_log_scan(log: &EventLog, policy: &PrivacyPolicy) -> ComplianceReport {
    let outcomes = policy.iter().map(|statement| scan_statement(log, statement)).collect();
    ComplianceReport::new(format!("event log ({} events)", log.len()), outcomes)
}

/// Checks one statement by probing the index's posting lists and aggregates.
fn probe_statement(
    log: &EventLog,
    index: &EventLogIndex,
    statement: &Statement,
) -> StatementOutcome {
    let events = log.events();
    let violations = match statement.kind() {
        StatementKind::Forbid { actors, action, fields } => {
            // Candidates: the action's permitted posting list (or every
            // permitted event for an unrestricted prohibition). The actor
            // matcher is evaluated once per distinct interned actor.
            let candidates = match action {
                Some(action) => index.of_action(*action),
                None => index.permitted(),
            };
            let actor_ok: Vec<bool> =
                index.actors().iter().map(|actor| actors.matches(actor)).collect();
            let field_mask = match fields {
                FieldMatcher::Any => None,
                FieldMatcher::Only(set) => Some(index.field_mask(set.iter())),
            };
            candidates
                .iter()
                .filter(|&&id| actor_ok[index.actor_index_of(id) as usize])
                .filter(|&&id| match &field_mask {
                    // `matches_any` over an `Any` matcher still requires the
                    // event to carry at least one field.
                    None => index.has_fields(id),
                    Some(mask) => index.involves_any(id, mask),
                })
                .map(|&id| forbid_violation(statement, &events[id as usize]))
                .collect()
        }
        StatementKind::ServiceLimit { fields, allowed } => {
            // The service matcher is evaluated once per distinct service;
            // candidates come from the matched fields' posting lists.
            let service_ok: Vec<bool> =
                index.services().iter().map(|service| allowed.contains(service)).collect();
            let candidates: Vec<u32> = match fields {
                FieldMatcher::Any => {
                    index.permitted().iter().copied().filter(|&id| index.has_fields(id)).collect()
                }
                FieldMatcher::Only(set) => index.involving_any_field(set.iter()),
            };
            candidates
                .into_iter()
                .filter(|&id| !service_ok[index.service_index_of(id) as usize])
                .map(|id| service_violation(statement, &events[id as usize]))
                .collect()
        }
        StatementKind::PurposeLimit { .. } => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "runtime events record the service but not a per-action purpose".into(),
            };
        }
        StatementKind::RequireErasure { fields } => index
            .erasure_timelines()
            .filter(|((_, field), _)| fields.matches(field))
            .filter(|(_, timeline)| timeline.violates_erasure())
            .map(|((user, field), _)| erasure_violation(statement, user, field))
            .collect(),
        StatementKind::MaxExposure { field, max_actors } => {
            let exposed = index.observing_actors(field);
            if exposed.len() > *max_actors {
                vec![exposure_violation(statement, field, *max_actors, exposed.into_iter())]
            } else {
                Vec::new()
            }
        }
        // Future statement kinds default to skipped rather than silently passing.
        #[allow(unreachable_patterns)]
        _ => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "statement kind is not supported by the event-log checker".into(),
            };
        }
    };
    StatementOutcome::Checked { statement: statement.clone(), violations }
}

/// The original per-statement full scan, retained for differential testing.
fn scan_statement(log: &EventLog, statement: &Statement) -> StatementOutcome {
    let violations = match statement.kind() {
        StatementKind::Forbid { actors, action, fields } => log
            .iter()
            .filter(|event| event.permitted())
            .filter(|event| action.is_none_or(|a| a == event.action()))
            .filter(|event| actors.matches(event.actor()))
            .filter(|event| fields.matches_any(event.fields()))
            .map(|event| forbid_violation(statement, event))
            .collect(),
        StatementKind::ServiceLimit { fields, allowed } => log
            .iter()
            .filter(|event| event.permitted())
            .filter(|event| fields.matches_any(event.fields()))
            .filter(|event| !allowed.contains(event.service()))
            .map(|event| service_violation(statement, event))
            .collect(),
        StatementKind::PurposeLimit { .. } => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "runtime events record the service but not a per-action purpose".into(),
            };
        }
        StatementKind::RequireErasure { fields } => {
            // For every user whose matched fields were stored (collect /
            // create / anon), a later delete covering the field must exist.
            let mut stored: BTreeMap<(UserId, FieldId), u64> = BTreeMap::new();
            let mut deleted: BTreeMap<(UserId, FieldId), u64> = BTreeMap::new();
            for event in log.iter().filter(|e| e.permitted()) {
                for field in event.fields().iter().filter(|f| fields.matches(f)) {
                    let key = (event.user().clone(), field.clone());
                    match event.action() {
                        ActionKind::Collect | ActionKind::Create | ActionKind::Anon => {
                            stored.entry(key).or_insert(event.sequence());
                        }
                        ActionKind::Delete => {
                            deleted
                                .entry(key)
                                .and_modify(|latest| *latest = (*latest).max(event.sequence()))
                                .or_insert(event.sequence());
                        }
                        _ => {}
                    }
                }
            }
            stored
                .iter()
                .filter(|(key, stored_at)| {
                    deleted.get(key).is_none_or(|deleted_at| deleted_at < stored_at)
                })
                .map(|((user, field), _)| erasure_violation(statement, user, field))
                .collect()
        }
        StatementKind::MaxExposure { field, max_actors } => {
            let exposed: BTreeSet<&ActorId> = log
                .iter()
                .filter(|event| event.permitted())
                .filter(|event| event.fields().contains(field))
                .filter(|event| {
                    matches!(
                        event.action(),
                        ActionKind::Read | ActionKind::Collect | ActionKind::Disclose
                    )
                })
                .map(|event| event.actor())
                .collect();
            if exposed.len() > *max_actors {
                vec![exposure_violation(statement, field, *max_actors, exposed.into_iter())]
            } else {
                Vec::new()
            }
        }
        // Future statement kinds default to skipped rather than silently passing.
        #[allow(unreachable_patterns)]
        _ => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "statement kind is not supported by the event-log checker".into(),
            };
        }
    };
    StatementOutcome::Checked { statement: statement.clone(), violations }
}

/// One prohibition violation — shared by both strategies so the rendered
/// messages cannot drift apart.
fn forbid_violation(statement: &Statement, event: &Event) -> Violation {
    Violation::new(
        statement.id(),
        format!("event #{}", event.sequence()),
        format!(
            "{:?} on {{{}}} by `{}` during `{}` is forbidden by the policy",
            event.action(),
            join_fields(event.fields()),
            event.actor(),
            event.service()
        ),
    )
}

/// One service-limit violation.
fn service_violation(statement: &Statement, event: &Event) -> Violation {
    Violation::new(
        statement.id(),
        format!("event #{}", event.sequence()),
        format!(
            "fields {{{}}} were processed by service `{}`, outside the allowed set",
            join_fields(event.fields()),
            event.service()
        ),
    )
}

/// One right-to-erasure violation.
fn erasure_violation(statement: &Statement, user: &UserId, field: &FieldId) -> Violation {
    Violation::new(
        statement.id(),
        format!("user `{user}`, field `{field}`"),
        "the field was stored but never deleted in the observed execution",
    )
}

/// One exposure-bound violation; `exposed` must arrive sorted by actor id.
fn exposure_violation<'a>(
    statement: &Statement,
    field: &FieldId,
    max_actors: usize,
    exposed: impl ExactSizeIterator<Item = &'a ActorId>,
) -> Violation {
    let count = exposed.len();
    Violation::new(
        statement.id(),
        format!("field `{field}`"),
        format!(
            "{} actors observed the field at runtime (limit {}): {}",
            count,
            max_actors,
            exposed.map(|a| a.as_str()).collect::<Vec<_>>().join(", ")
        ),
    )
}

fn join_fields(fields: &BTreeSet<FieldId>) -> String {
    fields.iter().map(|f| f.as_str()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::{ActorMatcher, FieldMatcher};
    use privacy_model::{DatastoreId, ServiceId};
    use privacy_runtime::Event;

    fn event(
        sequence: u64,
        service: &str,
        actor: &str,
        action: ActionKind,
        fields: &[&str],
        permitted: bool,
    ) -> Event {
        Event::new(
            sequence,
            "user-1",
            service,
            actor,
            action,
            fields.iter().map(|f| FieldId::new(*f)),
            Some(DatastoreId::new("EHR")),
            permitted,
        )
    }

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.append(event(0, "MedicalService", "Doctor", ActionKind::Collect, &["Diagnosis"], true));
        log.append(event(1, "MedicalService", "Doctor", ActionKind::Create, &["Diagnosis"], true));
        log.append(event(2, "MedicalService", "Nurse", ActionKind::Read, &["Treatment"], true));
        log.append(event(
            3,
            "MedicalResearchService",
            "Administrator",
            ActionKind::Read,
            &["Diagnosis"],
            true,
        ));
        log.append(event(
            4,
            "MedicalResearchService",
            "Researcher",
            ActionKind::Read,
            &["Diagnosis"],
            false, // denied by the access policy
        ));
        log
    }

    /// Runs both strategies and asserts they agree before returning the
    /// probed report — every test below therefore doubles as a differential
    /// check.
    fn check_both(log: &EventLog, policy: &PrivacyPolicy) -> ComplianceReport {
        let probed = check_log(log, policy);
        let scanned = check_log_scan(log, policy);
        assert_eq!(probed, scanned, "indexed and scan log reports diverge");
        probed
    }

    #[test]
    fn forbid_flags_only_permitted_matching_events() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::forbid(
            "F1",
            "nobody outside the care team reads diagnosis",
            ActorMatcher::except([ActorId::new("Doctor"), ActorId::new("Nurse")]),
            Some(ActionKind::Read),
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        let report = check_both(&sample_log(), &policy);
        // The administrator's permitted read violates; the researcher's
        // denied attempt does not.
        assert_eq!(report.violation_count(), 1);
        let violation = report.violations().next().unwrap();
        assert!(violation.subject().contains("event #3"));
        assert!(violation.detail().contains("Administrator"));
    }

    #[test]
    fn unrestricted_forbid_requires_at_least_one_field() {
        let mut log = sample_log();
        // A fieldless event never matches `FieldMatcher::Any` (there is no
        // field for `matches_any` to select).
        log.append(Event::new(
            5,
            "user-1",
            "MedicalService",
            "Administrator",
            ActionKind::Read,
            Vec::<FieldId>::new(),
            Some(DatastoreId::new("EHR")),
            true,
        ));
        let policy = PrivacyPolicy::new("p").with_statement(Statement::forbid(
            "F1",
            "the administrator may do nothing",
            ActorMatcher::only([ActorId::new("Administrator")]),
            None,
            FieldMatcher::Any,
        ));
        let report = check_both(&log, &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().subject().contains("event #3"));
    }

    #[test]
    fn service_limit_flags_processing_outside_the_allowed_services() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::service_limit(
            "S1",
            "diagnosis is only processed by the medical service",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [ServiceId::new("MedicalService")],
        ));
        let report = check_both(&sample_log(), &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("MedicalResearchService"));
    }

    #[test]
    fn purpose_limit_is_skipped_at_runtime() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::purpose_limit(
            "P1",
            "purpose limited",
            FieldMatcher::Any,
            [privacy_model::Purpose::new("treatment").unwrap()],
        ));
        let report = check_both(&sample_log(), &policy);
        assert!(report.is_compliant());
        assert_eq!(report.skipped().count(), 1);
    }

    #[test]
    fn require_erasure_fails_for_stored_but_never_deleted_fields() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be deleted",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        let report = check_both(&sample_log(), &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().subject().contains("user-1"));
    }

    #[test]
    fn require_erasure_passes_once_a_later_delete_is_observed() {
        let mut log = sample_log();
        log.append(event(
            5,
            "MedicalService",
            "Administrator",
            ActionKind::Delete,
            &["Diagnosis"],
            true,
        ));
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be deleted",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        assert!(check_both(&log, &policy).is_compliant());
    }

    #[test]
    fn require_erasure_ignores_deletes_that_precede_storage() {
        let mut log = EventLog::new();
        log.append(event(
            0,
            "MedicalService",
            "Administrator",
            ActionKind::Delete,
            &["Diagnosis"],
            true,
        ));
        log.append(event(1, "MedicalService", "Doctor", ActionKind::Create, &["Diagnosis"], true));
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be deleted",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        assert_eq!(check_both(&log, &policy).violation_count(), 1);
    }

    #[test]
    fn max_exposure_counts_distinct_observing_actors() {
        let strict = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M1",
            "only the doctor may observe diagnosis",
            FieldId::new("Diagnosis"),
            1,
        ));
        let report = check_both(&sample_log(), &strict);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("2 actors"));

        let relaxed = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M2",
            "two observers allowed",
            FieldId::new("Diagnosis"),
            2,
        ));
        assert!(check_both(&sample_log(), &relaxed).is_compliant());
    }

    #[test]
    fn empty_log_is_compliant_with_everything_checkable() {
        let policy = PrivacyPolicy::new("p")
            .with_statement(Statement::forbid(
                "F1",
                "no reads at all",
                ActorMatcher::Any,
                Some(ActionKind::Read),
                FieldMatcher::Any,
            ))
            .with_statement(Statement::require_erasure("E1", "erasable", FieldMatcher::Any));
        let report = check_both(&EventLog::new(), &policy);
        assert!(report.is_compliant());
        assert!(report.target().contains("0 events"));
    }

    #[test]
    fn one_index_serves_many_policies() {
        let log = sample_log();
        let index = EventLogIndex::build(&log);
        let forbid = PrivacyPolicy::new("p1").with_statement(Statement::forbid(
            "F1",
            "nobody reads",
            ActorMatcher::Any,
            Some(ActionKind::Read),
            FieldMatcher::Any,
        ));
        let erasure = PrivacyPolicy::new("p2").with_statement(Statement::require_erasure(
            "E1",
            "erasable",
            FieldMatcher::Any,
        ));
        for policy in [&forbid, &erasure] {
            assert_eq!(check_log_indexed(&log, &index, policy), check_log_scan(&log, policy));
        }
    }
}
