//! Checking a privacy policy against runtime event logs.
//!
//! The paper motivates applying the model-driven analysis to *running*
//! systems; the [`privacy_runtime`] simulator produces an [`EventLog`] of
//! permitted and denied actions, and this module audits that log against the
//! same [`PrivacyPolicy`] used at design time.

use crate::policy::PrivacyPolicy;
use crate::report::{ComplianceReport, StatementOutcome, Violation};
use crate::statement::{Statement, StatementKind};
use privacy_lts::ActionKind;
use privacy_model::{ActorId, FieldId, UserId};
use privacy_runtime::EventLog;
use std::collections::{BTreeMap, BTreeSet};

/// Checks every statement of `policy` against the observed events in `log`.
///
/// Only *permitted* events count as behaviour: denied attempts were stopped
/// by the access-control enforcement and therefore do not breach the policy.
/// [`StatementKind::PurposeLimit`] statements are reported as skipped —
/// runtime events record the executing service but not a per-action purpose.
///
/// # Examples
///
/// ```
/// use privacy_compliance::{check_log, PrivacyPolicy};
/// use privacy_runtime::EventLog;
///
/// let report = check_log(&EventLog::new(), &PrivacyPolicy::new("empty"));
/// assert!(report.is_compliant());
/// ```
pub fn check_log(log: &EventLog, policy: &PrivacyPolicy) -> ComplianceReport {
    let outcomes = policy.iter().map(|statement| check_statement(log, statement)).collect();
    ComplianceReport::new(format!("event log ({} events)", log.len()), outcomes)
}

fn check_statement(log: &EventLog, statement: &Statement) -> StatementOutcome {
    let violations = match statement.kind() {
        StatementKind::Forbid { actors, action, fields } => log
            .iter()
            .filter(|event| event.permitted())
            .filter(|event| action.is_none_or(|a| a == event.action()))
            .filter(|event| actors.matches(event.actor()))
            .filter(|event| fields.matches_any(event.fields()))
            .map(|event| {
                Violation::new(
                    statement.id(),
                    format!("event #{}", event.sequence()),
                    format!(
                        "{:?} on {{{}}} by `{}` during `{}` is forbidden by the policy",
                        event.action(),
                        join_fields(event.fields()),
                        event.actor(),
                        event.service()
                    ),
                )
            })
            .collect(),
        StatementKind::ServiceLimit { fields, allowed } => log
            .iter()
            .filter(|event| event.permitted())
            .filter(|event| fields.matches_any(event.fields()))
            .filter(|event| !allowed.contains(event.service()))
            .map(|event| {
                Violation::new(
                    statement.id(),
                    format!("event #{}", event.sequence()),
                    format!(
                        "fields {{{}}} were processed by service `{}`, outside the allowed set",
                        join_fields(event.fields()),
                        event.service()
                    ),
                )
            })
            .collect(),
        StatementKind::PurposeLimit { .. } => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "runtime events record the service but not a per-action purpose".into(),
            };
        }
        StatementKind::RequireErasure { fields } => {
            // For every user whose matched fields were stored (collect /
            // create / anon), a later delete covering the field must exist.
            let mut stored: BTreeMap<(UserId, FieldId), u64> = BTreeMap::new();
            let mut deleted: BTreeMap<(UserId, FieldId), u64> = BTreeMap::new();
            for event in log.iter().filter(|e| e.permitted()) {
                for field in event.fields().iter().filter(|f| fields.matches(f)) {
                    let key = (event.user().clone(), field.clone());
                    match event.action() {
                        ActionKind::Collect | ActionKind::Create | ActionKind::Anon => {
                            stored.entry(key).or_insert(event.sequence());
                        }
                        ActionKind::Delete => {
                            deleted
                                .entry(key)
                                .and_modify(|latest| *latest = (*latest).max(event.sequence()))
                                .or_insert(event.sequence());
                        }
                        _ => {}
                    }
                }
            }
            stored
                .iter()
                .filter(|(key, stored_at)| {
                    deleted.get(key).is_none_or(|deleted_at| deleted_at < stored_at)
                })
                .map(|((user, field), _)| {
                    Violation::new(
                        statement.id(),
                        format!("user `{user}`, field `{field}`"),
                        "the field was stored but never deleted in the observed execution",
                    )
                })
                .collect()
        }
        StatementKind::MaxExposure { field, max_actors } => {
            let exposed: BTreeSet<&ActorId> = log
                .iter()
                .filter(|event| event.permitted())
                .filter(|event| event.fields().contains(field))
                .filter(|event| {
                    matches!(
                        event.action(),
                        ActionKind::Read | ActionKind::Collect | ActionKind::Disclose
                    )
                })
                .map(|event| event.actor())
                .collect();
            if exposed.len() > *max_actors {
                vec![Violation::new(
                    statement.id(),
                    format!("field `{field}`"),
                    format!(
                        "{} actors observed the field at runtime (limit {}): {}",
                        exposed.len(),
                        max_actors,
                        exposed.iter().map(|a| a.as_str()).collect::<Vec<_>>().join(", ")
                    ),
                )]
            } else {
                Vec::new()
            }
        }
        // Future statement kinds default to skipped rather than silently passing.
        #[allow(unreachable_patterns)]
        _ => {
            return StatementOutcome::Skipped {
                statement: statement.clone(),
                reason: "statement kind is not supported by the event-log checker".into(),
            };
        }
    };
    StatementOutcome::Checked { statement: statement.clone(), violations }
}

fn join_fields(fields: &BTreeSet<FieldId>) -> String {
    fields.iter().map(|f| f.as_str()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::{ActorMatcher, FieldMatcher};
    use privacy_model::{DatastoreId, ServiceId};
    use privacy_runtime::Event;

    fn event(
        sequence: u64,
        service: &str,
        actor: &str,
        action: ActionKind,
        fields: &[&str],
        permitted: bool,
    ) -> Event {
        Event::new(
            sequence,
            "user-1",
            service,
            actor,
            action,
            fields.iter().map(|f| FieldId::new(*f)),
            Some(DatastoreId::new("EHR")),
            permitted,
        )
    }

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.append(event(0, "MedicalService", "Doctor", ActionKind::Collect, &["Diagnosis"], true));
        log.append(event(1, "MedicalService", "Doctor", ActionKind::Create, &["Diagnosis"], true));
        log.append(event(2, "MedicalService", "Nurse", ActionKind::Read, &["Treatment"], true));
        log.append(event(
            3,
            "MedicalResearchService",
            "Administrator",
            ActionKind::Read,
            &["Diagnosis"],
            true,
        ));
        log.append(event(
            4,
            "MedicalResearchService",
            "Researcher",
            ActionKind::Read,
            &["Diagnosis"],
            false, // denied by the access policy
        ));
        log
    }

    #[test]
    fn forbid_flags_only_permitted_matching_events() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::forbid(
            "F1",
            "nobody outside the care team reads diagnosis",
            ActorMatcher::except([ActorId::new("Doctor"), ActorId::new("Nurse")]),
            Some(ActionKind::Read),
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        let report = check_log(&sample_log(), &policy);
        // The administrator's permitted read violates; the researcher's
        // denied attempt does not.
        assert_eq!(report.violation_count(), 1);
        let violation = report.violations().next().unwrap();
        assert!(violation.subject().contains("event #3"));
        assert!(violation.detail().contains("Administrator"));
    }

    #[test]
    fn service_limit_flags_processing_outside_the_allowed_services() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::service_limit(
            "S1",
            "diagnosis is only processed by the medical service",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
            [ServiceId::new("MedicalService")],
        ));
        let report = check_log(&sample_log(), &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("MedicalResearchService"));
    }

    #[test]
    fn purpose_limit_is_skipped_at_runtime() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::purpose_limit(
            "P1",
            "purpose limited",
            FieldMatcher::Any,
            [privacy_model::Purpose::new("treatment").unwrap()],
        ));
        let report = check_log(&sample_log(), &policy);
        assert!(report.is_compliant());
        assert_eq!(report.skipped().count(), 1);
    }

    #[test]
    fn require_erasure_fails_for_stored_but_never_deleted_fields() {
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be deleted",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        let report = check_log(&sample_log(), &policy);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().subject().contains("user-1"));
    }

    #[test]
    fn require_erasure_passes_once_a_later_delete_is_observed() {
        let mut log = sample_log();
        log.append(event(
            5,
            "MedicalService",
            "Administrator",
            ActionKind::Delete,
            &["Diagnosis"],
            true,
        ));
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be deleted",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        assert!(check_log(&log, &policy).is_compliant());
    }

    #[test]
    fn require_erasure_ignores_deletes_that_precede_storage() {
        let mut log = EventLog::new();
        log.append(event(
            0,
            "MedicalService",
            "Administrator",
            ActionKind::Delete,
            &["Diagnosis"],
            true,
        ));
        log.append(event(1, "MedicalService", "Doctor", ActionKind::Create, &["Diagnosis"], true));
        let policy = PrivacyPolicy::new("p").with_statement(Statement::require_erasure(
            "E1",
            "diagnosis must be deleted",
            FieldMatcher::only([FieldId::new("Diagnosis")]),
        ));
        assert_eq!(check_log(&log, &policy).violation_count(), 1);
    }

    #[test]
    fn max_exposure_counts_distinct_observing_actors() {
        let strict = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M1",
            "only the doctor may observe diagnosis",
            FieldId::new("Diagnosis"),
            1,
        ));
        let report = check_log(&sample_log(), &strict);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations().next().unwrap().detail().contains("2 actors"));

        let relaxed = PrivacyPolicy::new("p").with_statement(Statement::max_exposure(
            "M2",
            "two observers allowed",
            FieldId::new("Diagnosis"),
            2,
        ));
        assert!(check_log(&sample_log(), &relaxed).is_compliant());
    }

    #[test]
    fn empty_log_is_compliant_with_everything_checkable() {
        let policy = PrivacyPolicy::new("p")
            .with_statement(Statement::forbid(
                "F1",
                "no reads at all",
                ActorMatcher::Any,
                Some(ActionKind::Read),
                FieldMatcher::Any,
            ))
            .with_statement(Statement::require_erasure("E1", "erasable", FieldMatcher::Any));
        let report = check_log(&EventLog::new(), &policy);
        assert!(report.is_compliant());
        assert!(report.target().contains("0 events"));
    }
}
