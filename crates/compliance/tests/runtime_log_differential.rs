//! Differential property tests: the indexed event-log checker against the
//! retained scan-path checker, over seeded random `privacy-synth` models
//! and random event streams.
//!
//! [`check_log`] (one columnar `EventLogIndex` build, posting-list probes
//! per statement) must agree with [`check_log_scan`] (every statement
//! re-walks the log) on everything: the same statements checked/skipped,
//! the same violations in the same order with the same rendered messages
//! ([`ComplianceReport`] equality is structural). The streams mix engine
//! executions with raw synthetic events — deletes, denied attempts,
//! fieldless events, ghost identifiers — and the policies cover every
//! statement kind the log checker supports, with matchers that hit and
//! miss on purpose.

use privacy_compliance::{
    check_log, check_log_checkpointed, check_log_indexed, check_log_scan, ActorMatcher,
    AuditCheckpoint, AuditError, FieldMatcher, PrivacyPolicy, Statement,
};
use privacy_lts::ActionKind;
use privacy_model::{ActorId, Catalog, DatastoreId, FieldId, Record, ServiceId, UserId};
use privacy_runtime::{Event, EventLog, EventLogIndex, ServiceEngine};
use privacy_synth::{random_model, random_workload, ModelGeneratorConfig, WorkloadConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform pick from a non-empty slice.
fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// An event log mixing engine executions with a raw synthetic tail, plus
/// the catalog the exercised policies draw their vocabulary from.
fn random_log(seed: u64, raw_events: usize) -> (EventLog, Catalog) {
    let config =
        ModelGeneratorConfig { actors: 3, fields: 4, seed, ..ModelGeneratorConfig::default() };
    let (catalog, dataflows, policy) = random_model(&config).expect("generated model is valid");
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let field_ids: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let users: Vec<UserId> = (0..4).map(|i| UserId::new(format!("user-{i:02}"))).collect();

    let mut engine = ServiceEngine::new(catalog.clone(), dataflows, policy);
    let workload = random_workload(&WorkloadConfig {
        length: 30,
        seed,
        users: users.clone(),
        services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
    });
    for request in &workload {
        let record = field_ids
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }

    let mut log = EventLog::new();
    log.extend(engine.log().events().to_vec());

    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131).wrapping_add(3));
    let mut actor_pool: Vec<ActorId> =
        catalog.identifying_actors().map(|a| a.id().clone()).collect();
    actor_pool.push(ActorId::new("GhostActor"));
    let mut field_pool = field_ids.clone();
    field_pool.push(FieldId::new("GhostField"));
    let mut service_pool = services.clone();
    service_pool.push(ServiceId::new("GhostService"));
    let actions = ActionKind::ALL;
    let next_sequence = log.next_sequence();
    for offset in 0..raw_events {
        let field_count = rng.gen_range(0..3usize);
        let fields: Vec<FieldId> =
            (0..field_count).map(|_| pick(&mut rng, &field_pool).clone()).collect();
        log.append(Event::new(
            next_sequence + offset as u64,
            pick(&mut rng, &users).clone(),
            pick(&mut rng, &service_pool).clone(),
            pick(&mut rng, &actor_pool).clone(),
            *pick(&mut rng, &actions),
            fields,
            rng.gen_bool(0.75).then(|| DatastoreId::new("Store00")),
            rng.gen_bool(0.8),
        ));
    }
    (log, catalog)
}

/// A deterministic multi-statement policy stressing every statement kind
/// against the catalog's own vocabulary plus deliberately unknown
/// actors/fields/services.
fn exercise_policy(catalog: &Catalog) -> PrivacyPolicy {
    let actors: Vec<ActorId> = catalog.identifying_actors().map(|a| a.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let mut policy = PrivacyPolicy::new("runtime-log differential exercise");

    for (i, actor) in actors.iter().enumerate() {
        policy.add_statement(Statement::forbid(
            format!("F-{i}"),
            format!("{actor} may do nothing"),
            ActorMatcher::only([actor.clone()]),
            None,
            FieldMatcher::Any,
        ));
    }
    for (i, action) in ActionKind::ALL.iter().enumerate() {
        policy.add_statement(Statement::forbid(
            format!("FA-{i}"),
            format!("nobody performs {action} on the first field"),
            ActorMatcher::Any,
            Some(*action),
            fields.first().map_or(FieldMatcher::Any, |f| FieldMatcher::only([f.clone()])),
        ));
    }
    policy.add_statement(Statement::forbid(
        "F-ghost",
        "a ghost actor may do nothing",
        ActorMatcher::only([ActorId::new("NeverSeenActor")]),
        None,
        FieldMatcher::Any,
    ));
    policy.add_statement(Statement::forbid(
        "F-except",
        "everyone except the first actor is forbidden to read",
        ActorMatcher::except(actors.first().cloned()),
        Some(ActionKind::Read),
        FieldMatcher::Any,
    ));

    // Service limits: the first service only, every service, none.
    policy.add_statement(Statement::service_limit(
        "S-first",
        "fields stay in the first service",
        FieldMatcher::Any,
        services.first().cloned(),
    ));
    if let Some(field) = fields.first() {
        policy.add_statement(Statement::service_limit(
            "S-field",
            "the first field stays in the declared services",
            FieldMatcher::only([field.clone()]),
            services.iter().cloned(),
        ));
    }
    policy.add_statement(Statement::service_limit(
        "S-none",
        "a ghost field is never processed anywhere",
        FieldMatcher::only([FieldId::new("NeverSeenField")]),
        [] as [ServiceId; 0],
    ));

    // Purpose limits are always skipped by the log checker — pin the skip.
    policy.add_statement(Statement::purpose_limit(
        "P-1",
        "purpose limited",
        FieldMatcher::Any,
        [privacy_model::Purpose::new("treatment").unwrap()],
    ));

    // Erasure: everything, one field, an unknown field.
    policy.add_statement(Statement::require_erasure("E-any", "all erasable", FieldMatcher::Any));
    if let Some(field) = fields.first() {
        policy.add_statement(Statement::require_erasure(
            "E-one",
            "first field erasable",
            FieldMatcher::only([field.clone()]),
        ));
    }
    policy.add_statement(Statement::require_erasure(
        "E-ghost",
        "ghost field erasable",
        FieldMatcher::only([FieldId::new("NeverSeenField")]),
    ));

    // Exposure bounds: tight and loose, plus an unknown field.
    for (i, field) in fields.iter().enumerate() {
        policy.add_statement(Statement::max_exposure(
            format!("M-{i}"),
            format!("{field} tightly bounded"),
            field.clone(),
            i % 3,
        ));
    }
    policy.add_statement(Statement::max_exposure(
        "M-ghost",
        "ghost field bounded",
        FieldId::new("NeverSeenField"),
        0,
    ));

    policy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn indexed_log_reports_equal_scan_reports_on_random_streams(
        seed in 0u64..1_000_000,
        raw_events in 0usize..60,
    ) {
        let (log, catalog) = random_log(seed, raw_events);
        let policy = exercise_policy(&catalog);
        let probed = check_log(&log, &policy);
        let scanned = check_log_scan(&log, &policy);
        prop_assert_eq!(probed, scanned);
    }

    #[test]
    fn one_index_build_serves_every_single_statement_policy(
        seed in 0u64..1_000_000,
    ) {
        let (log, catalog) = random_log(seed, 30);
        let full = exercise_policy(&catalog);
        let index = EventLogIndex::build(&log);
        for statement in full.iter() {
            let unit = PrivacyPolicy::new("unit").with_statement(statement.clone());
            prop_assert_eq!(
                check_log_indexed(&log, &index, &unit),
                check_log_scan(&log, &unit)
            );
        }
    }

    /// The log split at two arbitrary cut points and fed to
    /// [`EventLogIndex::append`] segment by segment equals one from-scratch
    /// build over the whole log — every column, posting list, timeline and
    /// bitset (`EventLogIndex` equality is structural).
    #[test]
    fn appended_index_equals_from_scratch_build(
        seed in 0u64..1_000_000,
        raw_events in 0usize..60,
        cut_a in 0.0f64..=1.0,
        cut_b in 0.0f64..=1.0,
    ) {
        let (log, _) = random_log(seed, raw_events);
        let events = log.events();
        let mut cuts = [
            ((events.len() as f64) * cut_a) as usize,
            ((events.len() as f64) * cut_b) as usize,
        ];
        cuts.sort_unstable();
        let (first, second) = (cuts[0].min(events.len()), cuts[1].min(events.len()));

        let mut index = {
            let mut prefix = EventLog::new();
            prefix.extend(events[..first].iter().cloned());
            EventLogIndex::build(&prefix)
        };
        index.append(&events[first..second]);
        index.append(&events[second..]);
        prop_assert_eq!(index, EventLogIndex::build(&log));
    }

    /// A chain of checkpointed audits over the growing log — one
    /// `EventLogIndex::append` plus one `check_log_checkpointed` per period
    /// — reports exactly what a from-scratch `check_log_scan` over each
    /// prefix reports, at every period boundary.
    #[test]
    fn checkpointed_audit_chain_equals_scan_at_every_period(
        seed in 0u64..1_000_000,
        raw_events in 0usize..60,
        periods in 1usize..6,
    ) {
        let (log, catalog) = random_log(seed, raw_events);
        let policy = exercise_policy(&catalog);
        let events = log.events();
        let step = events.len().div_ceil(periods).max(1);

        let mut index = EventLogIndex::build(&EventLog::new());
        let mut checkpoint: Option<AuditCheckpoint> = None;
        let mut covered = 0usize;
        loop {
            let bound = (covered + step).min(events.len());
            index.append(&events[covered..bound]);
            covered = bound;
            let mut prefix = EventLog::new();
            prefix.extend(events[..bound].iter().cloned());
            let (report, next) =
                check_log_checkpointed(&prefix, &index, &policy, checkpoint.take())
                    .expect("audit invariants hold");
            prop_assert_eq!(&report, &check_log_scan(&prefix, &policy));
            prop_assert_eq!(next.events_checked(), bound);
            prop_assert_eq!(next.statement_count(), policy.len());
            checkpoint = Some(next);
            if covered == events.len() {
                break;
            }
        }
    }
}

/// Broken audit invariants surface as typed [`AuditError`]s, never as a
/// silently wrong report.
#[test]
fn checkpointed_audit_rejects_broken_invariants() {
    let (log, catalog) = random_log(9, 25);
    let policy = exercise_policy(&catalog);
    let index = EventLogIndex::build(&log);

    // An index lagging the log (caller forgot to append).
    let stale = {
        let mut prefix = EventLog::new();
        prefix.extend(log.events()[..log.len() / 2].iter().cloned());
        EventLogIndex::build(&prefix)
    };
    assert!(matches!(
        check_log_checkpointed(&log, &stale, &policy, None),
        Err(AuditError::IndexLagsLog { .. })
    ));

    // An index ahead of the log (a suffix appended twice, or the wrong log)
    // is the opposite direction and gets the opposite diagnosis.
    let half = {
        let mut prefix = EventLog::new();
        prefix.extend(log.events()[..log.len() / 2].iter().cloned());
        prefix
    };
    assert!(matches!(
        check_log_checkpointed(&half, &index, &policy, None),
        Err(AuditError::IndexAheadOfLog { .. })
    ));

    // A checkpoint ahead of the log (the append-only invariant broke).
    let (_, checkpoint) =
        check_log_checkpointed(&log, &index, &policy, None).expect("fresh audit runs");
    let shorter = {
        let mut prefix = EventLog::new();
        prefix.extend(log.events()[..log.len() / 2].iter().cloned());
        prefix
    };
    let shorter_index = EventLogIndex::build(&shorter);
    assert!(matches!(
        check_log_checkpointed(&shorter, &shorter_index, &policy, Some(checkpoint.clone())),
        Err(AuditError::CheckpointAheadOfLog { .. })
    ));

    // A checkpoint taken against a different policy.
    let other_policy = PrivacyPolicy::new("other").with_statement(Statement::forbid(
        "UNRELATED",
        "nobody does anything",
        ActorMatcher::Any,
        None,
        FieldMatcher::Any,
    ));
    assert!(matches!(
        check_log_checkpointed(&log, &index, &other_policy, Some(checkpoint.clone())),
        Err(AuditError::PolicyMismatch { .. })
    ));
    // Same statement count but a different id also mismatches.
    let mut renamed: Vec<Statement> = policy.iter().cloned().collect();
    if let Some(first) = renamed.first_mut() {
        *first = Statement::forbid(
            "RENAMED",
            "renamed statement",
            ActorMatcher::Any,
            None,
            FieldMatcher::Any,
        );
    }
    let renamed_policy =
        renamed.into_iter().fold(PrivacyPolicy::new("renamed"), |p, s| p.with_statement(s));
    assert!(matches!(
        check_log_checkpointed(&log, &index, &renamed_policy, Some(checkpoint)),
        Err(AuditError::PolicyMismatch { .. })
    ));
}
