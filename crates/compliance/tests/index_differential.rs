//! Differential property tests: the indexed compliance checker against the
//! retained scan-path checker, over seeded random `privacy-synth` system
//! models.
//!
//! The indexed strategy must agree with the scan strategy on *everything*:
//! the same statements checked/skipped, the same violations in the same
//! order with the same rendered messages ([`ComplianceReport`] equality is
//! structural). The policies exercised here cover every statement kind the
//! LTS checker supports, with matchers that hit and miss on purpose.

use privacy_compliance::{
    check_lts, check_lts_batch, check_lts_scan, ActorMatcher, ComplianceReport, FieldMatcher,
    PrivacyPolicy, Statement,
};
use privacy_lts::{generate_lts, ActionKind, GeneratorConfig, Lts};
use privacy_model::{ActorId, Catalog, FieldId, Purpose};
use privacy_synth::{random_model, ModelGeneratorConfig};
use proptest::prelude::*;

/// Builds a deterministic multi-statement policy stressing every statement
/// kind against the catalog's own vocabulary (plus deliberately unknown
/// actors/fields/purposes).
fn exercise_policy(catalog: &Catalog) -> PrivacyPolicy {
    let actors: Vec<ActorId> = catalog.identifying_actors().map(|a| a.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let mut policy = PrivacyPolicy::new("index-differential exercise");

    // Forbids: per-actor any-action, per-action first-actor, unknown actor.
    for (i, actor) in actors.iter().enumerate() {
        policy.add_statement(Statement::forbid(
            format!("F-{i}"),
            format!("{actor} may do nothing"),
            ActorMatcher::only([actor.clone()]),
            None,
            FieldMatcher::Any,
        ));
    }
    for (i, action) in ActionKind::ALL.iter().enumerate() {
        policy.add_statement(Statement::forbid(
            format!("FA-{i}"),
            format!("nobody performs {action}"),
            ActorMatcher::Any,
            Some(*action),
            fields.first().map_or(FieldMatcher::Any, |f| FieldMatcher::only([f.clone()])),
        ));
    }
    policy.add_statement(Statement::forbid(
        "F-ghost",
        "a ghost actor may do nothing",
        ActorMatcher::only([ActorId::new("Ghost")]),
        None,
        FieldMatcher::Any,
    ));
    policy.add_statement(Statement::forbid(
        "F-except",
        "everyone except the first actor is forbidden",
        ActorMatcher::except(actors.first().cloned()),
        Some(ActionKind::Read),
        FieldMatcher::Any,
    ));

    // Purpose limits: declared purposes, a narrow set, and an unknown one.
    policy.add_statement(Statement::purpose_limit(
        "P-known",
        "fields only for the generator's purposes",
        FieldMatcher::Any,
        ["collect", "disclose", "persist", "process"].map(|p| Purpose::new(p).unwrap()),
    ));
    policy.add_statement(Statement::purpose_limit(
        "P-narrow",
        "fields only for collection",
        fields.first().map_or(FieldMatcher::Any, |f| FieldMatcher::only([f.clone()])),
        [Purpose::new("collect").unwrap()],
    ));
    policy.add_statement(Statement::purpose_limit(
        "P-ghost",
        "a never-declared purpose",
        FieldMatcher::Any,
        [Purpose::new("ghost purpose").unwrap()],
    ));

    // Erasure: everything, a single field, an unknown field.
    policy.add_statement(Statement::require_erasure("E-any", "all erasable", FieldMatcher::Any));
    if let Some(field) = fields.first() {
        policy.add_statement(Statement::require_erasure(
            "E-one",
            "first field erasable",
            FieldMatcher::only([field.clone()]),
        ));
    }
    policy.add_statement(Statement::require_erasure(
        "E-ghost",
        "ghost field erasable",
        FieldMatcher::only([FieldId::new("GhostField")]),
    ));

    // Exposure bounds: tight and loose, plus an unknown field.
    for (i, field) in fields.iter().enumerate() {
        policy.add_statement(Statement::max_exposure(
            format!("M-{i}"),
            format!("{field} tightly bounded"),
            field.clone(),
            i % 2,
        ));
    }
    policy.add_statement(Statement::max_exposure(
        "M-ghost",
        "ghost field bounded",
        FieldId::new("GhostField"),
        0,
    ));

    // Service limits are always skipped by the LTS checker — include one to
    // pin the skip outcome.
    policy.add_statement(Statement::service_limit(
        "S-1",
        "fields stay in the first service",
        FieldMatcher::Any,
        [privacy_model::ServiceId::new("Service00")],
    ));

    policy
}

fn generate(seed: u64, actors: usize, fields: usize, potential_reads: bool) -> (Catalog, Lts) {
    let model_config =
        ModelGeneratorConfig { actors, fields, seed, ..ModelGeneratorConfig::default() };
    let (catalog, system, policy) = random_model(&model_config).expect("generated model is valid");
    let mut config = GeneratorConfig::default().with_max_states(20_000);
    config.explore_potential_reads = potential_reads;
    let lts = generate_lts(&catalog, &system, &policy, &config).expect("generation in bounds");
    (catalog, lts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn indexed_reports_equal_scan_reports_on_random_models(
        seed in 0u64..1_000_000,
        actors in 1usize..5,
        fields in 1usize..5,
        potential_reads in proptest::bool::ANY,
    ) {
        let (catalog, lts) = generate(seed, actors, fields, potential_reads);
        let policy = exercise_policy(&catalog);
        let indexed = check_lts(&lts, &policy);
        let scanned = check_lts_scan(&lts, &policy);
        prop_assert_eq!(indexed, scanned);
    }

    #[test]
    fn batch_reports_equal_per_policy_scan_reports(
        seed in 0u64..1_000_000,
        threads in 1usize..5,
    ) {
        let (catalog, lts) = generate(seed, 3, 4, false);
        let full = exercise_policy(&catalog);
        // Split the exercise policy into single-statement policies so the
        // batch has many units to distribute.
        let policies: Vec<PrivacyPolicy> = full
            .iter()
            .map(|statement| PrivacyPolicy::new("unit").with_statement(statement.clone()))
            .collect();
        let batch = check_lts_batch(&lts, &policies, Some(threads));
        let expected: Vec<ComplianceReport> =
            policies.iter().map(|policy| check_lts_scan(&lts, policy)).collect();
        prop_assert_eq!(batch, expected);
    }
}
