//! The failure-injection differential harness: a supervised multi-process
//! run must produce **exactly** the alert stream of a single in-process
//! [`IndexedMonitor`] over the same batches — under no faults, under every
//! named fault the plan language can express, and under proptest-generated
//! fault schedules.
//!
//! The reference is `IndexedMonitor::ingest_batch` per super-batch; the
//! candidate is a [`DistributedMonitor`] driving real `privacy-shardd`
//! worker processes (via `CARGO_BIN_EXE_privacy-shardd`) with the same
//! batches. Equality of the merged streams proves the whole robustness
//! story at once: sharded routing preserves order, restarts lose nothing,
//! replay duplicates nothing, checkpoint fallback resumes from consistent
//! state, and live shard handoff is invisible downstream.

use privacy_core::PrivacySystem;
use privacy_distrib::wire::MESSAGE_VERSION_V1;
use privacy_distrib::{
    exit, DistribError, DistribStats, DistributedMonitor, FaultPlan, Message, SupervisorConfig,
};
use privacy_lts::LtsIndex;
use privacy_model::{FieldId, Record, ServiceId, UserProfile};
use privacy_runtime::{shard_of_user, Alert, Event, IndexedMonitor, ServiceEngine};
use privacy_synth::{
    random_model, random_profiles, random_workload, ModelGeneratorConfig, ProfileGeneratorConfig,
    WorkloadConfig,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The shared scenario: a small synthetic model (worker processes rebuild
/// its LTS per spawn under the dev profile, so size is kept modest), a
/// registered population, and an engine-produced event stream.
struct Fixture {
    system: PrivacySystem,
    fingerprint: u64,
    index: Arc<LtsIndex>,
    users: Vec<UserProfile>,
    batches: Vec<Vec<Event>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let config = ModelGeneratorConfig {
            actors: 3,
            fields: 4,
            datastores: 1,
            services: 2,
            flows_per_service: 3,
            grant_probability: 0.7,
            seed: 5,
            ..ModelGeneratorConfig::default()
        };
        let (catalog, dataflows, policy) = random_model(&config).expect("synth model");
        let system = PrivacySystem::new(catalog, dataflows, policy);
        let lts = system.generate_lts().expect("tiny model generates");
        let index = Arc::new(LtsIndex::build(&lts));
        let fingerprint = index.fingerprint();

        let services: Vec<ServiceId> =
            system.catalog().services().map(|s| s.id().clone()).collect();
        let fields: Vec<FieldId> = system.catalog().fields().map(|f| f.id().clone()).collect();
        let users = random_profiles(&ProfileGeneratorConfig {
            count: 24,
            seed: 13,
            services: services.clone(),
            consent_probability: 0.5,
            fields: fields.clone(),
            sensitivity_probability: 0.6,
        });

        let mut engine = ServiceEngine::new(
            system.catalog().clone(),
            system.dataflows().clone(),
            system.policy().clone(),
        );
        let workload = random_workload(&WorkloadConfig {
            length: 480,
            seed: 17,
            users: users.iter().map(|u| u.id().clone()).collect(),
            services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
        });
        for request in &workload {
            let record = fields.iter().fold(Record::new(), |record, field| {
                record.with(field.clone(), format!("v-{field}"))
            });
            let _ = engine.execute(request.user(), request.service(), &record);
        }
        let events = engine.log().events().to_vec();
        assert!(events.len() >= 200, "fixture stream too small to be interesting");
        let batches: Vec<Vec<Event>> = events.chunks(16).map(<[Event]>::to_vec).collect();

        Fixture { system, fingerprint, index, users, batches }
    })
}

/// The in-process reference: one monitor, every user, every batch.
fn reference_alerts(fixture: &Fixture, batches: &[Vec<Event>]) -> Vec<Alert> {
    let mut monitor = IndexedMonitor::new(
        fixture.system.catalog().clone(),
        fixture.system.policy().clone(),
        fixture.index.clone(),
    );
    for user in &fixture.users {
        monitor.register_user(user);
    }
    let mut alerts = Vec::new();
    for batch in batches {
        alerts.extend(monitor.ingest_batch(batch));
    }
    alerts
}

fn checkpoint_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let run = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("privacy-distrib-diff-{tag}-{}-{run}", std::process::id()))
}

fn config(tag: &str, workers: usize, plan: FaultPlan) -> SupervisorConfig {
    let mut config =
        SupervisorConfig::new(env!("CARGO_BIN_EXE_privacy-shardd"), checkpoint_dir(tag));
    config.workers = workers;
    config.window = 2;
    config.checkpoint_every = 3;
    // Short enough that a stalled or ack-dropping worker is reaped quickly,
    // long enough that a healthy dev-profile worker never trips it.
    config.ack_timeout = Duration::from_secs(5);
    config.fault_plan = plan;
    config
}

/// The candidate: a supervised fleet fed the same batches, drained fully.
fn distributed_alerts(
    fixture: &Fixture,
    batches: &[Vec<Event>],
    config: SupervisorConfig,
) -> (Vec<Alert>, DistribStats) {
    let dir = config.checkpoint_dir.clone();
    let mut monitor =
        DistributedMonitor::launch("Tiny", &fixture.system, fixture.fingerprint, config)
            .expect("fleet launches");
    for user in &fixture.users {
        monitor.register_user(user).expect("registration routes");
    }
    let mut alerts = Vec::new();
    for batch in batches {
        alerts.extend(monitor.submit_batch(batch).expect("batch is processed"));
    }
    let (rest, stats) = monitor.shutdown().expect("clean shutdown");
    alerts.extend(rest);
    let _ = std::fs::remove_dir_all(dir);
    (alerts, stats)
}

#[test]
fn no_faults_matches_in_process_run_across_worker_counts() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    assert!(!expected.is_empty(), "fixture must raise alerts for the diff to mean anything");
    for workers in [1, 2, 3] {
        let (alerts, stats) = distributed_alerts(
            fixture,
            &fixture.batches,
            config("clean", workers, FaultPlan::none()),
        );
        assert_eq!(alerts, expected, "{workers}-worker fleet diverged");
        assert!(stats.recoveries.is_empty(), "no faults, no restarts");
        assert_eq!(stats.batches, fixture.batches.len() as u64);
    }
}

#[test]
fn kill_mid_stream_recovers_from_checkpoint_and_matches() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    // Kill worker 0's first incarnation mid-batch, twice more in later
    // incarnations: the replacement must resume, replay the unacked suffix
    // and change nothing downstream.
    let plan = FaultPlan::none().kill_after(0, 0, 30).kill_after(0, 1, 45).kill_after(1, 0, 70);
    let (alerts, stats) = distributed_alerts(fixture, &fixture.batches, config("kill", 2, plan));
    assert_eq!(alerts, expected);
    assert!(stats.recoveries.len() >= 3, "every scheduled kill must be recovered");
    for recovery in &stats.recoveries {
        assert!(!recovery.cause.is_empty());
    }
}

#[test]
fn stalled_worker_is_reaped_restarted_and_matches() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    let mut config = config("stall", 2, FaultPlan::none().stall(0, 0, 25, 120_000));
    config.ack_timeout = Duration::from_millis(400);
    let (alerts, stats) = distributed_alerts(fixture, &fixture.batches, config);
    assert_eq!(alerts, expected);
    assert!(
        stats.recoveries.iter().any(|r| r.worker == 0 && r.cause.contains("no ack")),
        "the stall must surface as an ack timeout: {:?}",
        stats.recoveries
    );
}

#[test]
fn dropped_ack_forces_replay_without_duplicate_alerts() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    // The worker processes its 2nd sub-batch fully but swallows the
    // cumulative ack of the frame carrying it. A window of 1 makes the lane
    // stop-and-wait: no later frame can reach the worker to carry a healing
    // cumulative AckThrough, so the loss is terminal for this window — the
    // timeout must reap the worker and the replacement must replay. The
    // merged stream must contain that batch's alerts exactly once.
    let mut config = config("dropack", 2, FaultPlan::none().drop_ack(1, 0, 2));
    config.ack_timeout = Duration::from_millis(400);
    config.window = 1;
    let (alerts, stats) = distributed_alerts(fixture, &fixture.batches, config);
    assert_eq!(alerts, expected);
    assert!(
        stats.recoveries.iter().any(|r| r.worker == 1),
        "the window-wide ack loss must force a replay: {:?} (warnings: {:?})",
        stats.recoveries,
        stats.checkpoint_warnings
    );
}

#[test]
fn dropped_mid_stream_ack_self_heals_without_restart() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    // Same swallowed ack as above, but with one part per frame
    // (max_frame_events 1) the loss is genuinely mid-stream: the next
    // frame's cumulative AckThrough re-carries the dropped batch's alerts
    // and advances `through` past it, so the supervisor catches up without
    // ever arming the ack timeout. The restart path must stay cold.
    let mut config = config("selfheal", 2, FaultPlan::none().drop_ack(1, 0, 2));
    config.window = 8;
    config.max_frame_events = 1;
    let (alerts, stats) = distributed_alerts(fixture, &fixture.batches, config);
    assert_eq!(alerts, expected);
    assert!(
        stats.recoveries.is_empty(),
        "a mid-stream ack loss must self-heal via the next cumulative ack, not a restart: {:?}",
        stats.recoveries
    );
}

#[test]
fn final_frame_ack_loss_recovers_via_the_ack_timeout() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    // The very last part's ack is swallowed. No subsequent frame exists to
    // piggyback a healing AckThrough on, so the loss surfaces either as an
    // ack timeout at the final flush or — when a periodic checkpoint rides
    // right behind the dropped frame — as the supervisor catching that
    // checkpoint's coverage outrunning the merged stream. Both paths must
    // end in a replacement worker replaying the unacked suffix, with the
    // stream still matching.
    let last = fixture.batches.len() as u64;
    let mut config = config("dropfinal", 1, FaultPlan::none().drop_ack(0, 0, last));
    config.ack_timeout = Duration::from_millis(400);
    let (alerts, stats) = distributed_alerts(fixture, &fixture.batches, config);
    assert_eq!(alerts, expected);
    assert!(
        stats.recoveries.iter().any(|r| r.worker == 0 && r.cause.contains("no ack")),
        "a final-frame ack loss must surface as a missing ack: {:?}",
        stats.recoveries
    );
}

#[test]
fn kill_and_stall_mid_multi_part_frame_recover_and_match() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    // Force genuinely multi-part frames: a wide window, no periodic
    // checkpoint flushes and a long linger let the writer coalesce many
    // sub-batches per frame. Worker 0 is killed mid-frame (event 40 lands
    // inside a coalesced frame's part sequence) and worker 1 stalls before
    // acking a mid-frame part — both must be reaped and replayed without
    // disturbing the merged stream.
    let plan = FaultPlan::none().kill_after(0, 0, 40).stall(1, 0, 30, 120_000);
    let mut config = config("midframe", 2, plan);
    config.window = 8;
    config.checkpoint_every = 0;
    config.linger = Duration::from_millis(50);
    config.ack_timeout = Duration::from_millis(600);
    let (alerts, stats) = distributed_alerts(fixture, &fixture.batches, config);
    assert_eq!(alerts, expected);
    assert!(
        stats.recoveries.iter().any(|r| r.worker == 0),
        "the mid-frame kill must be recovered: {:?}",
        stats.recoveries
    );
    assert!(
        stats.recoveries.iter().any(|r| r.worker == 1),
        "the mid-frame stall must be recovered: {:?}",
        stats.recoveries
    );
}

#[test]
fn large_legitimate_batches_do_not_trip_the_scaled_ack_timeout() {
    let fixture = fixture();
    let batches = &fixture.batches[..4];
    let expected = reference_alerts(fixture, batches);
    // A slow-but-healthy worker: 40ms per event makes one 16-event part
    // take ~640ms, well past the 400ms base ack timeout. The per-event
    // grace must scale the deadline with the in-flight event count so a
    // large legitimate batch is waited out, never mistaken for a wedge.
    let mut config = config("slowok", 1, FaultPlan::none().sleep_per_event(0, 0, 40));
    config.ack_timeout = Duration::from_millis(400);
    config.ack_grace_per_event = Duration::from_millis(50);
    let (alerts, stats) = distributed_alerts(fixture, batches, config);
    assert_eq!(alerts, expected);
    assert!(
        stats.recoveries.is_empty(),
        "a slow legitimate batch must not trigger a restart: {:?}",
        stats.recoveries
    );
}

/// End-to-end protocol-skew rejection: a peer speaking the wrong wire
/// version at a real `privacy-shardd` process gets a typed [`Message::Fatal`]
/// and a [`exit::PROTOCOL_FATAL`] exit, not a misparse or a hang.
#[test]
fn protocol_version_skew_is_rejected_with_a_typed_fatal() {
    use privacy_distrib::wire::MESSAGE_VERSION;
    use privacy_interchange::{read_frame, write_frame};
    use std::process::{Command, Stdio};

    let event = fixture().batches[0][0].clone();
    let cases: Vec<(Vec<u8>, &str)> = vec![
        // A v2-only coalesced frame downgraded to a v1 envelope: the tag is
        // meaningless at that version and must be named in the diagnostic.
        (
            Message::IngestBatch { acked_through: 0, parts: vec![(1, vec![(0, event)])] }
                .encode_at(MESSAGE_VERSION_V1),
            "requires protocol version",
        ),
        // A frame from the future: unsupported version, typed as such.
        (Message::Checkpoint.encode_at(MESSAGE_VERSION + 1), "version"),
    ];
    for (frame, needle) in cases {
        let mut child = Command::new(env!("CARGO_BIN_EXE_privacy-shardd"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("shardd spawns");
        let mut stdin = child.stdin.take().expect("piped stdin");
        write_frame(&mut stdin, &frame).expect("skewed frame is written");
        drop(stdin);
        let mut stdout = child.stdout.take().expect("piped stdout");
        let mut fatal = None;
        while let Some(reply) = read_frame(&mut stdout).expect("replies frame cleanly") {
            fatal = Some(Message::decode(&reply).expect("reply decodes at current version"));
        }
        match fatal {
            Some(Message::Fatal { code, message }) => {
                assert_eq!(code, exit::PROTOCOL_FATAL as u32, "wrong fatal code: {message}");
                assert!(message.contains(needle), "diagnostic does not name the cause: {message}");
            }
            other => panic!("expected a Fatal reply, got {other:?}"),
        }
        let status = child.wait().expect("shardd exits");
        assert_eq!(status.code(), Some(exit::PROTOCOL_FATAL));
    }
}

#[test]
fn corrupt_checkpoint_falls_back_a_generation_and_matches() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    // Corrupt worker 0's second checkpoint file on disk, then kill the
    // worker afterwards: the restart must detect the corruption via the
    // frame checksum, fall back to the `.prev` generation and replay the
    // longer suffix.
    let plan = FaultPlan::none().corrupt_checkpoint(0, 2).kill_after(0, 0, 120);
    let (alerts, stats) = distributed_alerts(fixture, &fixture.batches, config("corrupt", 2, plan));
    assert_eq!(alerts, expected);
    assert_eq!(stats.corruptions_injected, 1);
    let recovered = stats.recoveries.iter().find(|r| r.worker == 0).expect("worker 0 restarted");
    if recovered.fell_back {
        assert!(
            !stats.checkpoint_warnings.is_empty(),
            "a generation fallback must be reported as a warning"
        );
    }
}

#[test]
fn live_shard_handoff_is_invisible_downstream() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    let config = config("handoff", 2, FaultPlan::none());
    let dir = config.checkpoint_dir.clone();
    let mut monitor =
        DistributedMonitor::launch("Tiny", &fixture.system, fixture.fingerprint, config)
            .expect("fleet launches");
    for user in &fixture.users {
        monitor.register_user(user).expect("registration routes");
    }
    // Pick a shard with real traffic and move it to the other worker midway.
    let busy_shard = shard_of_user(fixture.batches[0][0].user());
    let old_owner = monitor.owner_of_shard(busy_shard);
    let new_owner = (old_owner + 1) % monitor.worker_count();
    let mut alerts = Vec::new();
    let midpoint = fixture.batches.len() / 2;
    for (i, batch) in fixture.batches.iter().enumerate() {
        if i == midpoint {
            monitor.rebalance_shard(busy_shard, new_owner).expect("handoff completes");
            assert_eq!(monitor.owner_of_shard(busy_shard), new_owner);
        }
        alerts.extend(monitor.submit_batch(batch).expect("batch is processed"));
    }
    let (rest, stats) = monitor.shutdown().expect("clean shutdown");
    alerts.extend(rest);
    let _ = std::fs::remove_dir_all(dir);
    assert_eq!(alerts, expected);
    assert_eq!(stats.handoffs, 1);
}

#[test]
fn handoff_survives_killing_the_new_owner() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    let busy_shard = shard_of_user(fixture.batches[0][0].user());
    // Kill the new owner's post-handoff incarnation: the import was
    // checkpointed, or — if the kill lands before the checkpoint covers it —
    // the supervisor must redeliver the pending import on restart.
    let config_probe = config("handoffkill-probe", 2, FaultPlan::none());
    let old_owner = {
        let dir = config_probe.checkpoint_dir.clone();
        let monitor =
            DistributedMonitor::launch("Tiny", &fixture.system, fixture.fingerprint, config_probe)
                .expect("fleet launches");
        let owner = monitor.owner_of_shard(busy_shard);
        let _ = std::fs::remove_dir_all(dir);
        owner
    };
    let new_owner = (old_owner + 1) % 2;
    let plan = FaultPlan::none().kill_after(new_owner, 0, 160);
    let config = config("handoffkill", 2, plan);
    let dir = config.checkpoint_dir.clone();
    let mut monitor =
        DistributedMonitor::launch("Tiny", &fixture.system, fixture.fingerprint, config)
            .expect("fleet launches");
    for user in &fixture.users {
        monitor.register_user(user).expect("registration routes");
    }
    let mut alerts = Vec::new();
    let midpoint = fixture.batches.len() / 2;
    for (i, batch) in fixture.batches.iter().enumerate() {
        if i == midpoint {
            monitor.rebalance_shard(busy_shard, new_owner).expect("handoff completes");
        }
        alerts.extend(monitor.submit_batch(batch).expect("batch is processed"));
    }
    let (rest, stats) = monitor.shutdown().expect("clean shutdown");
    alerts.extend(rest);
    let _ = std::fs::remove_dir_all(dir);
    assert_eq!(alerts, expected);
    assert_eq!(stats.handoffs, 1);
}

#[test]
fn restart_budget_is_not_renewed_by_a_single_ack_per_incarnation() {
    let fixture = fixture();
    // A worker that limps through exactly one batch per incarnation and
    // then dies is not making progress: the supervisor must run out of
    // restart budget (a typed RestartsExhausted error), not crash-loop
    // behind a budget renewed by every lone ack. With one worker each
    // super-batch is one 16-event sub-batch, so a kill at 20 events lands
    // after the first ack of every incarnation — including replays.
    let mut plan = FaultPlan::none();
    for incarnation in 0..10 {
        plan = plan.kill_after(0, incarnation, 20);
    }
    let config = config("budget", 1, plan);
    let dir = config.checkpoint_dir.clone();
    let mut monitor =
        DistributedMonitor::launch("Tiny", &fixture.system, fixture.fingerprint, config)
            .expect("fleet launches");
    for user in &fixture.users {
        monitor.register_user(user).expect("registration routes");
    }
    let mut outcome = Ok(());
    for batch in &fixture.batches {
        if let Err(error) = monitor.submit_batch(batch) {
            outcome = Err(error);
            break;
        }
    }
    drop(monitor);
    let _ = std::fs::remove_dir_all(dir);
    let error = outcome.expect_err("one ack per incarnation must exhaust the restart budget");
    assert!(
        matches!(error, DistribError::RestartsExhausted { worker: 0, .. }),
        "expected RestartsExhausted, got: {error}"
    );
}

#[test]
fn double_generation_corruption_recovers_by_full_replay() {
    let fixture = fixture();
    let expected = reference_alerts(fixture, &fixture.batches);
    // Corrupt the worker's first two checkpoints — every generation that
    // ever reaches disk is undecodable. Read-back validation must refuse
    // to advance coverage past either of them (pruning the replay suffix
    // against an unreadable checkpoint is exactly how the data gets
    // lost), so when the kill lands before the third checkpoint, the
    // replacement restarts clean and replays the entire retained suffix.
    let plan =
        FaultPlan::none().corrupt_checkpoint(0, 1).corrupt_checkpoint(0, 2).kill_after(0, 0, 100);
    let mut config = config("doublecorrupt", 1, plan);
    // One worker, 16-event sub-batches, checkpoints at batches 3 and 6
    // (events 48 and 96): the kill at event 100 lands after the second
    // corruption and before a third (valid) checkpoint could exist.
    config.checkpoint_every = 3;
    let (alerts, stats) = distributed_alerts(fixture, &fixture.batches, config);
    assert_eq!(alerts, expected);
    assert_eq!(stats.corruptions_injected, 2);
    assert!(
        stats.checkpoint_warnings.iter().any(|w| w.contains("read-back")),
        "read-back validation must record the unusable checkpoints: {:?}",
        stats.checkpoint_warnings
    );
    let recovery = stats.recoveries.iter().find(|r| r.worker == 0).expect("worker 0 restarted");
    assert_eq!(
        recovery.resumed_from_batch, 0,
        "with both generations unreadable the resume point is a clean start"
    );
}

#[test]
fn checkpoint_v2_dense_files_resume_into_v3_monitors() {
    // A worker checkpoint left on disk by a pre-sparse build: a version-2
    // file wrapping a version-2 *dense* snapshot. The current loader must
    // accept both layers — `decode_checkpoint` the old envelope,
    // `MonitorSnapshot::from_bytes` the dense payload — and the resumed
    // monitor must continue the stream exactly where the uninterrupted
    // reference does, so upgrading the fleet never discards worker state.
    use privacy_distrib::wire::{decode_checkpoint, encode_checkpoint_at, CHECKPOINT_VERSION_V2};
    use privacy_runtime::snapshot::SNAPSHOT_VERSION_V2;
    use privacy_runtime::MonitorSnapshot;

    let fixture = fixture();
    let make_monitor = || {
        let mut monitor = IndexedMonitor::new(
            fixture.system.catalog().clone(),
            fixture.system.policy().clone(),
            fixture.index.clone(),
        );
        for user in &fixture.users {
            monitor.register_user(user);
        }
        monitor
    };

    let cut = fixture.batches.len() / 2;
    let mut reference = make_monitor();
    let mut expected = Vec::new();
    for batch in &fixture.batches {
        expected.extend(reference.ingest_batch(batch));
    }

    let mut before = make_monitor();
    let mut alerts = Vec::new();
    for batch in &fixture.batches[..cut] {
        alerts.extend(before.ingest_batch(batch));
    }
    let old_file = encode_checkpoint_at(
        CHECKPOINT_VERSION_V2,
        0,
        cut as u64,
        0,
        &before.snapshot().to_bytes_at(SNAPSHOT_VERSION_V2),
    );

    let file = decode_checkpoint(&old_file).expect("v2 checkpoint decodes");
    assert_eq!(file.through_batch, cut as u64);
    let snapshot = MonitorSnapshot::from_bytes(&file.snapshot).expect("dense snapshot decodes");
    let mut resumed = IndexedMonitor::resume_from(
        fixture.system.catalog().clone(),
        fixture.system.policy().clone(),
        fixture.index.clone(),
        &snapshot,
    )
    .expect("dense snapshot resumes");
    for batch in &fixture.batches[cut..] {
        alerts.extend(resumed.ingest_batch(batch));
    }
    assert_eq!(alerts, expected, "resume from a v2 checkpoint diverged from the reference");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: for an **arbitrary** fault schedule — kills,
    /// stalls, dropped acks and checkpoint corruptions at generated points,
    /// over a generated worker count and checkpoint period — the merged
    /// distributed stream equals the in-process run.
    #[test]
    fn arbitrary_fault_schedules_preserve_the_alert_stream(
        workers in 1usize..=3,
        checkpoint_every in 1u64..=4,
        kill_worker in 0usize..3,
        kill_events in 1u64..200,
        second_fault in 0usize..4,
        drop_ordinal in 1u64..6,
        corrupt_ordinal in 1u64..4,
    ) {
        let fixture = fixture();
        let expected = reference_alerts(fixture, &fixture.batches);
        let mut plan = FaultPlan::none().kill_after(kill_worker % workers, 0, kill_events);
        plan = match second_fault {
            0 => plan,
            1 => plan.kill_after((kill_worker + 1) % workers, 0, kill_events / 2 + 1),
            2 => plan.drop_ack((kill_worker + 1) % workers, 0, drop_ordinal),
            _ => plan.corrupt_checkpoint(kill_worker % workers, corrupt_ordinal),
        };
        let mut config = config("prop", workers, plan);
        config.checkpoint_every = checkpoint_every;
        config.ack_timeout = Duration::from_millis(600);
        let (alerts, _stats) = distributed_alerts(fixture, &fixture.batches, config);
        prop_assert_eq!(alerts, expected);
    }
}

/// Supervisor misconfiguration surfaces as typed errors, not panics.
#[test]
fn bad_configs_are_typed_errors() {
    let fixture = fixture();
    let mut zero_workers = config("cfg0", 2, FaultPlan::none());
    zero_workers.workers = 0;
    let error =
        DistributedMonitor::launch("Tiny", &fixture.system, fixture.fingerprint, zero_workers)
            .expect_err("zero workers is unrunnable");
    assert!(error.to_string().contains("worker count"));

    let mut zero_window = config("cfgw", 2, FaultPlan::none());
    zero_window.window = 0;
    let error =
        DistributedMonitor::launch("Tiny", &fixture.system, fixture.fingerprint, zero_window)
            .expect_err("zero window is unrunnable");
    assert!(error.to_string().contains("window"));
}

/// A fingerprint the workers cannot reproduce is refused at launch: the
/// fleet must never run against a model that disagrees with the supervisor.
#[test]
fn fingerprint_mismatch_refuses_to_launch() {
    let fixture = fixture();
    let config = config("fpr", 1, FaultPlan::none());
    let dir = config.checkpoint_dir.clone();
    let error = DistributedMonitor::launch("Tiny", &fixture.system, 0xDEAD_BEEF, config)
        .expect_err("mismatched fingerprint must refuse");
    let _ = std::fs::remove_dir_all(dir);
    let message = error.to_string();
    assert!(
        message.contains("terminal") || message.contains("fingerprint"),
        "unexpected error: {message}"
    );
}
