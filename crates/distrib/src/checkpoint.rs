//! Atomic, generationed checkpoint files: [`CheckpointStore`].
//!
//! A checkpoint that can be *torn* by the crash it exists to survive is
//! worse than none — the classic failure is a process dying mid-`write(2)`
//! and leaving a half-file that poisons the restart. This store makes the
//! standard guarantees explicit:
//!
//! * **Atomic replace.** A checkpoint is written to a temporary file in the
//!   same directory, fsynced, and `rename(2)`d over the live path. Readers
//!   see the old complete file or the new complete file, never a mixture.
//! * **A `.prev` generation.** Before the rename, the previous live file is
//!   demoted to `<path>.prev` (via hard link + rename, so the live path
//!   never has a not-found gap a concurrent reader could fall into). If the
//!   *content* of the newest checkpoint is bad (corrupted on disk, or torn
//!   by a filesystem without atomic-rename durability), the loader falls
//!   back one generation instead of failing.
//! * **Typed fallback.** [`CheckpointStore::load_latest`] validates each
//!   generation with a caller-supplied check (normally
//!   [`decode_checkpoint`](crate::wire::decode_checkpoint), whose trailing
//!   checksum covers the whole file) and reports every skipped generation as
//!   a [`CheckpointWarning`] — the caller can log it, count it, or surface
//!   it to an operator, but is never silently resumed from stale state.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Which generation of a checkpoint file a load came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// The live checkpoint file.
    Current,
    /// The `.prev` fallback generation (the live file was missing or bad).
    Previous,
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Generation::Current => write!(f, "current"),
            Generation::Previous => write!(f, "previous"),
        }
    }
}

/// A generation that had to be skipped during [`CheckpointStore::load_latest`].
#[derive(Debug, Clone)]
pub struct CheckpointWarning {
    /// The file that was skipped.
    pub path: PathBuf,
    /// Why it was skipped (unreadable, or failed the caller's validation).
    pub detail: String,
}

impl fmt::Display for CheckpointWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "skipped checkpoint `{}`: {}", self.path.display(), self.detail)
    }
}

/// An atomically replaced, two-generation checkpoint file.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    base: PathBuf,
}

impl CheckpointStore {
    /// A store writing to `base` (and `base.prev` / `base.tmp` beside it).
    #[must_use]
    pub fn new(base: impl Into<PathBuf>) -> Self {
        Self { base: base.into() }
    }

    /// The live checkpoint path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.base
    }

    /// The previous-generation path.
    #[must_use]
    pub fn prev_path(&self) -> PathBuf {
        let mut name = self.base.as_os_str().to_owned();
        name.push(".prev");
        PathBuf::from(name)
    }

    fn tmp_path(&self) -> PathBuf {
        let mut name = self.base.as_os_str().to_owned();
        name.push(".tmp");
        PathBuf::from(name)
    }

    fn prev_tmp_path(&self) -> PathBuf {
        let mut name = self.base.as_os_str().to_owned();
        name.push(".prev.tmp");
        PathBuf::from(name)
    }

    /// Atomically replaces the checkpoint with `bytes`, demoting the old
    /// live file to the `.prev` generation first.
    ///
    /// The live path never *vanishes* during the rotation: the old
    /// generation is demoted via a hard link (so `base` and `base.prev`
    /// briefly name the same inode) and the new file then renamed over
    /// `base`. A concurrent reader — the supervisor validates every
    /// checkpoint by reading it back when its `CheckpointDone` arrives,
    /// which can race the worker's *next* asynchronous checkpoint write —
    /// always finds a complete generation at `base`, old or new, never a
    /// `NotFound` gap.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created,
    /// the temporary file cannot be written and fsynced, or a link/rename
    /// fails. On error the live file is either the old generation or the
    /// new one — never a partial write, because all writing happens in the
    /// `.tmp` file.
    pub fn write(&self, bytes: &[u8]) -> std::io::Result<()> {
        if let Some(parent) = self.base.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let tmp = self.tmp_path();
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        if self.base.exists() {
            // Demote without unlinking `base`: link the live inode to a
            // scratch name, then atomically rename it over `.prev`.
            let prev_tmp = self.prev_tmp_path();
            let _ = fs::remove_file(&prev_tmp);
            fs::hard_link(&self.base, &prev_tmp)?;
            fs::rename(&prev_tmp, self.prev_path())?;
        }
        fs::rename(&tmp, &self.base)?;
        Ok(())
    }

    /// Loads the newest generation whose bytes pass `validate`, falling back
    /// from the live file to `.prev`. Returns the accepted bytes and which
    /// generation they came from (or `None` when no generation is usable),
    /// plus a warning for every generation that was skipped and why.
    pub fn load_latest(
        &self,
        mut validate: impl FnMut(&[u8]) -> Result<(), String>,
    ) -> (Option<(Vec<u8>, Generation)>, Vec<CheckpointWarning>) {
        let mut warnings = Vec::new();
        let candidates =
            [(self.base.clone(), Generation::Current), (self.prev_path(), Generation::Previous)];
        for (path, generation) in candidates {
            if !path.exists() {
                continue;
            }
            match fs::read(&path) {
                Ok(bytes) => match validate(&bytes) {
                    Ok(()) => return (Some((bytes, generation)), warnings),
                    Err(detail) => warnings.push(CheckpointWarning { path, detail }),
                },
                Err(error) => warnings
                    .push(CheckpointWarning { path, detail: format!("unreadable: {error}") }),
            }
        }
        (None, warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("privacy-distrib-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::new(dir.join("w.ckpt"));
        store.write(b"generation-1").unwrap();
        let (loaded, warnings) = store.load_latest(|_| Ok(()));
        let (bytes, generation) = loaded.expect("checkpoint loads");
        assert_eq!(bytes, b"generation-1");
        assert_eq!(generation, Generation::Current);
        assert!(warnings.is_empty());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn second_write_demotes_first_to_prev() {
        let dir = temp_dir("demote");
        let store = CheckpointStore::new(dir.join("w.ckpt"));
        store.write(b"one").unwrap();
        store.write(b"two").unwrap();
        assert_eq!(fs::read(store.path()).unwrap(), b"two");
        assert_eq!(fs::read(store.prev_path()).unwrap(), b"one");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn bad_current_generation_falls_back_with_warning() {
        let dir = temp_dir("fallback");
        let store = CheckpointStore::new(dir.join("w.ckpt"));
        store.write(b"good-old").unwrap();
        store.write(b"bad-new").unwrap();
        let (loaded, warnings) = store.load_latest(|bytes| {
            if bytes.starts_with(b"bad") {
                Err("checksum mismatch".to_owned())
            } else {
                Ok(())
            }
        });
        let (bytes, generation) = loaded.expect("previous generation loads");
        assert_eq!(bytes, b"good-old");
        assert_eq!(generation, Generation::Previous);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].to_string().contains("checksum mismatch"));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn both_generations_bad_reports_both() {
        let dir = temp_dir("allbad");
        let store = CheckpointStore::new(dir.join("w.ckpt"));
        store.write(b"one").unwrap();
        store.write(b"two").unwrap();
        let (loaded, warnings) = store.load_latest(|_| Err("nope".to_owned()));
        assert!(loaded.is_none());
        assert_eq!(warnings.len(), 2);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_files_load_as_none_without_warnings() {
        let dir = temp_dir("missing");
        let store = CheckpointStore::new(dir.join("never-written.ckpt"));
        let (loaded, warnings) = store.load_latest(|_| Ok(()));
        assert!(loaded.is_none());
        assert!(warnings.is_empty());
        let _ = fs::remove_dir_all(dir);
    }
}
