//! The supervisor: [`DistributedMonitor`], a fault-tolerant router over
//! shard-owning worker processes.
//!
//! # Topology and determinism
//!
//! Every event is routed by `shard_of_user` to the worker that owns that
//! shard (shards are assigned as contiguous ranges at launch and can be
//! moved live with [`DistributedMonitor::rebalance_shard`]). Each submitted
//! super-batch is split into per-worker sub-batches whose events keep their
//! **position** in the super-batch; workers ack with position-tagged alerts,
//! and the supervisor reassembles super-batches in order, sorting each
//! one's merged alerts by position. Because a user's events always flow
//! through one owner in stream order, the merged stream is identical to the
//! in-process
//! [`IndexedMonitor::ingest_batch`](privacy_runtime::IndexedMonitor)
//! ordering — and stays identical under every fault the harness can inject,
//! which is what `tests/fault_differential.rs` asserts.
//!
//! # Data plane: coalesced frames over per-worker writer threads
//!
//! Sub-batches are not framed one by one on the supervisor thread. Each
//! worker lane owns a dedicated **writer thread** behind a bounded queue:
//! the supervisor enqueues sub-batch parts (cheap: no encoding) and the
//! writer coalesces adjacent parts into one
//! [`IngestBatch`](Message::IngestBatch) frame — flushed when
//! `max_frame_events` accumulate or the `linger` deadline passes, so
//! trickle input still sees bounded latency. Sends to different workers
//! overlap instead of serializing, and one frame pays one length/checksum
//! for many events. Workers answer with cumulative
//! [`AckThrough`](Message::AckThrough) frames carrying every alert the
//! supervisor has not yet confirmed; the next outbound frame piggybacks the
//! confirmed high-water (`acked_through`) back, which both prunes the
//! worker's retained alert buffer and lets a swallowed ack self-heal on the
//! next frame instead of forcing a restart. Control frames (register,
//! checkpoint, handoff, shutdown) flush any coalescing parts first, so the
//! per-lane FIFO order the protocol relies on is preserved.
//!
//! # Backpressure
//!
//! At most `window` sub-batches may be in flight per worker; submitting
//! more blocks on that worker's acks. The queue to a worker is therefore
//! bounded end to end — writer queue plus pipe hold at most `window`
//! sub-batches — and a stalled worker stalls its *own* lane, then (via the
//! ack timeout, scaled by `ack_grace_per_event` for the events legitimately
//! in flight) gets killed and restarted rather than wedging the fleet
//! forever.
//!
//! # Failure model
//!
//! Worker death is detected as pipe EOF, an undecodable frame, a
//! [`Fatal`](Message::Fatal) report, or an ack/checkpoint timeout. Terminal
//! exit codes (see [`crate::exit`]) abort the run with a typed error;
//! anything else triggers supervised restart with exponential backoff and a
//! deterministic jitter, capped by [`RestartPolicy`]. A replacement resumes
//! from the newest *valid* checkpoint generation (falling back past a
//! corrupt one with a recorded warning), gets its owned profiles
//! re-registered and any missing shard-handoff imports redelivered, and
//! replays exactly the retained suffix of sub-batches newer than the
//! checkpoint. Re-acked batches that were already emitted are recognised by
//! id and dropped, so replay never duplicates an alert downstream.

use crate::checkpoint::{CheckpointStore, Generation};
use crate::exit;
use crate::fault::FaultPlan;
use crate::wire::{decode_checkpoint, Message};
use privacy_core::PrivacySystem;
use privacy_interchange::{read_frame, render_system, write_frame};
use privacy_model::UserProfile;
use privacy_runtime::{shard_of_user, Alert, Event, SHARD_COUNT};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::BufWriter;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, SyncSender, TryRecvError,
};
use std::thread;
use std::time::{Duration, Instant};

/// When and how often a dead worker is restarted.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Delay before the first restart attempt; doubles per attempt.
    pub base_delay: Duration,
    /// Upper bound on any single backoff delay (the jitter cap).
    pub max_delay: Duration,
    /// Restarts allowed without intervening progress before the supervisor
    /// gives up with a typed error.
    pub max_restarts: u32,
    /// Acked batches a fresh incarnation must deliver before the restart
    /// budget resets. One ack is not progress: a worker that limps through
    /// a single batch per incarnation and then dies would otherwise crash-
    /// loop forever inside a perpetually-renewed budget. Only *sustained*
    /// health — this many acks from one incarnation — forgives its past.
    pub reset_after_acks: u32,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        Self {
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            max_restarts: 5,
            reset_after_acks: 3,
        }
    }
}

impl RestartPolicy {
    /// Exponential backoff with a deterministic per-(worker, spawn) jitter,
    /// capped at `max_delay`. Deterministic jitter keeps runs reproducible
    /// while still de-synchronising workers that died together.
    fn delay_for(&self, attempt: u32, worker: usize, spawn_count: u32) -> Duration {
        let doubled = self.base_delay.saturating_mul(1u32 << attempt.min(10));
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for word in [worker as u64, u64::from(spawn_count)] {
            hash ^= word;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let jitter = self.base_delay.saturating_mul((hash % 1000) as u32) / 2000;
        doubled.saturating_add(jitter).min(self.max_delay)
    }
}

/// Configuration for a [`DistributedMonitor`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The worker executable (the `privacy-shardd` binary).
    pub worker_program: PathBuf,
    /// Extra arguments passed to every worker before any fault switches.
    pub worker_args: Vec<String>,
    /// Number of worker processes (1 ..= [`SHARD_COUNT`]).
    pub workers: usize,
    /// Maximum sub-batches in flight per worker before submits block.
    pub window: usize,
    /// Checkpoint all workers every N super-batches (0 = only on demand).
    pub checkpoint_every: u64,
    /// Directory for the per-worker checkpoint files.
    pub checkpoint_dir: PathBuf,
    /// How long to wait for an ack before declaring a worker stalled. The
    /// effective deadline additionally grows by
    /// [`ack_grace_per_event`](Self::ack_grace_per_event) for every event
    /// currently in flight, so
    /// a large legitimate batch on a slow model is not mistaken for a hang.
    pub ack_timeout: Duration,
    /// Extra ack-deadline grace granted per in-flight event.
    pub ack_grace_per_event: Duration,
    /// Most events one coalesced [`IngestBatch`](Message::IngestBatch)
    /// frame may carry before the writer flushes it.
    pub max_frame_events: usize,
    /// How long the writer holds a partially filled frame open for more
    /// parts before flushing it anyway — the latency bound under trickle
    /// input.
    pub linger: Duration,
    /// Bound of the supervisor→writer command queue, in commands.
    pub writer_queue: usize,
    /// How long to wait for a checkpoint/export/import reply.
    pub control_timeout: Duration,
    /// How long a fresh worker may take to parse the model, rebuild the
    /// index and report [`Ready`](Message::Ready).
    pub startup_timeout: Duration,
    /// Restart backoff policy.
    pub restart: RestartPolicy,
    /// Failure-injection schedule (empty in production).
    pub fault_plan: FaultPlan,
}

impl SupervisorConfig {
    /// A config with sensible defaults for the given worker executable and
    /// checkpoint directory.
    #[must_use]
    pub fn new(worker_program: impl Into<PathBuf>, checkpoint_dir: impl Into<PathBuf>) -> Self {
        Self {
            worker_program: worker_program.into(),
            worker_args: Vec::new(),
            workers: 2,
            window: 4,
            checkpoint_every: 0,
            checkpoint_dir: checkpoint_dir.into(),
            ack_timeout: Duration::from_secs(10),
            ack_grace_per_event: Duration::from_millis(5),
            max_frame_events: 1024,
            linger: Duration::from_millis(2),
            writer_queue: 16,
            control_timeout: Duration::from_secs(60),
            startup_timeout: Duration::from_secs(120),
            restart: RestartPolicy::default(),
            fault_plan: FaultPlan::none(),
        }
    }
}

/// One supervised restart, as recorded in [`DistribStats`].
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The worker slot that was restarted.
    pub worker: usize,
    /// The incarnation that replaced the dead one.
    pub incarnation: u32,
    /// Why the old incarnation was declared dead.
    pub cause: String,
    /// Wall-clock time from death detection to the replacement being caught
    /// up (resumed, re-registered, suffix replayed).
    pub latency: Duration,
    /// The super-batch the resumed checkpoint covered through.
    pub resumed_from_batch: u64,
    /// Whether the resume had to fall back to the `.prev` generation.
    pub fell_back: bool,
}

/// Counters and records describing a supervised run.
#[derive(Debug, Clone, Default)]
pub struct DistribStats {
    /// Super-batches submitted.
    pub batches: u64,
    /// Events submitted.
    pub events: u64,
    /// Alerts emitted in the merged stream.
    pub alerts: u64,
    /// Checkpoints completed across all workers.
    pub checkpoints: u64,
    /// Live shard handoffs completed.
    pub handoffs: u64,
    /// Checkpoint generations the loader had to skip (with causes).
    pub checkpoint_warnings: Vec<String>,
    /// Checkpoint files corrupted on purpose by the fault plan.
    pub corruptions_injected: u64,
    /// Every supervised restart, in order.
    pub recoveries: Vec<Recovery>,
}

/// A typed supervisor failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum DistribError {
    /// The configuration cannot describe a runnable fleet.
    Config {
        /// What is wrong with it.
        detail: String,
    },
    /// A worker died with an exit code restarting cannot fix.
    WorkerTerminal {
        /// The worker slot.
        worker: usize,
        /// Its exit code (see [`crate::exit`]).
        code: i32,
        /// The death cause as detected.
        detail: String,
    },
    /// A worker kept dying without making progress.
    RestartsExhausted {
        /// The worker slot.
        worker: usize,
        /// How many restarts were attempted.
        attempts: u32,
        /// The last failure.
        last: String,
    },
    /// A worker (or its pipe) broke the protocol in a way that is not a
    /// death: an ack for the wrong batch, an unexpected message kind.
    Protocol {
        /// The worker slot.
        worker: usize,
        /// What it did.
        detail: String,
    },
    /// No checkpoint generation covers the replay window: the retained
    /// suffix starts after the best available checkpoint ends, so state
    /// would be silently lost. (Reachable only when both generations are
    /// corrupt or deleted.)
    CheckpointUnrecoverable {
        /// The worker slot.
        worker: usize,
        /// What is missing.
        detail: String,
    },
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::Config { detail } => write!(f, "bad supervisor config: {detail}"),
            DistribError::WorkerTerminal { worker, code, detail } => write!(
                f,
                "worker {worker} died with terminal exit code {code} ({}): {detail}",
                exit::describe(*code)
            ),
            DistribError::RestartsExhausted { worker, attempts, last } => write!(
                f,
                "worker {worker} kept dying: gave up after {attempts} restarts (last: {last})"
            ),
            DistribError::Protocol { worker, detail } => {
                write!(f, "worker {worker} broke the protocol: {detail}")
            }
            DistribError::CheckpointUnrecoverable { worker, detail } => {
                write!(f, "worker {worker} cannot be recovered: {detail}")
            }
        }
    }
}

impl std::error::Error for DistribError {}

/// One command to a worker lane's writer thread.
enum WriteCmd {
    /// A pre-encoded control frame. Pending coalesced parts are flushed
    /// first so the lane stays FIFO.
    Frame(Vec<u8>),
    /// One sub-batch part for the coalescing buffer. Encoding happens on
    /// the writer thread, off the supervisor's critical path.
    Part {
        batch: u64,
        events: Vec<(u32, Event)>,
        /// The supervisor's confirmed high-water at enqueue time, piggybacked
        /// on the frame so the worker prunes its retained alert buffer.
        acked_through: u64,
    },
    /// Flush the coalescing buffer now (a lane flush is about to wait on
    /// acks that only arrive once the parts are on the wire).
    Flush,
}

/// A live worker process: the child, the bounded queue feeding its writer
/// thread, and the channel its reader thread feeds with stdout frames. The
/// reader exits (dropping its sender) on EOF or any read error, so death
/// always surfaces as a disconnected channel; the writer exits when its
/// queue disconnects or the pipe breaks.
struct WorkerProc {
    child: Child,
    writer_tx: Option<SyncSender<WriteCmd>>,
    writer: Option<thread::JoinHandle<()>>,
    rx: Receiver<Vec<u8>>,
}

/// The writer thread: coalesces adjacent `Part` commands into one
/// [`Message::IngestBatch`] frame, flushed on `max_frame_events`, on the
/// `linger` deadline, on a control frame, or on an explicit `Flush`. Exits
/// (after a best-effort drain) when the command queue disconnects or a pipe
/// write fails — the reader thread surfaces the actual death.
fn writer_loop(
    commands: &Receiver<WriteCmd>,
    stdin: ChildStdin,
    max_frame_events: usize,
    linger: Duration,
) {
    let mut out = BufWriter::new(stdin);
    let mut parts: Vec<(u64, Vec<(u32, Event)>)> = Vec::new();
    let mut buffered = 0usize;
    let mut acked_through = 0u64;
    let mut deadline = Instant::now();
    let flush_parts = |parts: &mut Vec<(u64, Vec<(u32, Event)>)>,
                       buffered: &mut usize,
                       acked_through: u64,
                       out: &mut BufWriter<ChildStdin>| {
        if parts.is_empty() {
            return true;
        }
        *buffered = 0;
        let message = Message::IngestBatch { acked_through, parts: std::mem::take(parts) };
        write_frame(out, &message.encode()).is_ok()
    };
    loop {
        let command = if parts.is_empty() {
            commands.recv().ok()
        } else {
            match commands.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                Ok(command) => Some(command),
                Err(RecvTimeoutError::Timeout) => {
                    if !flush_parts(&mut parts, &mut buffered, acked_through, &mut out) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => None,
            }
        };
        match command {
            Some(WriteCmd::Part { batch, events, acked_through: confirmed }) => {
                acked_through = acked_through.max(confirmed);
                if parts.is_empty() {
                    deadline = Instant::now() + linger;
                }
                buffered += events.len();
                parts.push((batch, events));
                if buffered >= max_frame_events
                    && !flush_parts(&mut parts, &mut buffered, acked_through, &mut out)
                {
                    return;
                }
            }
            Some(WriteCmd::Frame(frame)) => {
                if !flush_parts(&mut parts, &mut buffered, acked_through, &mut out) {
                    return;
                }
                if write_frame(&mut out, &frame).is_err() {
                    return;
                }
            }
            Some(WriteCmd::Flush) => {
                if !flush_parts(&mut parts, &mut buffered, acked_through, &mut out) {
                    return;
                }
            }
            None => {
                let _ = flush_parts(&mut parts, &mut buffered, acked_through, &mut out);
                return;
            }
        }
    }
}

/// Everything the supervisor tracks per worker slot, surviving restarts.
struct WorkerSlot {
    proc: Option<WorkerProc>,
    /// How many processes have ever been spawned into this slot; the
    /// current incarnation is `spawn_count - 1`.
    spawn_count: u32,
    /// Restarts since the last *sustained* progress (see
    /// [`RestartPolicy::reset_after_acks`]).
    consecutive_restarts: u32,
    /// Batches acked by the current incarnation, for the sustained-progress
    /// test. Zeroed on every spawn.
    acks_since_spawn: u32,
    /// Sub-batches sent but not yet acked, in send order, as
    /// `(batch id, event count)` — the count feeds the per-event ack grace.
    inflight: VecDeque<(u64, u32)>,
    /// Highest batch id confirmed (popped from `inflight`) over the slot's
    /// whole life; piggybacked on outbound frames as `acked_through`.
    /// Monotonic across restarts.
    merged_through: u64,
    /// Sub-batches newer than the previous checkpoint generation, kept for
    /// suffix replay. Two generations are retained so a fallback to the
    /// `.prev` checkpoint still has its whole suffix.
    retained: VecDeque<(u64, Vec<(u32, Event)>)>,
    /// Super-batch coverage of the live / previous checkpoint generation.
    coverage: u64,
    prev_coverage: u64,
    /// Import count recorded by the live / previous checkpoint generation.
    imports_cov: u64,
    prev_imports: u64,
    /// Total imports delivered to this slot (the ordinal source).
    import_ordinal: u64,
    /// Handoff imports not yet covered by two checkpoint generations, as
    /// `(ordinal, snapshot frame)`.
    pending_imports: Vec<(u64, Vec<u8>)>,
    /// Successful checkpoints, for the corrupt-checkpoint fault schedule.
    ckpt_ordinal: u64,
    /// [`Message::Checkpoint`] requests sent on the periodic (asynchronous)
    /// path whose [`Message::CheckpointDone`] has not arrived yet. The
    /// supervisor keeps streaming while the worker encodes and fsyncs; the
    /// reply is collected by [`DistributedMonitor::pump`] or the next ack
    /// wait. Zeroed on every spawn (a dead worker's replies never come).
    ckpts_pending: u32,
    store: CheckpointStore,
}

/// A super-batch being reassembled from per-worker acks.
struct PendingBatch {
    expected: usize,
    got: BTreeMap<usize, Vec<(u32, Alert)>>,
}

enum Received {
    Msg(Message),
    Dead(String),
    TimedOut,
}

enum BringUp {
    Retry(String),
    Terminal(DistribError),
}

/// The supervisor over a fleet of `privacy-shardd` workers. See the module
/// docs for the topology, backpressure and failure model.
pub struct DistributedMonitor {
    config: SupervisorConfig,
    model_psm: String,
    fingerprint: u64,
    /// shard → owning worker slot.
    routing: Vec<usize>,
    /// shard → profiles registered there, in registration order (replayed
    /// to every new incarnation; registration is idempotent worker-side).
    registry: Vec<Vec<UserProfile>>,
    workers: Vec<WorkerSlot>,
    next_batch: u64,
    next_emit: u64,
    assembly: BTreeMap<u64, PendingBatch>,
    emitted: Vec<Alert>,
    stats: DistribStats,
}

impl fmt::Debug for DistributedMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistributedMonitor")
            .field("workers", &self.workers.len())
            .field("next_batch", &self.next_batch)
            .field("next_emit", &self.next_emit)
            .finish_non_exhaustive()
    }
}

impl DistributedMonitor {
    /// Renders the system to `.psm`, spawns the fleet, and waits for every
    /// worker to report ready with a matching index fingerprint.
    ///
    /// `fingerprint` is the design-time [`LtsIndex`](privacy_lts::LtsIndex)
    /// fingerprint the supervisor's own pipeline computed; every worker
    /// must reproduce it from the shipped model.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::Config`] for an unrunnable configuration and
    /// the relevant typed error when a worker cannot be brought up.
    pub fn launch(
        name: &str,
        system: &PrivacySystem,
        fingerprint: u64,
        config: SupervisorConfig,
    ) -> Result<Self, DistribError> {
        if config.workers == 0 || config.workers > SHARD_COUNT {
            return Err(DistribError::Config {
                detail: format!(
                    "worker count must be in 1..={SHARD_COUNT}, got {}",
                    config.workers
                ),
            });
        }
        if config.window == 0 {
            return Err(DistribError::Config { detail: "window must be at least 1".to_owned() });
        }
        if config.max_frame_events == 0 {
            return Err(DistribError::Config {
                detail: "max_frame_events must be at least 1".to_owned(),
            });
        }
        if config.writer_queue == 0 {
            return Err(DistribError::Config {
                detail: "writer_queue must be at least 1".to_owned(),
            });
        }
        let model_psm = render_system(name, system);
        let workers = config.workers;
        let routing: Vec<usize> = (0..SHARD_COUNT).map(|s| s * workers / SHARD_COUNT).collect();
        let slots = (0..workers)
            .map(|w| WorkerSlot {
                proc: None,
                spawn_count: 0,
                consecutive_restarts: 0,
                acks_since_spawn: 0,
                inflight: VecDeque::new(),
                merged_through: 0,
                retained: VecDeque::new(),
                coverage: 0,
                prev_coverage: 0,
                imports_cov: 0,
                prev_imports: 0,
                import_ordinal: 0,
                pending_imports: Vec::new(),
                ckpt_ordinal: 0,
                ckpts_pending: 0,
                store: CheckpointStore::new(config.checkpoint_dir.join(format!("worker-{w}.ckpt"))),
            })
            .collect();
        let mut monitor = DistributedMonitor {
            config,
            model_psm,
            fingerprint,
            routing,
            registry: vec![Vec::new(); SHARD_COUNT],
            workers: slots,
            next_batch: 1,
            next_emit: 1,
            assembly: BTreeMap::new(),
            emitted: Vec::new(),
            stats: DistribStats::default(),
        };
        for w in 0..workers {
            monitor.restart_loop(w, None)?;
        }
        Ok(monitor)
    }

    /// The number of worker slots.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The worker slot currently owning a shard.
    #[must_use]
    pub fn owner_of_shard(&self, shard: u32) -> usize {
        self.routing[shard as usize]
    }

    /// The run statistics so far.
    #[must_use]
    pub fn stats(&self) -> &DistribStats {
        &self.stats
    }

    /// Registers a user with the owner of their shard. Idempotent: a
    /// profile with an already-registered id is ignored, mirroring the
    /// worker-side re-registration semantics.
    ///
    /// # Errors
    ///
    /// Propagates restart failures if the owner is dead and cannot be
    /// revived.
    pub fn register_user(&mut self, profile: &UserProfile) -> Result<(), DistribError> {
        let shard = shard_of_user(profile.id()) as usize;
        if self.registry[shard].iter().any(|p| p.id() == profile.id()) {
            return Ok(());
        }
        self.registry[shard].push(profile.clone());
        let w = self.routing[shard];
        let message = Message::Register { profile: profile.clone() };
        if let Err(cause) = self.send_raw(w, &message) {
            // The revived worker re-registers from the registry, which
            // already holds this profile.
            self.handle_death(w, cause)?;
        }
        Ok(())
    }

    /// Submits one super-batch: splits it across shard owners, applies
    /// backpressure, and returns every alert of super-batches completed so
    /// far, merged in deterministic batch/position order.
    ///
    /// # Errors
    ///
    /// Propagates typed supervisor failures; transient worker deaths are
    /// handled internally by restart and replay.
    pub fn submit_batch(&mut self, events: &[Event]) -> Result<Vec<Alert>, DistribError> {
        let id = self.next_batch;
        self.next_batch += 1;
        self.stats.batches += 1;
        self.stats.events += events.len() as u64;
        let mut parts: BTreeMap<usize, Vec<(u32, Event)>> = BTreeMap::new();
        for (position, event) in events.iter().enumerate() {
            let w = self.routing[shard_of_user(event.user()) as usize];
            parts.entry(w).or_default().push((position as u32, event.clone()));
        }
        self.assembly.insert(id, PendingBatch { expected: parts.len(), got: BTreeMap::new() });
        for (w, part) in parts {
            while self.workers[w].inflight.len() >= self.config.window {
                self.await_one_ack(w)?;
            }
            // Retain before sending: if the send fails, the restart path
            // replays the batch from the retained suffix.
            self.workers[w].retained.push_back((id, part.clone()));
            let count = part.len() as u32;
            match self.send_part(w, id, part) {
                Ok(()) => self.workers[w].inflight.push_back((id, count)),
                Err(cause) => self.handle_death(w, cause)?,
            }
        }
        for w in 0..self.workers.len() {
            self.pump(w)?;
        }
        self.drain_ready();
        if self.config.checkpoint_every > 0 {
            self.checkpoint_async(id)?;
        }
        Ok(std::mem::take(&mut self.emitted))
    }

    /// Blocks until every in-flight sub-batch is acked and returns the
    /// remaining merged alerts.
    ///
    /// # Errors
    ///
    /// Propagates typed supervisor failures.
    pub fn flush(&mut self) -> Result<Vec<Alert>, DistribError> {
        for w in 0..self.workers.len() {
            self.flush_worker(w)?;
        }
        Ok(std::mem::take(&mut self.emitted))
    }

    /// Checkpoints every worker now, **synchronously** (flushing their
    /// lanes first): on return every worker has a completed checkpoint.
    /// Used where durability must be certain before proceeding — shard
    /// handoffs and explicit caller requests; the periodic cadence goes
    /// through the private `checkpoint_async` instead.
    ///
    /// The checkpoint is still **broadcast**: every worker gets the request
    /// before any reply is awaited, so the workers' snapshot encodes and
    /// fsyncs overlap instead of serializing. A worker that dies
    /// mid-checkpoint falls back to the sequential per-worker path, which
    /// restarts it and retries.
    ///
    /// # Errors
    ///
    /// Propagates typed supervisor failures.
    pub fn checkpoint_now(&mut self) -> Result<(), DistribError> {
        for w in 0..self.workers.len() {
            self.flush_worker(w)?;
        }
        let mut awaiting = Vec::new();
        for w in 0..self.workers.len() {
            match self.send_raw(w, &Message::Checkpoint) {
                Ok(()) => awaiting.push(w),
                Err(cause) => {
                    self.handle_death(w, cause)?;
                    self.checkpoint_worker(w)?;
                }
            }
        }
        for w in awaiting {
            match self.recv(w, self.config.control_timeout) {
                Received::Msg(Message::CheckpointDone { through_batch, imports }) => {
                    self.complete_checkpoint(w, through_batch, imports)?;
                }
                Received::Msg(other) => {
                    return Err(DistribError::Protocol {
                        worker: w,
                        detail: format!("expected CheckpointDone, got {other:?}"),
                    })
                }
                Received::Dead(cause) => {
                    self.handle_death(w, cause)?;
                    self.checkpoint_worker(w)?;
                }
                Received::TimedOut => {
                    self.handle_death(w, "checkpoint timed out".to_owned())?;
                    self.checkpoint_worker(w)?;
                }
            }
        }
        Ok(())
    }

    /// Moves a shard to a new owner live: flushes the fleet, exports the
    /// shard's state from the old owner, redirects routing, delivers the
    /// export to the new owner, and checkpoints both so the handoff is
    /// durable.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::Config`] for an unknown shard or worker and
    /// propagates typed supervisor failures; worker deaths during the
    /// handoff are recovered and the handoff retried internally.
    pub fn rebalance_shard(&mut self, shard: u32, to: usize) -> Result<(), DistribError> {
        if shard as usize >= SHARD_COUNT {
            return Err(DistribError::Config { detail: format!("shard {shard} does not exist") });
        }
        if to >= self.workers.len() {
            return Err(DistribError::Config { detail: format!("worker {to} does not exist") });
        }
        let from = self.routing[shard as usize];
        if from == to {
            return Ok(());
        }
        // A quiescent fleet: every batch before the handoff is acked and
        // emitted, so post-handoff replays of pre-handoff batches can only
        // produce already-emitted (and therefore dropped) acks.
        self.flush()?;
        let blob = loop {
            self.flush_worker(from)?;
            if let Err(cause) = self.send_raw(from, &Message::ExportShards { shards: vec![shard] })
            {
                self.handle_death(from, cause)?;
                continue;
            }
            match self.recv(from, self.config.control_timeout) {
                Received::Msg(Message::ShardExport { snapshot }) => break snapshot,
                Received::Msg(other) => {
                    return Err(DistribError::Protocol {
                        worker: from,
                        detail: format!("expected ShardExport, got {other:?}"),
                    })
                }
                Received::Dead(cause) => self.handle_death(from, cause)?,
                Received::TimedOut => self.handle_death(from, "shard export timed out".into())?,
            }
        };
        self.routing[shard as usize] = to;
        self.workers[to].import_ordinal += 1;
        let ordinal = self.workers[to].import_ordinal;
        self.workers[to].pending_imports.push((ordinal, blob.clone()));
        match self.send_raw(to, &Message::ImportShards { snapshot: blob }) {
            Ok(()) => match self.recv(to, self.config.control_timeout) {
                Received::Msg(Message::Imported { .. }) => {}
                Received::Msg(other) => {
                    return Err(DistribError::Protocol {
                        worker: to,
                        detail: format!("expected Imported, got {other:?}"),
                    })
                }
                // The restart path redelivers the pending import itself.
                Received::Dead(cause) => self.handle_death(to, cause)?,
                Received::TimedOut => self.handle_death(to, "shard import timed out".into())?,
            },
            Err(cause) => self.handle_death(to, cause)?,
        }
        // Make the handoff durable on both sides before declaring it done.
        self.checkpoint_worker(from)?;
        self.checkpoint_worker(to)?;
        self.stats.handoffs += 1;
        Ok(())
    }

    /// Flushes the fleet, asks every worker to exit, reaps the processes,
    /// and returns the remaining merged alerts plus the run statistics.
    ///
    /// # Errors
    ///
    /// Propagates typed supervisor failures from the final flush.
    pub fn shutdown(&mut self) -> Result<(Vec<Alert>, DistribStats), DistribError> {
        let alerts = self.flush()?;
        for w in 0..self.workers.len() {
            let _ = self.send_raw(w, &Message::Shutdown);
        }
        for slot in &mut self.workers {
            if let Some(mut proc) = slot.proc.take() {
                // Disconnecting the queue makes the writer drain (delivering
                // the Shutdown frame) and exit, closing stdin — EOF is the
                // belt to Shutdown's suspenders.
                drop(proc.writer_tx.take());
                if let Some(writer) = proc.writer.take() {
                    let _ = writer.join();
                }
                let _ = proc.child.wait();
            }
        }
        Ok((alerts, std::mem::take(&mut self.stats)))
    }

    // ------------------------------------------------------------------
    // Plumbing: send, receive, death handling.

    /// Enqueues a pre-encoded control frame on the lane's writer thread.
    /// Blocks while the bounded queue is full; fails when the writer has
    /// exited (which means the pipe broke — the reader thread surfaces the
    /// actual death).
    fn send_raw(&mut self, w: usize, message: &Message) -> Result<(), String> {
        self.send_cmd(w, WriteCmd::Frame(message.encode()))
    }

    /// Enqueues one sub-batch part for coalescing into the lane's next
    /// [`Message::IngestBatch`] frame.
    fn send_part(&mut self, w: usize, batch: u64, events: Vec<(u32, Event)>) -> Result<(), String> {
        let acked_through = self.workers[w].merged_through;
        self.send_cmd(w, WriteCmd::Part { batch, events, acked_through })
    }

    fn send_cmd(&mut self, w: usize, command: WriteCmd) -> Result<(), String> {
        let Some(proc) = self.workers[w].proc.as_mut() else {
            return Err("no live process".to_owned());
        };
        let Some(tx) = proc.writer_tx.as_ref() else {
            return Err("no live writer thread".to_owned());
        };
        tx.send(command).map_err(|_| "pipe write failed: writer thread exited".to_owned())
    }

    fn recv(&mut self, w: usize, timeout: Duration) -> Received {
        let Some(proc) = self.workers[w].proc.as_ref() else {
            return Received::Dead("no live process".to_owned());
        };
        match proc.rx.recv_timeout(timeout) {
            Ok(frame) => Self::frame_to_received(frame),
            Err(RecvTimeoutError::Disconnected) => Received::Dead("pipe closed".to_owned()),
            Err(RecvTimeoutError::Timeout) => Received::TimedOut,
        }
    }

    fn frame_to_received(frame: Vec<u8>) -> Received {
        match Message::decode(&frame) {
            Ok(Message::Fatal { code, message }) => {
                Received::Dead(format!("worker reported fatal error (code {code}): {message}"))
            }
            Ok(message) => Received::Msg(message),
            Err(error) => Received::Dead(format!("undecodable frame from worker: {error}")),
        }
    }

    /// Kills (idempotently) and reaps the slot's process, returning its
    /// exit code if it had one. The kill also breaks the pipe under a
    /// writer blocked mid-write, so the join cannot hang.
    fn reap(&mut self, w: usize) -> Option<i32> {
        let mut proc = self.workers[w].proc.take()?;
        drop(proc.writer_tx.take());
        let _ = proc.child.kill();
        if let Some(writer) = proc.writer.take() {
            let _ = writer.join();
        }
        match proc.child.wait() {
            Ok(status) => status.code(),
            Err(_) => None,
        }
    }

    /// Classifies a death by exit code, then restarts (or gives up).
    fn handle_death(&mut self, w: usize, cause: String) -> Result<(), DistribError> {
        if let Some(code) = self.reap(w) {
            if exit::is_terminal(code) {
                return Err(DistribError::WorkerTerminal { worker: w, code, detail: cause });
            }
        }
        self.restart_loop(w, Some(cause))
    }

    /// Brings a slot up (initially or after a death), with backoff between
    /// attempts. `cause: None` means initial launch — no backoff before the
    /// first attempt and no recovery record on success.
    fn restart_loop(&mut self, w: usize, cause: Option<String>) -> Result<(), DistribError> {
        let detected = Instant::now();
        let is_recovery = cause.is_some();
        let mut last = cause.clone().unwrap_or_else(|| "launch".to_owned());
        loop {
            let attempt = self.workers[w].consecutive_restarts;
            if attempt >= self.config.restart.max_restarts {
                return Err(DistribError::RestartsExhausted { worker: w, attempts: attempt, last });
            }
            if is_recovery || attempt > 0 {
                let delay = self.config.restart.delay_for(attempt, w, self.workers[w].spawn_count);
                thread::sleep(delay);
            }
            self.workers[w].consecutive_restarts = attempt + 1;
            match self.bring_up(w) {
                Ok((resumed_from, fell_back)) => {
                    if is_recovery {
                        self.stats.recoveries.push(Recovery {
                            worker: w,
                            incarnation: self.workers[w].spawn_count - 1,
                            cause: cause.clone().unwrap_or_default(),
                            latency: detected.elapsed(),
                            resumed_from_batch: resumed_from,
                            fell_back,
                        });
                    }
                    return Ok(());
                }
                Err(BringUp::Terminal(error)) => return Err(error),
                Err(BringUp::Retry(detail)) => {
                    self.reap(w);
                    last = detail;
                }
            }
        }
    }

    /// One attempt to (re)spawn a slot: load the newest valid checkpoint,
    /// spawn, init with the resume snapshot, wait for ready, re-register
    /// owned profiles, redeliver missing imports, replay the unacked
    /// suffix. Returns the coverage resumed from and whether the load fell
    /// back a generation.
    fn bring_up(&mut self, w: usize) -> Result<(u64, bool), BringUp> {
        self.reap(w);
        let (loaded, warnings) = self.workers[w]
            .store
            .load_latest(|bytes| decode_checkpoint(bytes).map(|_| ()).map_err(|e| e.to_string()));
        self.stats.checkpoint_warnings.extend(warnings.iter().map(ToString::to_string));
        let (resume, coverage, imports, fell_back) = match loaded {
            Some((bytes, generation)) => {
                let file = decode_checkpoint(&bytes).expect("validated by load_latest");
                if file.worker_index != w as u32 {
                    return Err(BringUp::Terminal(DistribError::CheckpointUnrecoverable {
                        worker: w,
                        detail: format!(
                            "checkpoint at `{}` belongs to worker {}",
                            self.workers[w].store.path().display(),
                            file.worker_index
                        ),
                    }));
                }
                (
                    Some(file.snapshot),
                    file.through_batch,
                    file.imports,
                    generation == Generation::Previous,
                )
            }
            None => (None, 0, 0, false),
        };
        // The retained suffix only reaches back past the previous
        // checkpoint generation; an older (or missing) resume point would
        // silently lose the gap.
        if coverage < self.workers[w].prev_coverage || imports < self.workers[w].prev_imports {
            return Err(BringUp::Terminal(DistribError::CheckpointUnrecoverable {
                worker: w,
                detail: format!(
                    "best checkpoint covers through batch {coverage} ({imports} imports) but \
                     replay data only reaches back to batch {} ({} imports) — both checkpoint \
                     generations lost",
                    self.workers[w].prev_coverage, self.workers[w].prev_imports
                ),
            }));
        }

        let incarnation = self.workers[w].spawn_count;
        let mut command = Command::new(&self.config.worker_program);
        command
            .args(&self.config.worker_args)
            .args(self.config.fault_plan.worker_args(w, incarnation))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child =
            command.spawn().map_err(|error| BringUp::Retry(format!("spawn failed: {error}")))?;
        self.workers[w].spawn_count += 1;
        self.workers[w].acks_since_spawn = 0;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = channel();
        thread::spawn(move || {
            let mut reader = std::io::BufReader::new(stdout);
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                if tx.send(frame).is_err() {
                    return;
                }
            }
            // EOF or read error: dropping the sender surfaces it as a
            // disconnected channel on the supervisor side.
        });
        let (writer_tx, writer_rx) = sync_channel(self.config.writer_queue);
        let (max_frame_events, linger) = (self.config.max_frame_events, self.config.linger);
        let writer = thread::spawn(move || {
            writer_loop(&writer_rx, stdin, max_frame_events, linger);
        });
        self.workers[w].proc =
            Some(WorkerProc { child, writer_tx: Some(writer_tx), writer: Some(writer), rx });
        self.workers[w].coverage = coverage;
        self.workers[w].imports_cov = imports;
        self.workers[w].inflight.clear();
        self.workers[w].ckpts_pending = 0;

        let owned = self.owned_shards(w);
        let init = Message::Init {
            worker_index: w as u32,
            owned_shards: owned.clone(),
            model_psm: self.model_psm.clone(),
            fingerprint: self.fingerprint,
            checkpoint_path: Some(self.workers[w].store.path().display().to_string()),
            resume,
            resume_through_batch: coverage,
            resume_imports: imports,
        };
        self.send_raw(w, &init).map_err(BringUp::Retry)?;
        match self.recv(w, self.config.startup_timeout) {
            Received::Msg(Message::Ready { fingerprint, .. }) => {
                if fingerprint != self.fingerprint {
                    return Err(BringUp::Terminal(DistribError::Protocol {
                        worker: w,
                        detail: format!(
                            "worker reported fingerprint {fingerprint:#018x}, supervisor has \
                             {:#018x}",
                            self.fingerprint
                        ),
                    }));
                }
            }
            Received::Msg(other) => {
                return Err(BringUp::Terminal(DistribError::Protocol {
                    worker: w,
                    detail: format!("expected Ready, got {other:?}"),
                }))
            }
            Received::Dead(cause) => {
                if let Some(code) = self.reap(w) {
                    if exit::is_terminal(code) {
                        return Err(BringUp::Terminal(DistribError::WorkerTerminal {
                            worker: w,
                            code,
                            detail: cause,
                        }));
                    }
                }
                return Err(BringUp::Retry(format!("died before ready: {cause}")));
            }
            Received::TimedOut => return Err(BringUp::Retry("startup timed out".to_owned())),
        }

        // Re-register every profile of the owned shards (idempotent
        // worker-side; users already in the snapshot are skipped). A user's
        // registration always precedes their first event in the original
        // stream, so registering before replay preserves causal order.
        for &shard in &owned {
            for profile in self.registry[shard as usize].clone() {
                self.send_raw(w, &Message::Register { profile }).map_err(BringUp::Retry)?;
            }
        }
        // Redeliver exactly the handoff imports the snapshot is missing.
        let missing: Vec<Vec<u8>> = self.workers[w]
            .pending_imports
            .iter()
            .filter(|(ordinal, _)| *ordinal > imports)
            .map(|(_, blob)| blob.clone())
            .collect();
        for blob in missing {
            self.send_raw(w, &Message::ImportShards { snapshot: blob }).map_err(BringUp::Retry)?;
            match self.recv(w, self.config.control_timeout) {
                Received::Msg(Message::Imported { .. }) => {}
                Received::Msg(other) => {
                    return Err(BringUp::Terminal(DistribError::Protocol {
                        worker: w,
                        detail: format!("expected Imported during resume, got {other:?}"),
                    }))
                }
                Received::Dead(cause) => {
                    return Err(BringUp::Retry(format!("died during import redelivery: {cause}")))
                }
                Received::TimedOut => {
                    return Err(BringUp::Retry("import redelivery timed out".to_owned()))
                }
            }
        }
        // Replay the unacked suffix: every retained sub-batch newer than
        // the resumed coverage, in order. Acks stream back asynchronously
        // and are matched through the rebuilt inflight queue.
        let replay: Vec<(u64, Vec<(u32, Event)>)> =
            self.workers[w].retained.iter().filter(|(id, _)| *id > coverage).cloned().collect();
        for (id, part) in replay {
            let count = part.len() as u32;
            self.send_part(w, id, part).map_err(BringUp::Retry)?;
            self.workers[w].inflight.push_back((id, count));
        }
        Ok((coverage, fell_back))
    }

    fn owned_shards(&self, w: usize) -> Vec<u32> {
        (0..SHARD_COUNT as u32).filter(|&s| self.routing[s as usize] == w).collect()
    }

    // ------------------------------------------------------------------
    // Acks, assembly, emission.

    /// Applies one cumulative [`Message::AckThrough`]: pops the inflight
    /// prefix up to `through`, recording each popped batch's alerts from the
    /// repeated buffer the worker sent.
    ///
    /// A *swallowed* ack needs no recovery here: the batches it covered
    /// simply stay in flight, and the worker's next reply — which repeats
    /// every unconfirmed alert — confirms them. Only silence past the
    /// (grace-scaled) ack deadline kills the lane.
    fn on_ack_through(
        &mut self,
        w: usize,
        through: u64,
        alerts: Vec<(u64, u32, Alert)>,
    ) -> Result<(), DistribError> {
        match self.workers[w].inflight.back().copied() {
            Some((newest, _)) if through > newest => {
                return Err(DistribError::Protocol {
                    worker: w,
                    detail: format!(
                        "acked through batch {through} but the newest in flight is {newest}"
                    ),
                });
            }
            None if through > self.workers[w].merged_through => {
                return Err(DistribError::Protocol {
                    worker: w,
                    detail: format!("acked through batch {through} with nothing in flight"),
                });
            }
            _ => {}
        }
        let mut by_batch: BTreeMap<u64, Vec<(u32, Alert)>> = BTreeMap::new();
        for (batch, position, alert) in alerts {
            by_batch.entry(batch).or_default().push((position, alert));
        }
        while let Some(&(oldest, _)) = self.workers[w].inflight.front() {
            if oldest > through {
                break;
            }
            self.workers[w].inflight.pop_front();
            // Progress, but only *sustained* progress forgives past
            // restarts: resetting the budget on the first ack would let a
            // worker that delivers one batch per incarnation crash-loop
            // forever.
            self.workers[w].acks_since_spawn = self.workers[w].acks_since_spawn.saturating_add(1);
            if oldest >= self.next_emit {
                let Some(pending) = self.assembly.get_mut(&oldest) else {
                    return Err(DistribError::Protocol {
                        worker: w,
                        detail: format!("acked unknown batch {oldest}"),
                    });
                };
                pending.got.insert(w, by_batch.remove(&oldest).unwrap_or_default());
            }
            // else: a replayed ack for an already-emitted batch — dropped,
            // the alerts were delivered before the worker died. Alerts left
            // in `by_batch` belong to batches confirmed on an earlier reply
            // (the worker repeats them until it sees our acked_through) and
            // are equally ignorable.
        }
        if self.workers[w].acks_since_spawn >= self.config.restart.reset_after_acks {
            self.workers[w].consecutive_restarts = 0;
        }
        self.workers[w].merged_through = self.workers[w].merged_through.max(through);
        self.drain_ready();
        Ok(())
    }

    fn drain_ready(&mut self) {
        while let Some(pending) = self.assembly.get(&self.next_emit) {
            if pending.got.len() < pending.expected {
                break;
            }
            let pending = self.assembly.remove(&self.next_emit).expect("present");
            let mut merged: Vec<(u32, Alert)> = pending.got.into_values().flatten().collect();
            // Positions are unique per event and all alerts of one event
            // come from one worker in raise order; the stable sort restores
            // exactly the in-process emission order.
            merged.sort_by_key(|&(position, _)| position);
            self.stats.alerts += merged.len() as u64;
            self.emitted.extend(merged.into_iter().map(|(_, alert)| alert));
            self.next_emit += 1;
        }
    }

    /// Drains without blocking: everything a worker has already acked.
    fn pump(&mut self, w: usize) -> Result<(), DistribError> {
        loop {
            let Some(proc) = self.workers[w].proc.as_ref() else { return Ok(()) };
            match proc.rx.try_recv() {
                Ok(frame) => match Self::frame_to_received(frame) {
                    Received::Msg(Message::AckThrough { through, alerts }) => {
                        self.on_ack_through(w, through, alerts)?;
                    }
                    Received::Msg(Message::CheckpointDone { through_batch, imports })
                        if self.workers[w].ckpts_pending > 0 =>
                    {
                        self.workers[w].ckpts_pending -= 1;
                        self.complete_checkpoint(w, through_batch, imports)?;
                    }
                    Received::Msg(other) => {
                        return Err(DistribError::Protocol {
                            worker: w,
                            detail: format!("unsolicited message: {other:?}"),
                        })
                    }
                    Received::Dead(cause) => self.handle_death(w, cause)?,
                    Received::TimedOut => unreachable!("try_recv cannot time out"),
                },
                Err(TryRecvError::Empty) => return Ok(()),
                Err(TryRecvError::Disconnected) => {
                    self.handle_death(w, "pipe closed".to_owned())?;
                }
            }
        }
    }

    /// The ack deadline for worker `w` right now: the base timeout plus the
    /// per-event grace for everything legitimately in flight, so a heavy
    /// model chewing through a large batch is not mistaken for a stall.
    fn effective_ack_timeout(&self, w: usize) -> Duration {
        let events: u64 = self.workers[w].inflight.iter().map(|&(_, count)| u64::from(count)).sum();
        let grace = self
            .config
            .ack_grace_per_event
            .saturating_mul(u32::try_from(events).unwrap_or(u32::MAX));
        self.config.ack_timeout.saturating_add(grace)
    }

    /// Blocks until the in-flight queue of `w` shrinks (reviving the worker
    /// as needed). One cumulative ack may confirm several batches.
    fn await_one_ack(&mut self, w: usize) -> Result<(), DistribError> {
        // Anything still coalescing must reach the wire, or the acks this
        // wait needs might never be produced within a long linger.
        if let Err(cause) = self.send_cmd(w, WriteCmd::Flush) {
            self.handle_death(w, cause)?;
        }
        loop {
            let depth = self.workers[w].inflight.len();
            if depth == 0 {
                return Ok(());
            }
            let deadline = self.effective_ack_timeout(w);
            match self.recv(w, deadline) {
                Received::Msg(Message::AckThrough { through, alerts }) => {
                    self.on_ack_through(w, through, alerts)?;
                    if self.workers[w].inflight.len() < depth {
                        return Ok(());
                    }
                }
                Received::Msg(Message::CheckpointDone { through_batch, imports })
                    if self.workers[w].ckpts_pending > 0 =>
                {
                    self.workers[w].ckpts_pending -= 1;
                    self.complete_checkpoint(w, through_batch, imports)?;
                }
                Received::Msg(other) => {
                    return Err(DistribError::Protocol {
                        worker: w,
                        detail: format!("expected AckThrough, got {other:?}"),
                    })
                }
                Received::Dead(cause) => self.handle_death(w, cause)?,
                Received::TimedOut => {
                    let cause = format!("no ack within {deadline:?} (stalled or wedged)");
                    self.handle_death(w, cause)?;
                }
            }
        }
    }

    /// Drains the lane completely: every in-flight sub-batch acked *and*
    /// every outstanding asynchronous checkpoint completed, so a control
    /// exchange (export, import, synchronous checkpoint, shutdown) sees
    /// only its own reply next on the pipe.
    fn flush_worker(&mut self, w: usize) -> Result<(), DistribError> {
        loop {
            while !self.workers[w].inflight.is_empty() {
                self.await_one_ack(w)?;
            }
            if self.workers[w].ckpts_pending == 0 {
                return Ok(());
            }
            match self.recv(w, self.config.control_timeout) {
                Received::Msg(Message::CheckpointDone { through_batch, imports }) => {
                    self.workers[w].ckpts_pending -= 1;
                    self.complete_checkpoint(w, through_batch, imports)?;
                }
                Received::Msg(Message::AckThrough { through, alerts }) => {
                    self.on_ack_through(w, through, alerts)?;
                }
                Received::Msg(other) => {
                    return Err(DistribError::Protocol {
                        worker: w,
                        detail: format!("expected CheckpointDone, got {other:?}"),
                    })
                }
                // A death resets `ckpts_pending` (via bring_up) and replays
                // the retained suffix, refilling `inflight` — the outer loop
                // re-drains both.
                Received::Dead(cause) => self.handle_death(w, cause)?,
                Received::TimedOut => self.handle_death(w, "checkpoint timed out".to_owned())?,
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpointing.

    /// The periodic checkpoint path: send [`Message::Checkpoint`] and **do
    /// not wait** — neither for the lane's in-flight acks nor for the
    /// reply, which is collected opportunistically by [`pump`](Self::pump)
    /// or the next ack wait. No pre-drain is needed for the coverage
    /// invariant: the Checkpoint frame is FIFO-ordered behind every part
    /// already on the lane, and the worker's `AckThrough` for those parts
    /// is written before its `CheckpointDone`, so the supervisor — which
    /// processes the reply pipe in order — has always merged what the file
    /// covers by the time it sees the `Done`. (The one way that breaks is a
    /// *swallowed* ack; [`complete_checkpoint`](Self::complete_checkpoint)
    /// detects exactly that case and demotes the outrun checkpoint.) While
    /// one worker encodes and fsyncs its snapshot, the supervisor keeps
    /// routing and the other workers keep evaluating: on a durable duty
    /// cycle this overlap is where the fleet beats an in-process monitor
    /// that must pay every fsync inline.
    fn checkpoint_async(&mut self, batch: u64) -> Result<(), DistribError> {
        let every = self.config.checkpoint_every;
        let fleet = self.workers.len() as u64;
        for w in 0..self.workers.len() {
            // Stagger each worker's cadence by `w/W` of the interval: every
            // worker still checkpoints once per `checkpoint_every` batches
            // (the same recovery-point objective a broadcast gives), but the
            // fsyncs spread across the interval instead of all contending
            // for the disk at the same instant.
            let phase = (w as u64 * every) / fleet % every;
            if batch % every != phase {
                continue;
            }
            if let Err(cause) = self.send_raw(w, &Message::Checkpoint) {
                self.handle_death(w, cause)?;
                // The replacement resumed from its last good checkpoint;
                // take a fresh one synchronously so the cadence holds.
                self.checkpoint_worker(w)?;
                continue;
            }
            self.workers[w].ckpts_pending += 1;
        }
        Ok(())
    }

    fn checkpoint_worker(&mut self, w: usize) -> Result<(), DistribError> {
        loop {
            self.flush_worker(w)?;
            if let Err(cause) = self.send_raw(w, &Message::Checkpoint) {
                self.handle_death(w, cause)?;
                continue;
            }
            match self.recv(w, self.config.control_timeout) {
                Received::Msg(Message::CheckpointDone { through_batch, imports }) => {
                    self.complete_checkpoint(w, through_batch, imports)?;
                    return Ok(());
                }
                Received::Msg(other) => {
                    return Err(DistribError::Protocol {
                        worker: w,
                        detail: format!("expected CheckpointDone, got {other:?}"),
                    })
                }
                Received::Dead(cause) => self.handle_death(w, cause)?,
                Received::TimedOut => self.handle_death(w, "checkpoint timed out".to_owned())?,
            }
        }
    }

    /// Bookkeeping after a worker reported [`Message::CheckpointDone`]:
    /// outrun detection, fault injection, read-back validation, coverage
    /// advance, and pruning of the retained suffix and pending imports.
    ///
    /// # Errors
    ///
    /// Propagates restart failures from the outrun-recovery path.
    fn complete_checkpoint(
        &mut self,
        w: usize,
        through_batch: u64,
        imports: u64,
    ) -> Result<(), DistribError> {
        // The durability invariant: a checkpoint's coverage must never
        // outrun the merged stream, or a later resume would skip replaying
        // batches whose alerts were never delivered. The worker writes its
        // `AckThrough` for every covered part before the `CheckpointDone`
        // on the same pipe, and this supervisor processes that pipe in
        // order — so coverage can only outrun the merge when an ack was
        // *swallowed*. Recover exactly as an ack timeout would, but
        // immediately: demote the outrun file (the previous generation is
        // consistent with the retained suffix) and restart the lane, which
        // replays — and therefore re-acks — everything unmerged.
        if through_batch > self.workers[w].merged_through {
            self.stats.checkpoint_warnings.push(format!(
                "worker {w}: checkpoint covering batch {through_batch} outran the merged stream \
                 (acked through {}); demoting it and replaying the unacked suffix",
                self.workers[w].merged_through
            ));
            let _ = std::fs::remove_file(self.workers[w].store.path());
            self.handle_death(
                w,
                format!(
                    "no ack for batches {}..={through_batch} although a checkpoint covers them \
                     (ack frame lost)",
                    self.workers[w].merged_through + 1
                ),
            )?;
            return Ok(());
        }
        self.stats.checkpoints += 1;
        self.workers[w].ckpt_ordinal += 1;
        let ordinal = self.workers[w].ckpt_ordinal;
        if self.config.fault_plan.corrupts_checkpoint(w, ordinal) {
            self.corrupt_checkpoint_file(w);
        }
        // Read back what actually landed on disk before trusting it. A
        // checkpoint that cannot be decoded must not advance coverage or
        // prune the retained suffix: pruning against an unreadable file is
        // how *both* generations end up undecodable with the replay data
        // already gone.
        let readable = std::fs::read(self.workers[w].store.path())
            .ok()
            .is_some_and(|bytes| decode_checkpoint(&bytes).is_ok());
        if !readable {
            self.stats.checkpoint_warnings.push(format!(
                "worker {w}: checkpoint {ordinal} failed read-back validation at `{}`; keeping \
                 previous coverage and full replay suffix",
                self.workers[w].store.path().display()
            ));
            return Ok(());
        }
        let slot = &mut self.workers[w];
        slot.prev_coverage = slot.coverage;
        slot.prev_imports = slot.imports_cov;
        slot.coverage = through_batch;
        slot.imports_cov = imports;
        let keep_batches_after = slot.prev_coverage;
        slot.retained.retain(|(id, _)| *id > keep_batches_after);
        let keep_imports_after = slot.prev_imports;
        slot.pending_imports.retain(|(ordinal, _)| *ordinal > keep_imports_after);
        Ok(())
    }

    /// The supervisor half of [`Fault::CorruptCheckpoint`](crate::fault::Fault):
    /// flip a byte in the middle of the freshly written checkpoint file.
    fn corrupt_checkpoint_file(&mut self, w: usize) {
        let path = self.workers[w].store.path().to_path_buf();
        if let Ok(mut bytes) = std::fs::read(&path) {
            if !bytes.is_empty() {
                let middle = bytes.len() / 2;
                bytes[middle] ^= 0xFF;
                if std::fs::write(&path, bytes).is_ok() {
                    self.stats.corruptions_injected += 1;
                }
            }
        }
    }
}

impl Drop for DistributedMonitor {
    fn drop(&mut self) {
        for slot in &mut self.workers {
            if let Some(mut proc) = slot.proc.take() {
                drop(proc.writer_tx.take());
                let _ = proc.child.kill();
                if let Some(writer) = proc.writer.take() {
                    let _ = writer.join();
                }
                let _ = proc.child.wait();
            }
        }
    }
}
