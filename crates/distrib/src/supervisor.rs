//! The supervisor: [`DistributedMonitor`], a fault-tolerant router over
//! shard-owning worker processes.
//!
//! # Topology and determinism
//!
//! Every event is routed by `shard_of_user` to the worker that owns that
//! shard (shards are assigned as contiguous ranges at launch and can be
//! moved live with [`DistributedMonitor::rebalance_shard`]). Each submitted
//! super-batch is split into per-worker sub-batches whose events keep their
//! **position** in the super-batch; workers ack each sub-batch with
//! position-tagged alerts, and the supervisor reassembles super-batches in
//! order, sorting each one's merged alerts by position. Because a user's
//! events always flow through one owner in stream order, the merged stream
//! is identical to the in-process
//! [`IndexedMonitor::ingest_batch`](privacy_runtime::IndexedMonitor)
//! ordering — and stays identical under every fault the harness can inject,
//! which is what `tests/fault_differential.rs` asserts.
//!
//! # Backpressure
//!
//! At most `window` sub-batches may be in flight per worker; submitting
//! more blocks on that worker's acks. The queue to a worker is therefore
//! bounded end to end — the pipe holds at most `window` sub-batches — and a
//! stalled worker stalls its *own* lane, then (via the ack timeout) gets
//! killed and restarted rather than wedging the fleet forever.
//!
//! # Failure model
//!
//! Worker death is detected as pipe EOF, an undecodable frame, a
//! [`Fatal`](Message::Fatal) report, or an ack/checkpoint timeout. Terminal
//! exit codes (see [`crate::exit`]) abort the run with a typed error;
//! anything else triggers supervised restart with exponential backoff and a
//! deterministic jitter, capped by [`RestartPolicy`]. A replacement resumes
//! from the newest *valid* checkpoint generation (falling back past a
//! corrupt one with a recorded warning), gets its owned profiles
//! re-registered and any missing shard-handoff imports redelivered, and
//! replays exactly the retained suffix of sub-batches newer than the
//! checkpoint. Re-acked batches that were already emitted are recognised by
//! id and dropped, so replay never duplicates an alert downstream.

use crate::checkpoint::{CheckpointStore, Generation};
use crate::exit;
use crate::fault::FaultPlan;
use crate::wire::{decode_checkpoint, Message};
use privacy_core::PrivacySystem;
use privacy_interchange::{read_frame, render_system, write_frame};
use privacy_model::UserProfile;
use privacy_runtime::{shard_of_user, Alert, Event, SHARD_COUNT};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::BufWriter;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, TryRecvError};
use std::thread;
use std::time::{Duration, Instant};

/// When and how often a dead worker is restarted.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Delay before the first restart attempt; doubles per attempt.
    pub base_delay: Duration,
    /// Upper bound on any single backoff delay (the jitter cap).
    pub max_delay: Duration,
    /// Restarts allowed without intervening progress before the supervisor
    /// gives up with a typed error.
    pub max_restarts: u32,
    /// Acked batches a fresh incarnation must deliver before the restart
    /// budget resets. One ack is not progress: a worker that limps through
    /// a single batch per incarnation and then dies would otherwise crash-
    /// loop forever inside a perpetually-renewed budget. Only *sustained*
    /// health — this many acks from one incarnation — forgives its past.
    pub reset_after_acks: u32,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        Self {
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            max_restarts: 5,
            reset_after_acks: 3,
        }
    }
}

impl RestartPolicy {
    /// Exponential backoff with a deterministic per-(worker, spawn) jitter,
    /// capped at `max_delay`. Deterministic jitter keeps runs reproducible
    /// while still de-synchronising workers that died together.
    fn delay_for(&self, attempt: u32, worker: usize, spawn_count: u32) -> Duration {
        let doubled = self.base_delay.saturating_mul(1u32 << attempt.min(10));
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for word in [worker as u64, u64::from(spawn_count)] {
            hash ^= word;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let jitter = self.base_delay.saturating_mul((hash % 1000) as u32) / 2000;
        doubled.saturating_add(jitter).min(self.max_delay)
    }
}

/// Configuration for a [`DistributedMonitor`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The worker executable (the `privacy-shardd` binary).
    pub worker_program: PathBuf,
    /// Extra arguments passed to every worker before any fault switches.
    pub worker_args: Vec<String>,
    /// Number of worker processes (1 ..= [`SHARD_COUNT`]).
    pub workers: usize,
    /// Maximum sub-batches in flight per worker before submits block.
    pub window: usize,
    /// Checkpoint all workers every N super-batches (0 = only on demand).
    pub checkpoint_every: u64,
    /// Directory for the per-worker checkpoint files.
    pub checkpoint_dir: PathBuf,
    /// How long to wait for an ack before declaring a worker stalled.
    pub ack_timeout: Duration,
    /// How long to wait for a checkpoint/export/import reply.
    pub control_timeout: Duration,
    /// How long a fresh worker may take to parse the model, rebuild the
    /// index and report [`Ready`](Message::Ready).
    pub startup_timeout: Duration,
    /// Restart backoff policy.
    pub restart: RestartPolicy,
    /// Failure-injection schedule (empty in production).
    pub fault_plan: FaultPlan,
}

impl SupervisorConfig {
    /// A config with sensible defaults for the given worker executable and
    /// checkpoint directory.
    #[must_use]
    pub fn new(worker_program: impl Into<PathBuf>, checkpoint_dir: impl Into<PathBuf>) -> Self {
        Self {
            worker_program: worker_program.into(),
            worker_args: Vec::new(),
            workers: 2,
            window: 4,
            checkpoint_every: 0,
            checkpoint_dir: checkpoint_dir.into(),
            ack_timeout: Duration::from_secs(10),
            control_timeout: Duration::from_secs(60),
            startup_timeout: Duration::from_secs(120),
            restart: RestartPolicy::default(),
            fault_plan: FaultPlan::none(),
        }
    }
}

/// One supervised restart, as recorded in [`DistribStats`].
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The worker slot that was restarted.
    pub worker: usize,
    /// The incarnation that replaced the dead one.
    pub incarnation: u32,
    /// Why the old incarnation was declared dead.
    pub cause: String,
    /// Wall-clock time from death detection to the replacement being caught
    /// up (resumed, re-registered, suffix replayed).
    pub latency: Duration,
    /// The super-batch the resumed checkpoint covered through.
    pub resumed_from_batch: u64,
    /// Whether the resume had to fall back to the `.prev` generation.
    pub fell_back: bool,
}

/// Counters and records describing a supervised run.
#[derive(Debug, Clone, Default)]
pub struct DistribStats {
    /// Super-batches submitted.
    pub batches: u64,
    /// Events submitted.
    pub events: u64,
    /// Alerts emitted in the merged stream.
    pub alerts: u64,
    /// Checkpoints completed across all workers.
    pub checkpoints: u64,
    /// Live shard handoffs completed.
    pub handoffs: u64,
    /// Checkpoint generations the loader had to skip (with causes).
    pub checkpoint_warnings: Vec<String>,
    /// Checkpoint files corrupted on purpose by the fault plan.
    pub corruptions_injected: u64,
    /// Every supervised restart, in order.
    pub recoveries: Vec<Recovery>,
}

/// A typed supervisor failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum DistribError {
    /// The configuration cannot describe a runnable fleet.
    Config {
        /// What is wrong with it.
        detail: String,
    },
    /// A worker died with an exit code restarting cannot fix.
    WorkerTerminal {
        /// The worker slot.
        worker: usize,
        /// Its exit code (see [`crate::exit`]).
        code: i32,
        /// The death cause as detected.
        detail: String,
    },
    /// A worker kept dying without making progress.
    RestartsExhausted {
        /// The worker slot.
        worker: usize,
        /// How many restarts were attempted.
        attempts: u32,
        /// The last failure.
        last: String,
    },
    /// A worker (or its pipe) broke the protocol in a way that is not a
    /// death: an ack for the wrong batch, an unexpected message kind.
    Protocol {
        /// The worker slot.
        worker: usize,
        /// What it did.
        detail: String,
    },
    /// No checkpoint generation covers the replay window: the retained
    /// suffix starts after the best available checkpoint ends, so state
    /// would be silently lost. (Reachable only when both generations are
    /// corrupt or deleted.)
    CheckpointUnrecoverable {
        /// The worker slot.
        worker: usize,
        /// What is missing.
        detail: String,
    },
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::Config { detail } => write!(f, "bad supervisor config: {detail}"),
            DistribError::WorkerTerminal { worker, code, detail } => write!(
                f,
                "worker {worker} died with terminal exit code {code} ({}): {detail}",
                exit::describe(*code)
            ),
            DistribError::RestartsExhausted { worker, attempts, last } => write!(
                f,
                "worker {worker} kept dying: gave up after {attempts} restarts (last: {last})"
            ),
            DistribError::Protocol { worker, detail } => {
                write!(f, "worker {worker} broke the protocol: {detail}")
            }
            DistribError::CheckpointUnrecoverable { worker, detail } => {
                write!(f, "worker {worker} cannot be recovered: {detail}")
            }
        }
    }
}

impl std::error::Error for DistribError {}

/// A live worker process: the child, its buffered stdin, and the channel
/// its reader thread feeds with stdout frames. The thread exits (dropping
/// its sender) on EOF or any read error, so death always surfaces as a
/// disconnected channel.
struct WorkerProc {
    child: Child,
    stdin: BufWriter<ChildStdin>,
    rx: Receiver<Vec<u8>>,
}

/// Everything the supervisor tracks per worker slot, surviving restarts.
struct WorkerSlot {
    proc: Option<WorkerProc>,
    /// How many processes have ever been spawned into this slot; the
    /// current incarnation is `spawn_count - 1`.
    spawn_count: u32,
    /// Restarts since the last *sustained* progress (see
    /// [`RestartPolicy::reset_after_acks`]).
    consecutive_restarts: u32,
    /// Batches acked by the current incarnation, for the sustained-progress
    /// test. Zeroed on every spawn.
    acks_since_spawn: u32,
    /// Sub-batch ids sent but not yet acked, in send order.
    inflight: VecDeque<u64>,
    /// Sub-batches newer than the previous checkpoint generation, kept for
    /// suffix replay. Two generations are retained so a fallback to the
    /// `.prev` checkpoint still has its whole suffix.
    retained: VecDeque<(u64, Vec<(u32, Event)>)>,
    /// Super-batch coverage of the live / previous checkpoint generation.
    coverage: u64,
    prev_coverage: u64,
    /// Import count recorded by the live / previous checkpoint generation.
    imports_cov: u64,
    prev_imports: u64,
    /// Total imports delivered to this slot (the ordinal source).
    import_ordinal: u64,
    /// Handoff imports not yet covered by two checkpoint generations, as
    /// `(ordinal, snapshot frame)`.
    pending_imports: Vec<(u64, Vec<u8>)>,
    /// Successful checkpoints, for the corrupt-checkpoint fault schedule.
    ckpt_ordinal: u64,
    store: CheckpointStore,
}

/// A super-batch being reassembled from per-worker acks.
struct PendingBatch {
    expected: usize,
    got: BTreeMap<usize, Vec<(u32, Alert)>>,
}

enum Received {
    Msg(Message),
    Dead(String),
    TimedOut,
}

enum BringUp {
    Retry(String),
    Terminal(DistribError),
}

/// The supervisor over a fleet of `privacy-shardd` workers. See the module
/// docs for the topology, backpressure and failure model.
pub struct DistributedMonitor {
    config: SupervisorConfig,
    model_psm: String,
    fingerprint: u64,
    /// shard → owning worker slot.
    routing: Vec<usize>,
    /// shard → profiles registered there, in registration order (replayed
    /// to every new incarnation; registration is idempotent worker-side).
    registry: Vec<Vec<UserProfile>>,
    workers: Vec<WorkerSlot>,
    next_batch: u64,
    next_emit: u64,
    assembly: BTreeMap<u64, PendingBatch>,
    emitted: Vec<Alert>,
    stats: DistribStats,
}

impl fmt::Debug for DistributedMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistributedMonitor")
            .field("workers", &self.workers.len())
            .field("next_batch", &self.next_batch)
            .field("next_emit", &self.next_emit)
            .finish_non_exhaustive()
    }
}

impl DistributedMonitor {
    /// Renders the system to `.psm`, spawns the fleet, and waits for every
    /// worker to report ready with a matching index fingerprint.
    ///
    /// `fingerprint` is the design-time [`LtsIndex`](privacy_lts::LtsIndex)
    /// fingerprint the supervisor's own pipeline computed; every worker
    /// must reproduce it from the shipped model.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::Config`] for an unrunnable configuration and
    /// the relevant typed error when a worker cannot be brought up.
    pub fn launch(
        name: &str,
        system: &PrivacySystem,
        fingerprint: u64,
        config: SupervisorConfig,
    ) -> Result<Self, DistribError> {
        if config.workers == 0 || config.workers > SHARD_COUNT {
            return Err(DistribError::Config {
                detail: format!(
                    "worker count must be in 1..={SHARD_COUNT}, got {}",
                    config.workers
                ),
            });
        }
        if config.window == 0 {
            return Err(DistribError::Config { detail: "window must be at least 1".to_owned() });
        }
        let model_psm = render_system(name, system);
        let workers = config.workers;
        let routing: Vec<usize> = (0..SHARD_COUNT).map(|s| s * workers / SHARD_COUNT).collect();
        let slots = (0..workers)
            .map(|w| WorkerSlot {
                proc: None,
                spawn_count: 0,
                consecutive_restarts: 0,
                acks_since_spawn: 0,
                inflight: VecDeque::new(),
                retained: VecDeque::new(),
                coverage: 0,
                prev_coverage: 0,
                imports_cov: 0,
                prev_imports: 0,
                import_ordinal: 0,
                pending_imports: Vec::new(),
                ckpt_ordinal: 0,
                store: CheckpointStore::new(config.checkpoint_dir.join(format!("worker-{w}.ckpt"))),
            })
            .collect();
        let mut monitor = DistributedMonitor {
            config,
            model_psm,
            fingerprint,
            routing,
            registry: vec![Vec::new(); SHARD_COUNT],
            workers: slots,
            next_batch: 1,
            next_emit: 1,
            assembly: BTreeMap::new(),
            emitted: Vec::new(),
            stats: DistribStats::default(),
        };
        for w in 0..workers {
            monitor.restart_loop(w, None)?;
        }
        Ok(monitor)
    }

    /// The number of worker slots.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The worker slot currently owning a shard.
    #[must_use]
    pub fn owner_of_shard(&self, shard: u32) -> usize {
        self.routing[shard as usize]
    }

    /// The run statistics so far.
    #[must_use]
    pub fn stats(&self) -> &DistribStats {
        &self.stats
    }

    /// Registers a user with the owner of their shard. Idempotent: a
    /// profile with an already-registered id is ignored, mirroring the
    /// worker-side re-registration semantics.
    ///
    /// # Errors
    ///
    /// Propagates restart failures if the owner is dead and cannot be
    /// revived.
    pub fn register_user(&mut self, profile: &UserProfile) -> Result<(), DistribError> {
        let shard = shard_of_user(profile.id()) as usize;
        if self.registry[shard].iter().any(|p| p.id() == profile.id()) {
            return Ok(());
        }
        self.registry[shard].push(profile.clone());
        let w = self.routing[shard];
        let message = Message::Register { profile: profile.clone() };
        if let Err(cause) = self.send_raw(w, &message) {
            // The revived worker re-registers from the registry, which
            // already holds this profile.
            self.handle_death(w, cause)?;
        }
        Ok(())
    }

    /// Submits one super-batch: splits it across shard owners, applies
    /// backpressure, and returns every alert of super-batches completed so
    /// far, merged in deterministic batch/position order.
    ///
    /// # Errors
    ///
    /// Propagates typed supervisor failures; transient worker deaths are
    /// handled internally by restart and replay.
    pub fn submit_batch(&mut self, events: &[Event]) -> Result<Vec<Alert>, DistribError> {
        let id = self.next_batch;
        self.next_batch += 1;
        self.stats.batches += 1;
        self.stats.events += events.len() as u64;
        let mut parts: BTreeMap<usize, Vec<(u32, Event)>> = BTreeMap::new();
        for (position, event) in events.iter().enumerate() {
            let w = self.routing[shard_of_user(event.user()) as usize];
            parts.entry(w).or_default().push((position as u32, event.clone()));
        }
        self.assembly.insert(id, PendingBatch { expected: parts.len(), got: BTreeMap::new() });
        for (w, part) in parts {
            while self.workers[w].inflight.len() >= self.config.window {
                self.await_one_ack(w)?;
            }
            // Retain before sending: if the send fails, the restart path
            // replays the batch from the retained suffix.
            self.workers[w].retained.push_back((id, part.clone()));
            match self.send_raw(w, &Message::Ingest { batch: id, events: part }) {
                Ok(()) => self.workers[w].inflight.push_back(id),
                Err(cause) => self.handle_death(w, cause)?,
            }
        }
        for w in 0..self.workers.len() {
            self.pump(w)?;
        }
        self.drain_ready();
        if self.config.checkpoint_every > 0 && id.is_multiple_of(self.config.checkpoint_every) {
            self.checkpoint_now()?;
        }
        Ok(std::mem::take(&mut self.emitted))
    }

    /// Blocks until every in-flight sub-batch is acked and returns the
    /// remaining merged alerts.
    ///
    /// # Errors
    ///
    /// Propagates typed supervisor failures.
    pub fn flush(&mut self) -> Result<Vec<Alert>, DistribError> {
        for w in 0..self.workers.len() {
            self.flush_worker(w)?;
        }
        Ok(std::mem::take(&mut self.emitted))
    }

    /// Checkpoints every worker now (flushing their lanes first).
    ///
    /// # Errors
    ///
    /// Propagates typed supervisor failures.
    pub fn checkpoint_now(&mut self) -> Result<(), DistribError> {
        for w in 0..self.workers.len() {
            self.checkpoint_worker(w)?;
        }
        Ok(())
    }

    /// Moves a shard to a new owner live: flushes the fleet, exports the
    /// shard's state from the old owner, redirects routing, delivers the
    /// export to the new owner, and checkpoints both so the handoff is
    /// durable.
    ///
    /// # Errors
    ///
    /// Returns [`DistribError::Config`] for an unknown shard or worker and
    /// propagates typed supervisor failures; worker deaths during the
    /// handoff are recovered and the handoff retried internally.
    pub fn rebalance_shard(&mut self, shard: u32, to: usize) -> Result<(), DistribError> {
        if shard as usize >= SHARD_COUNT {
            return Err(DistribError::Config { detail: format!("shard {shard} does not exist") });
        }
        if to >= self.workers.len() {
            return Err(DistribError::Config { detail: format!("worker {to} does not exist") });
        }
        let from = self.routing[shard as usize];
        if from == to {
            return Ok(());
        }
        // A quiescent fleet: every batch before the handoff is acked and
        // emitted, so post-handoff replays of pre-handoff batches can only
        // produce already-emitted (and therefore dropped) acks.
        self.flush()?;
        let blob = loop {
            self.flush_worker(from)?;
            if let Err(cause) = self.send_raw(from, &Message::ExportShards { shards: vec![shard] })
            {
                self.handle_death(from, cause)?;
                continue;
            }
            match self.recv(from, self.config.control_timeout) {
                Received::Msg(Message::ShardExport { snapshot }) => break snapshot,
                Received::Msg(other) => {
                    return Err(DistribError::Protocol {
                        worker: from,
                        detail: format!("expected ShardExport, got {other:?}"),
                    })
                }
                Received::Dead(cause) => self.handle_death(from, cause)?,
                Received::TimedOut => self.handle_death(from, "shard export timed out".into())?,
            }
        };
        self.routing[shard as usize] = to;
        self.workers[to].import_ordinal += 1;
        let ordinal = self.workers[to].import_ordinal;
        self.workers[to].pending_imports.push((ordinal, blob.clone()));
        match self.send_raw(to, &Message::ImportShards { snapshot: blob }) {
            Ok(()) => match self.recv(to, self.config.control_timeout) {
                Received::Msg(Message::Imported { .. }) => {}
                Received::Msg(other) => {
                    return Err(DistribError::Protocol {
                        worker: to,
                        detail: format!("expected Imported, got {other:?}"),
                    })
                }
                // The restart path redelivers the pending import itself.
                Received::Dead(cause) => self.handle_death(to, cause)?,
                Received::TimedOut => self.handle_death(to, "shard import timed out".into())?,
            },
            Err(cause) => self.handle_death(to, cause)?,
        }
        // Make the handoff durable on both sides before declaring it done.
        self.checkpoint_worker(from)?;
        self.checkpoint_worker(to)?;
        self.stats.handoffs += 1;
        Ok(())
    }

    /// Flushes the fleet, asks every worker to exit, reaps the processes,
    /// and returns the remaining merged alerts plus the run statistics.
    ///
    /// # Errors
    ///
    /// Propagates typed supervisor failures from the final flush.
    pub fn shutdown(&mut self) -> Result<(Vec<Alert>, DistribStats), DistribError> {
        let alerts = self.flush()?;
        for w in 0..self.workers.len() {
            let _ = self.send_raw(w, &Message::Shutdown);
        }
        for slot in &mut self.workers {
            if let Some(mut proc) = slot.proc.take() {
                drop(proc.stdin); // EOF: the belt to Shutdown's suspenders
                let _ = proc.child.wait();
            }
        }
        Ok((alerts, std::mem::take(&mut self.stats)))
    }

    // ------------------------------------------------------------------
    // Plumbing: send, receive, death handling.

    fn send_raw(&mut self, w: usize, message: &Message) -> Result<(), String> {
        let Some(proc) = self.workers[w].proc.as_mut() else {
            return Err("no live process".to_owned());
        };
        write_frame(&mut proc.stdin, &message.encode())
            .map_err(|error| format!("pipe write failed: {error}"))
    }

    fn recv(&mut self, w: usize, timeout: Duration) -> Received {
        let Some(proc) = self.workers[w].proc.as_ref() else {
            return Received::Dead("no live process".to_owned());
        };
        match proc.rx.recv_timeout(timeout) {
            Ok(frame) => Self::frame_to_received(frame),
            Err(RecvTimeoutError::Disconnected) => Received::Dead("pipe closed".to_owned()),
            Err(RecvTimeoutError::Timeout) => Received::TimedOut,
        }
    }

    fn frame_to_received(frame: Vec<u8>) -> Received {
        match Message::decode(&frame) {
            Ok(Message::Fatal { code, message }) => {
                Received::Dead(format!("worker reported fatal error (code {code}): {message}"))
            }
            Ok(message) => Received::Msg(message),
            Err(error) => Received::Dead(format!("undecodable frame from worker: {error}")),
        }
    }

    /// Kills (idempotently) and reaps the slot's process, returning its
    /// exit code if it had one.
    fn reap(&mut self, w: usize) -> Option<i32> {
        let mut proc = self.workers[w].proc.take()?;
        drop(proc.stdin);
        let _ = proc.child.kill();
        match proc.child.wait() {
            Ok(status) => status.code(),
            Err(_) => None,
        }
    }

    /// Classifies a death by exit code, then restarts (or gives up).
    fn handle_death(&mut self, w: usize, cause: String) -> Result<(), DistribError> {
        if let Some(code) = self.reap(w) {
            if exit::is_terminal(code) {
                return Err(DistribError::WorkerTerminal { worker: w, code, detail: cause });
            }
        }
        self.restart_loop(w, Some(cause))
    }

    /// Brings a slot up (initially or after a death), with backoff between
    /// attempts. `cause: None` means initial launch — no backoff before the
    /// first attempt and no recovery record on success.
    fn restart_loop(&mut self, w: usize, cause: Option<String>) -> Result<(), DistribError> {
        let detected = Instant::now();
        let is_recovery = cause.is_some();
        let mut last = cause.clone().unwrap_or_else(|| "launch".to_owned());
        loop {
            let attempt = self.workers[w].consecutive_restarts;
            if attempt >= self.config.restart.max_restarts {
                return Err(DistribError::RestartsExhausted { worker: w, attempts: attempt, last });
            }
            if is_recovery || attempt > 0 {
                let delay = self.config.restart.delay_for(attempt, w, self.workers[w].spawn_count);
                thread::sleep(delay);
            }
            self.workers[w].consecutive_restarts = attempt + 1;
            match self.bring_up(w) {
                Ok((resumed_from, fell_back)) => {
                    if is_recovery {
                        self.stats.recoveries.push(Recovery {
                            worker: w,
                            incarnation: self.workers[w].spawn_count - 1,
                            cause: cause.clone().unwrap_or_default(),
                            latency: detected.elapsed(),
                            resumed_from_batch: resumed_from,
                            fell_back,
                        });
                    }
                    return Ok(());
                }
                Err(BringUp::Terminal(error)) => return Err(error),
                Err(BringUp::Retry(detail)) => {
                    self.reap(w);
                    last = detail;
                }
            }
        }
    }

    /// One attempt to (re)spawn a slot: load the newest valid checkpoint,
    /// spawn, init with the resume snapshot, wait for ready, re-register
    /// owned profiles, redeliver missing imports, replay the unacked
    /// suffix. Returns the coverage resumed from and whether the load fell
    /// back a generation.
    fn bring_up(&mut self, w: usize) -> Result<(u64, bool), BringUp> {
        self.reap(w);
        let (loaded, warnings) = self.workers[w]
            .store
            .load_latest(|bytes| decode_checkpoint(bytes).map(|_| ()).map_err(|e| e.to_string()));
        self.stats.checkpoint_warnings.extend(warnings.iter().map(ToString::to_string));
        let (resume, coverage, imports, fell_back) = match loaded {
            Some((bytes, generation)) => {
                let file = decode_checkpoint(&bytes).expect("validated by load_latest");
                if file.worker_index != w as u32 {
                    return Err(BringUp::Terminal(DistribError::CheckpointUnrecoverable {
                        worker: w,
                        detail: format!(
                            "checkpoint at `{}` belongs to worker {}",
                            self.workers[w].store.path().display(),
                            file.worker_index
                        ),
                    }));
                }
                (
                    Some(file.snapshot),
                    file.through_batch,
                    file.imports,
                    generation == Generation::Previous,
                )
            }
            None => (None, 0, 0, false),
        };
        // The retained suffix only reaches back past the previous
        // checkpoint generation; an older (or missing) resume point would
        // silently lose the gap.
        if coverage < self.workers[w].prev_coverage || imports < self.workers[w].prev_imports {
            return Err(BringUp::Terminal(DistribError::CheckpointUnrecoverable {
                worker: w,
                detail: format!(
                    "best checkpoint covers through batch {coverage} ({imports} imports) but \
                     replay data only reaches back to batch {} ({} imports) — both checkpoint \
                     generations lost",
                    self.workers[w].prev_coverage, self.workers[w].prev_imports
                ),
            }));
        }

        let incarnation = self.workers[w].spawn_count;
        let mut command = Command::new(&self.config.worker_program);
        command
            .args(&self.config.worker_args)
            .args(self.config.fault_plan.worker_args(w, incarnation))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child =
            command.spawn().map_err(|error| BringUp::Retry(format!("spawn failed: {error}")))?;
        self.workers[w].spawn_count += 1;
        self.workers[w].acks_since_spawn = 0;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = channel();
        thread::spawn(move || {
            let mut reader = std::io::BufReader::new(stdout);
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                if tx.send(frame).is_err() {
                    return;
                }
            }
            // EOF or read error: dropping the sender surfaces it as a
            // disconnected channel on the supervisor side.
        });
        self.workers[w].proc = Some(WorkerProc { child, stdin: BufWriter::new(stdin), rx });
        self.workers[w].coverage = coverage;
        self.workers[w].imports_cov = imports;
        self.workers[w].inflight.clear();

        let owned = self.owned_shards(w);
        let init = Message::Init {
            worker_index: w as u32,
            owned_shards: owned.clone(),
            model_psm: self.model_psm.clone(),
            fingerprint: self.fingerprint,
            checkpoint_path: Some(self.workers[w].store.path().display().to_string()),
            resume,
            resume_through_batch: coverage,
            resume_imports: imports,
        };
        self.send_raw(w, &init).map_err(BringUp::Retry)?;
        match self.recv(w, self.config.startup_timeout) {
            Received::Msg(Message::Ready { fingerprint, .. }) => {
                if fingerprint != self.fingerprint {
                    return Err(BringUp::Terminal(DistribError::Protocol {
                        worker: w,
                        detail: format!(
                            "worker reported fingerprint {fingerprint:#018x}, supervisor has \
                             {:#018x}",
                            self.fingerprint
                        ),
                    }));
                }
            }
            Received::Msg(other) => {
                return Err(BringUp::Terminal(DistribError::Protocol {
                    worker: w,
                    detail: format!("expected Ready, got {other:?}"),
                }))
            }
            Received::Dead(cause) => {
                if let Some(code) = self.reap(w) {
                    if exit::is_terminal(code) {
                        return Err(BringUp::Terminal(DistribError::WorkerTerminal {
                            worker: w,
                            code,
                            detail: cause,
                        }));
                    }
                }
                return Err(BringUp::Retry(format!("died before ready: {cause}")));
            }
            Received::TimedOut => return Err(BringUp::Retry("startup timed out".to_owned())),
        }

        // Re-register every profile of the owned shards (idempotent
        // worker-side; users already in the snapshot are skipped). A user's
        // registration always precedes their first event in the original
        // stream, so registering before replay preserves causal order.
        for &shard in &owned {
            for profile in self.registry[shard as usize].clone() {
                self.send_raw(w, &Message::Register { profile }).map_err(BringUp::Retry)?;
            }
        }
        // Redeliver exactly the handoff imports the snapshot is missing.
        let missing: Vec<Vec<u8>> = self.workers[w]
            .pending_imports
            .iter()
            .filter(|(ordinal, _)| *ordinal > imports)
            .map(|(_, blob)| blob.clone())
            .collect();
        for blob in missing {
            self.send_raw(w, &Message::ImportShards { snapshot: blob }).map_err(BringUp::Retry)?;
            match self.recv(w, self.config.control_timeout) {
                Received::Msg(Message::Imported { .. }) => {}
                Received::Msg(other) => {
                    return Err(BringUp::Terminal(DistribError::Protocol {
                        worker: w,
                        detail: format!("expected Imported during resume, got {other:?}"),
                    }))
                }
                Received::Dead(cause) => {
                    return Err(BringUp::Retry(format!("died during import redelivery: {cause}")))
                }
                Received::TimedOut => {
                    return Err(BringUp::Retry("import redelivery timed out".to_owned()))
                }
            }
        }
        // Replay the unacked suffix: every retained sub-batch newer than
        // the resumed coverage, in order. Acks stream back asynchronously
        // and are matched through the rebuilt inflight queue.
        let replay: Vec<(u64, Vec<(u32, Event)>)> =
            self.workers[w].retained.iter().filter(|(id, _)| *id > coverage).cloned().collect();
        for (id, part) in replay {
            self.send_raw(w, &Message::Ingest { batch: id, events: part })
                .map_err(BringUp::Retry)?;
            self.workers[w].inflight.push_back(id);
        }
        Ok((coverage, fell_back))
    }

    fn owned_shards(&self, w: usize) -> Vec<u32> {
        (0..SHARD_COUNT as u32).filter(|&s| self.routing[s as usize] == w).collect()
    }

    // ------------------------------------------------------------------
    // Acks, assembly, emission.

    fn on_ack(
        &mut self,
        w: usize,
        batch: u64,
        alerts: Vec<(u32, Alert)>,
    ) -> Result<(), DistribError> {
        match self.workers[w].inflight.front().copied() {
            Some(expected) if expected == batch => {
                self.workers[w].inflight.pop_front();
            }
            other => {
                // An ack that skips the oldest unacked batch means an ack
                // was lost in the worker (the drop-ack fault, or a real
                // application bug). Its whole lane is in doubt: kill it and
                // resume from the checkpoint — the replayed suffix re-acks
                // deterministically and already-emitted batches are dropped
                // by id below.
                return self.handle_death(
                    w,
                    format!("acked batch {batch} but the oldest unacked is {other:?} (lost ack)"),
                );
            }
        }
        // Progress, but only *sustained* progress forgives past restarts:
        // resetting the budget on the first ack would let a worker that
        // delivers one batch per incarnation crash-loop forever.
        self.workers[w].acks_since_spawn = self.workers[w].acks_since_spawn.saturating_add(1);
        if self.workers[w].acks_since_spawn >= self.config.restart.reset_after_acks {
            self.workers[w].consecutive_restarts = 0;
        }
        if batch >= self.next_emit {
            let Some(pending) = self.assembly.get_mut(&batch) else {
                return Err(DistribError::Protocol {
                    worker: w,
                    detail: format!("acked unknown batch {batch}"),
                });
            };
            pending.got.insert(w, alerts);
        }
        // else: a replayed ack for an already-emitted batch — dropped, the
        // alerts were delivered before the worker died.
        self.drain_ready();
        Ok(())
    }

    fn drain_ready(&mut self) {
        while let Some(pending) = self.assembly.get(&self.next_emit) {
            if pending.got.len() < pending.expected {
                break;
            }
            let pending = self.assembly.remove(&self.next_emit).expect("present");
            let mut merged: Vec<(u32, Alert)> = pending.got.into_values().flatten().collect();
            // Positions are unique per event and all alerts of one event
            // come from one worker in raise order; the stable sort restores
            // exactly the in-process emission order.
            merged.sort_by_key(|&(position, _)| position);
            self.stats.alerts += merged.len() as u64;
            self.emitted.extend(merged.into_iter().map(|(_, alert)| alert));
            self.next_emit += 1;
        }
    }

    /// Drains without blocking: everything a worker has already acked.
    fn pump(&mut self, w: usize) -> Result<(), DistribError> {
        loop {
            let Some(proc) = self.workers[w].proc.as_ref() else { return Ok(()) };
            match proc.rx.try_recv() {
                Ok(frame) => match Self::frame_to_received(frame) {
                    Received::Msg(Message::Ack { batch, alerts }) => {
                        self.on_ack(w, batch, alerts)?;
                    }
                    Received::Msg(other) => {
                        return Err(DistribError::Protocol {
                            worker: w,
                            detail: format!("unsolicited message: {other:?}"),
                        })
                    }
                    Received::Dead(cause) => self.handle_death(w, cause)?,
                    Received::TimedOut => unreachable!("try_recv cannot time out"),
                },
                Err(TryRecvError::Empty) => return Ok(()),
                Err(TryRecvError::Disconnected) => {
                    self.handle_death(w, "pipe closed".to_owned())?;
                }
            }
        }
    }

    /// Blocks until one more ack from `w` arrives (reviving it as needed).
    fn await_one_ack(&mut self, w: usize) -> Result<(), DistribError> {
        loop {
            if self.workers[w].inflight.is_empty() {
                return Ok(());
            }
            match self.recv(w, self.config.ack_timeout) {
                Received::Msg(Message::Ack { batch, alerts }) => {
                    return self.on_ack(w, batch, alerts);
                }
                Received::Msg(other) => {
                    return Err(DistribError::Protocol {
                        worker: w,
                        detail: format!("expected Ack, got {other:?}"),
                    })
                }
                Received::Dead(cause) => self.handle_death(w, cause)?,
                Received::TimedOut => {
                    let cause =
                        format!("no ack within {:?} (stalled or wedged)", self.config.ack_timeout);
                    self.handle_death(w, cause)?;
                }
            }
        }
    }

    fn flush_worker(&mut self, w: usize) -> Result<(), DistribError> {
        while !self.workers[w].inflight.is_empty() {
            self.await_one_ack(w)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpointing.

    fn checkpoint_worker(&mut self, w: usize) -> Result<(), DistribError> {
        loop {
            self.flush_worker(w)?;
            if let Err(cause) = self.send_raw(w, &Message::Checkpoint) {
                self.handle_death(w, cause)?;
                continue;
            }
            match self.recv(w, self.config.control_timeout) {
                Received::Msg(Message::CheckpointDone { through_batch, imports }) => {
                    self.stats.checkpoints += 1;
                    self.workers[w].ckpt_ordinal += 1;
                    let ordinal = self.workers[w].ckpt_ordinal;
                    if self.config.fault_plan.corrupts_checkpoint(w, ordinal) {
                        self.corrupt_checkpoint_file(w);
                    }
                    // Read back what actually landed on disk before trusting
                    // it. A checkpoint that cannot be decoded must not
                    // advance coverage or prune the retained suffix: pruning
                    // against an unreadable file is how *both* generations
                    // end up undecodable with the replay data already gone.
                    let readable = std::fs::read(self.workers[w].store.path())
                        .ok()
                        .is_some_and(|bytes| decode_checkpoint(&bytes).is_ok());
                    if !readable {
                        self.stats.checkpoint_warnings.push(format!(
                            "worker {w}: checkpoint {ordinal} failed read-back validation at \
                             `{}`; keeping previous coverage and full replay suffix",
                            self.workers[w].store.path().display()
                        ));
                        return Ok(());
                    }
                    let slot = &mut self.workers[w];
                    slot.prev_coverage = slot.coverage;
                    slot.prev_imports = slot.imports_cov;
                    slot.coverage = through_batch;
                    slot.imports_cov = imports;
                    let keep_batches_after = slot.prev_coverage;
                    slot.retained.retain(|(id, _)| *id > keep_batches_after);
                    let keep_imports_after = slot.prev_imports;
                    slot.pending_imports.retain(|(ordinal, _)| *ordinal > keep_imports_after);
                    return Ok(());
                }
                Received::Msg(other) => {
                    return Err(DistribError::Protocol {
                        worker: w,
                        detail: format!("expected CheckpointDone, got {other:?}"),
                    })
                }
                Received::Dead(cause) => self.handle_death(w, cause)?,
                Received::TimedOut => self.handle_death(w, "checkpoint timed out".to_owned())?,
            }
        }
    }

    /// The supervisor half of [`Fault::CorruptCheckpoint`](crate::fault::Fault):
    /// flip a byte in the middle of the freshly written checkpoint file.
    fn corrupt_checkpoint_file(&mut self, w: usize) {
        let path = self.workers[w].store.path().to_path_buf();
        if let Ok(mut bytes) = std::fs::read(&path) {
            if !bytes.is_empty() {
                let middle = bytes.len() / 2;
                bytes[middle] ^= 0xFF;
                if std::fs::write(&path, bytes).is_ok() {
                    self.stats.corruptions_injected += 1;
                }
            }
        }
    }
}

impl Drop for DistributedMonitor {
    fn drop(&mut self) {
        for slot in &mut self.workers {
            if let Some(mut proc) = slot.proc.take() {
                drop(proc.stdin);
                let _ = proc.child.kill();
                let _ = proc.child.wait();
            }
        }
    }
}
