//! The `privacy-shardd` worker: a shard-owning monitor process.
//!
//! One worker owns a subset of the monitor's `UserId`-hash shards. Its whole
//! life is a loop over framed [`Message`]s on stdin:
//!
//! 1. [`Init`](Message::Init) — parse the shipped `.psm` model, regenerate
//!    the LTS and its index, verify the **index fingerprint** against the
//!    supervisor's (a mismatch is a terminal, typed death: restarting cannot
//!    help), and resume from the carried snapshot if there is one, keeping
//!    only the owned shards.
//! 2. [`IngestBatch`](Message::IngestBatch) — the v2 coalesced data plane:
//!    many super-batch parts in one frame, answered with a single cumulative
//!    [`AckThrough`](Message::AckThrough) that carries *every* alert the
//!    supervisor has not yet confirmed (the frame's piggybacked
//!    `acked_through` prunes that retained buffer). Because the reply repeats
//!    unconfirmed alerts, a single swallowed ack self-heals on the next
//!    frame instead of forcing a restart. The v1 per-batch
//!    [`Ingest`](Message::Ingest)/[`Ack`](Message::Ack) pair is still served
//!    for old supervisors. Events for users the worker does not track are
//!    ignored, exactly as the in-process `IndexedMonitor` ignores
//!    unregistered users — this also makes replayed pre-handoff batches
//!    harmless after a shard has moved away.
//! 3. [`Checkpoint`](Message::Checkpoint) — encode the monitor snapshot plus
//!    bookkeeping (covered super-batch, absorbed-import count) **inline**, at
//!    the exact point in stream order the supervisor requested, then hand the
//!    bytes to a dedicated checkpoint thread that writes them atomically
//!    through the [`CheckpointStore`] and sends
//!    [`CheckpointDone`](Message::CheckpointDone) once the fsync lands. The
//!    ingest loop keeps evaluating the next coalesced frames while the disk
//!    works — on a durable duty cycle this is what lets a worker fleet hide
//!    checkpoint latency that an in-process monitor must pay inline.
//! 4. [`ExportShards`](Message::ExportShards) /
//!    [`ImportShards`](Message::ImportShards) — the two halves of a live
//!    shard handoff.
//!
//! The injected faults ([`WorkerFaults`], armed via `--fault` arguments) are
//! deliberately crude: `process::exit` mid-batch, a sleep before an ack, a
//! swallowed ack, a sleep after every event. Crude is the point — they model
//! the failure, not a polite simulation of it.

use crate::checkpoint::CheckpointStore;
use crate::exit;
use crate::fault::WorkerFaults;
use crate::wire::{encode_checkpoint, Message};
use privacy_interchange::{parse_document, read_frame, write_frame, FrameIoError};
use privacy_lts::LtsIndex;
use privacy_runtime::{Alert, IndexedMonitor, MonitorSnapshot};
use std::fmt;
use std::io::{Read, Write};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};

/// A typed worker failure, mapped onto the [`crate::exit`] taxonomy.
#[derive(Debug)]
pub enum WorkerFailure {
    /// A pipe or checkpoint-file I/O operation failed.
    Io(String),
    /// The supervisor broke the wire protocol (or the pipe carried garbage).
    Protocol(String),
    /// The model or snapshot could not establish monitor state: parse
    /// failure, LTS generation failure, fingerprint mismatch, rejected
    /// snapshot.
    State(String),
}

impl WorkerFailure {
    /// The process exit code this failure maps to.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            WorkerFailure::Io(_) => exit::IO_FATAL,
            WorkerFailure::Protocol(_) => exit::PROTOCOL_FATAL,
            WorkerFailure::State(_) => exit::SNAPSHOT_FATAL,
        }
    }
}

impl fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFailure::Io(detail) => write!(f, "i/o failure: {detail}"),
            WorkerFailure::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            WorkerFailure::State(detail) => write!(f, "cannot establish monitor state: {detail}"),
        }
    }
}

impl std::error::Error for WorkerFailure {}

/// In-flight checkpoint writes the ingest loop may run ahead of before it
/// blocks — bounded, so a slow disk exerts backpressure on the whole lane
/// instead of piling encoded snapshots up in worker memory.
const CHECKPOINT_QUEUE: usize = 2;

/// One encoded checkpoint handed from the ingest loop to the checkpoint
/// thread. The snapshot is taken (and encoded) inline at the requested point
/// in stream order; only the write + fsync happens off-thread.
struct CheckpointJob {
    file: Vec<u8>,
    through_batch: u64,
    imports: u64,
}

struct WorkerState {
    monitor: IndexedMonitor,
    worker_index: u32,
    through_batch: u64,
    imports_absorbed: u64,
    events_seen: u64,
    ingests_seen: u64,
    /// Alerts raised by batches the supervisor has not yet confirmed via a
    /// piggybacked `acked_through`. Every [`Message::AckThrough`] repeats
    /// this whole buffer, so a lost reply is repaired by the next one.
    /// Bounded by the supervisor's send window.
    pending_alerts: Vec<(u64, u32, Alert)>,
    faults: WorkerFaults,
}

fn next_message(input: &mut impl Read) -> Result<Option<Message>, WorkerFailure> {
    match read_frame(input) {
        Ok(None) => Ok(None),
        Ok(Some(frame)) => Message::decode(&frame)
            .map(Some)
            .map_err(|error| WorkerFailure::Protocol(format!("undecodable message: {error}"))),
        Err(FrameIoError::Io(error)) => {
            Err(WorkerFailure::Io(format!("reading command pipe: {error}")))
        }
        Err(FrameIoError::Codec(error)) => {
            Err(WorkerFailure::Protocol(format!("unreadable frame: {error}")))
        }
        // `FrameIoError` is non-exhaustive; treat future variants as I/O.
        Err(other) => Err(WorkerFailure::Io(format!("reading command pipe: {other}"))),
    }
}

/// Writes one reply frame through the shared output. The mutex is held only
/// for the frame write, so the ingest loop and the checkpoint thread
/// interleave whole frames, never bytes. `write_frame` flushes, so a reply
/// never sits in a stdout buffer while the worker blocks on its next command
/// (which would deadlock the supervisor waiting for exactly that reply).
fn send<O: Write>(output: &Mutex<&mut O>, message: &Message) -> Result<(), WorkerFailure> {
    let mut out = output.lock().expect("reply pipe mutex poisoned");
    write_frame(&mut **out, &message.encode())
        .map_err(|error| WorkerFailure::Io(format!("writing reply pipe: {error}")))
}

/// The checkpoint thread: drains [`CheckpointJob`]s in order (generations on
/// disk stay ordered), fsyncs each through the [`CheckpointStore`], and only
/// then sends [`Message::CheckpointDone`] — the supervisor's coverage never
/// advances past bytes that are not actually durable. A write failure is
/// reported as a best-effort [`Message::Fatal`] and parked in `failed` for
/// the ingest loop to surface as the worker's exit.
fn checkpoint_thread<O: Write>(
    store: &CheckpointStore,
    jobs: Receiver<CheckpointJob>,
    output: &Mutex<&mut O>,
    failed: &Mutex<Option<WorkerFailure>>,
) {
    for job in jobs {
        if let Err(error) = store.write(&job.file) {
            let failure = WorkerFailure::Io(format!(
                "checkpoint write to `{}` failed: {error}",
                store.path().display()
            ));
            let fatal =
                Message::Fatal { code: failure.exit_code() as u32, message: failure.to_string() };
            let _ = send(output, &fatal);
            *failed.lock().expect("checkpoint failure mutex poisoned") = Some(failure);
            return;
        }
        let done =
            Message::CheckpointDone { through_batch: job.through_batch, imports: job.imports };
        if send(output, &done).is_err() {
            return; // the supervisor is gone; the ingest loop will see EOF
        }
    }
}

/// Runs the worker protocol over the given pipes until the supervisor sends
/// [`Shutdown`](Message::Shutdown) or closes its end.
///
/// On a typed failure a last [`Fatal`](Message::Fatal) message is written
/// best-effort before the error is returned, so the supervisor can log the
/// cause instead of just seeing the pipe close.
///
/// # Errors
///
/// Returns the [`WorkerFailure`] the caller should map to a process exit
/// code via [`WorkerFailure::exit_code`].
pub fn run_worker(
    input: &mut impl Read,
    output: &mut (impl Write + Send),
    faults: WorkerFaults,
) -> Result<(), WorkerFailure> {
    match serve(input, output, faults) {
        Ok(()) => Ok(()),
        Err(failure) => {
            let fatal =
                Message::Fatal { code: failure.exit_code() as u32, message: failure.to_string() };
            let _ = write_frame(output, &fatal.encode());
            Err(failure)
        }
    }
}

fn serve(
    input: &mut impl Read,
    output: &mut (impl Write + Send),
    faults: WorkerFaults,
) -> Result<(), WorkerFailure> {
    let Some(first) = next_message(input)? else {
        return Ok(()); // supervisor went away before init: nothing to do
    };
    let Message::Init {
        worker_index,
        owned_shards,
        model_psm,
        fingerprint,
        checkpoint_path,
        resume,
        resume_through_batch,
        resume_imports,
    } = first
    else {
        return Err(WorkerFailure::Protocol("first message must be Init".to_owned()));
    };

    let document = parse_document(&model_psm)
        .map_err(|error| WorkerFailure::State(format!("model does not parse: {error}")))?;
    let lts = document
        .system
        .generate_lts()
        .map_err(|error| WorkerFailure::State(format!("LTS generation failed: {error}")))?;
    let index = LtsIndex::build(&lts);
    if index.fingerprint() != fingerprint {
        return Err(WorkerFailure::State(format!(
            "index fingerprint mismatch: supervisor has {:#018x}, this model yields {:#018x}",
            fingerprint,
            index.fingerprint()
        )));
    }
    let index = Arc::new(index);
    let catalog = document.system.catalog().clone();
    let policy = document.system.policy().clone();

    let (mut monitor, resumed_users) = match resume {
        Some(bytes) => {
            let mut snapshot = MonitorSnapshot::from_bytes(&bytes)
                .map_err(|error| WorkerFailure::State(format!("resume snapshot: {error}")))?;
            snapshot.retain_shards(&owned_shards);
            let users = snapshot.user_count() as u64;
            let monitor = IndexedMonitor::resume_from(catalog, policy, index, &snapshot)
                .map_err(|error| WorkerFailure::State(format!("resume rejected: {error}")))?;
            (monitor, users)
        }
        None => (IndexedMonitor::new(catalog, policy, index), 0),
    };
    // Any pending alerts in the snapshot were acked before the checkpoint
    // was taken; draining them keeps future snapshots and acks disjoint.
    let _ = monitor.drain_alerts();

    let mut state = WorkerState {
        monitor,
        worker_index,
        through_batch: resume_through_batch,
        imports_absorbed: resume_imports,
        events_seen: 0,
        ingests_seen: 0,
        pending_alerts: Vec::new(),
        faults,
    };
    let store = checkpoint_path.map(CheckpointStore::new);
    let output = Mutex::new(output);
    let ckpt_failure: Mutex<Option<WorkerFailure>> = Mutex::new(None);

    std::thread::scope(|scope| {
        send(&output, &Message::Ready { fingerprint, resumed_users })?;
        let mut ckpt_tx = None;
        let mut ckpt_thread = None;
        if let Some(store) = &store {
            let (tx, rx) = std::sync::mpsc::sync_channel(CHECKPOINT_QUEUE);
            let (out, failed) = (&output, &ckpt_failure);
            ckpt_thread = Some(scope.spawn(move || checkpoint_thread(store, rx, out, failed)));
            ckpt_tx = Some(tx);
        }
        // `serve_loop` consumes the sender, so the checkpoint thread sees a
        // closed channel — and drains its queue — as soon as the loop ends.
        let result = serve_loop(input, &output, ckpt_tx, &mut state);
        if let Some(thread) = ckpt_thread {
            let _ = thread.join();
        }
        if result.is_ok() {
            if let Some(failure) = ckpt_failure.lock().expect("failure mutex").take() {
                return Err(failure);
            }
        }
        result
    })
}

fn serve_loop<O: Write + Send>(
    input: &mut impl Read,
    output: &Mutex<&mut O>,
    ckpt_tx: Option<SyncSender<CheckpointJob>>,
    state: &mut WorkerState,
) -> Result<(), WorkerFailure> {
    while let Some(message) = next_message(input)? {
        match message {
            Message::Register { profile } => {
                // Idempotent: a re-registration (restart replay, or a user
                // already restored from the snapshot) must not reset state.
                if !state.monitor.is_registered(profile.id()) {
                    state.monitor.register_user(&profile);
                }
            }
            Message::Ingest { batch, events } => handle_ingest(state, output, batch, events)?,
            Message::IngestBatch { acked_through, parts } => {
                handle_ingest_batch(state, output, acked_through, parts)?;
            }
            Message::Checkpoint => handle_checkpoint(state, output, ckpt_tx.as_ref())?,
            Message::ExportShards { shards } => {
                let exported = state.monitor.snapshot().extract_shards(&shards);
                for &shard in &shards {
                    state.monitor.remove_shard_users(shard);
                }
                send(output, &Message::ShardExport { snapshot: exported.to_bytes() })?;
            }
            Message::ImportShards { snapshot } => {
                let snapshot = MonitorSnapshot::from_bytes(&snapshot)
                    .map_err(|error| WorkerFailure::State(format!("import snapshot: {error}")))?;
                let users = state
                    .monitor
                    .absorb(&snapshot)
                    .map_err(|error| WorkerFailure::State(format!("import rejected: {error}")))?;
                let _ = state.monitor.drain_alerts();
                state.imports_absorbed += 1;
                send(output, &Message::Imported { users: users as u64 })?;
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(WorkerFailure::Protocol(format!(
                    "unexpected message after init: {other:?}"
                )))
            }
        }
    }
    Ok(())
}

/// Processes the events of one super-batch part, with the injected faults
/// fired at **event granularity** — a kill or per-event sleep lands on the
/// same event whether the part arrived alone (v1 `Ingest`) or coalesced
/// into a v2 `IngestBatch` frame. Returns `true` when this part's ack (for
/// v2: the whole frame's ack) must be swallowed by an armed `drop-ack`.
fn ingest_part(
    state: &mut WorkerState,
    batch: u64,
    events: &[(u32, privacy_runtime::Event)],
    alerts: &mut Vec<(u32, Alert)>,
) -> bool {
    for (position, event) in events {
        for alert in state.monitor.observe(event) {
            alerts.push((*position, alert));
        }
        state.events_seen += 1;
        if let Some(millis) = state.faults.sleep_per_event {
            std::thread::sleep(std::time::Duration::from_millis(millis));
        }
        if let Some(threshold) = state.faults.kill_after_events {
            if state.events_seen >= threshold {
                // An injected crash: no ack, no cleanup, mid-batch.
                std::process::exit(exit::INJECTED_FAULT);
            }
        }
    }
    // observe() also accumulates the alerts internally; drain them so the
    // ack stream and future snapshots never carry an alert twice.
    let _ = state.monitor.drain_alerts();
    state.through_batch = batch;
    state.ingests_seen += 1;
    if let Some((threshold, millis)) = state.faults.stall_before_ack {
        if state.events_seen >= threshold {
            std::thread::sleep(std::time::Duration::from_millis(millis));
            state.faults.stall_before_ack = None;
        }
    }
    state.faults.drop_ack == Some(state.ingests_seen)
}

fn handle_ingest<O: Write>(
    state: &mut WorkerState,
    output: &Mutex<&mut O>,
    batch: u64,
    events: Vec<(u32, privacy_runtime::Event)>,
) -> Result<(), WorkerFailure> {
    let mut alerts: Vec<(u32, Alert)> = Vec::new();
    if ingest_part(state, batch, &events, &mut alerts) {
        return Ok(()); // injected lost ack: the batch was processed silently
    }
    send(output, &Message::Ack { batch, alerts })
}

fn handle_ingest_batch<O: Write>(
    state: &mut WorkerState,
    output: &Mutex<&mut O>,
    acked_through: u64,
    parts: Vec<(u64, Vec<(u32, privacy_runtime::Event)>)>,
) -> Result<(), WorkerFailure> {
    // The supervisor has confirmed everything through `acked_through`; those
    // alerts will never need re-sending.
    state.pending_alerts.retain(|(batch, _, _)| *batch > acked_through);
    let mut dropped = false;
    for (batch, events) in &parts {
        let mut alerts: Vec<(u32, Alert)> = Vec::new();
        // A drop-ack ordinal landing on *any* coalesced part swallows the
        // frame's single reply — the whole frame goes unacknowledged, which
        // is exactly what a lost reply frame looks like on the wire.
        dropped |= ingest_part(state, *batch, events, &mut alerts);
        state
            .pending_alerts
            .extend(alerts.into_iter().map(|(position, alert)| (*batch, position, alert)));
    }
    if dropped {
        return Ok(());
    }
    send(
        output,
        &Message::AckThrough { through: state.through_batch, alerts: state.pending_alerts.clone() },
    )
}

fn handle_checkpoint<O: Write>(
    state: &mut WorkerState,
    output: &Mutex<&mut O>,
    ckpt_tx: Option<&SyncSender<CheckpointJob>>,
) -> Result<(), WorkerFailure> {
    let Some(tx) = ckpt_tx else {
        // No store configured: durability is a no-op, reply immediately.
        return send(
            output,
            &Message::CheckpointDone {
                through_batch: state.through_batch,
                imports: state.imports_absorbed,
            },
        );
    };
    // The snapshot is taken and encoded here, at the exact point in stream
    // order the supervisor asked for; only the write + fsync is off-thread.
    // The checkpoint thread sends the `CheckpointDone` once the file is
    // durable, while this loop moves on to the next coalesced frame.
    let snapshot = state.monitor.snapshot().to_bytes();
    let file = encode_checkpoint(
        state.worker_index,
        state.through_batch,
        state.imports_absorbed,
        &snapshot,
    );
    tx.send(CheckpointJob {
        file,
        through_batch: state.through_batch,
        imports: state.imports_absorbed,
    })
    .map_err(|_| WorkerFailure::Io("checkpoint thread exited".to_owned()))
}

/// The `privacy-shardd` entry point: parses `--fault` switches, runs the
/// worker over stdin/stdout, and returns the process exit code.
#[must_use]
pub fn shardd_main(args: impl Iterator<Item = String>) -> i32 {
    let mut faults = WorkerFaults::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fault" => {
                let Some(spec) = args.next() else {
                    eprintln!("privacy-shardd: --fault needs a SPEC argument");
                    return exit::USAGE;
                };
                if let Err(error) = faults.parse_arg(&spec) {
                    eprintln!("privacy-shardd: {error}");
                    return exit::USAGE;
                }
            }
            "--help" | "-h" => {
                println!(
                    "privacy-shardd: shard-owning monitor worker; speaks framed messages on \
                     stdin/stdout.\nSpawned by the privacy-distrib supervisor — not meant to be \
                     run by hand.\n\nOptions:\n  --fault SPEC   arm an injected fault \
                     (kill-after-events=N, stall-before-ack=N:MS,\n                 drop-ack=B, \
                     sleep-per-event=MS); test harness only\n  --help         this \
                     message\n\nExit codes: 0 ok, 2 usage, 11 snapshot/model mismatch, 12 i/o \
                     failure,\n13 protocol violation, 101 injected fault."
                );
                return exit::OK;
            }
            other => {
                eprintln!("privacy-shardd: unknown argument `{other}` (try --help)");
                return exit::USAGE;
            }
        }
    }
    let stdin = std::io::stdin();
    let mut input = std::io::BufReader::new(stdin.lock());
    // `Stdout` (unlike `StdoutLock`) is `Send`, which the checkpoint thread
    // needs; per-frame locking already happens at the worker's reply mutex.
    let mut output = std::io::stdout();
    match run_worker(&mut input, &mut output, faults) {
        Ok(()) => exit::OK,
        Err(failure) => {
            eprintln!("privacy-shardd: {failure}");
            failure.exit_code()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_lts::ActionKind;
    use privacy_model::{Sensitivity, UserProfile};

    // A tiny synthetic model shared by the in-process worker tests (worker
    // processes in integration tests run under the dev profile, so model
    // size matters).
    fn tiny_system() -> (String, privacy_core::PrivacySystem) {
        use privacy_synth::{random_model, ModelGeneratorConfig};
        let config = ModelGeneratorConfig {
            actors: 3,
            fields: 4,
            datastores: 1,
            services: 2,
            flows_per_service: 3,
            grant_probability: 0.7,
            seed: 5,
            ..ModelGeneratorConfig::default()
        };
        let (catalog, dataflows, policy) = random_model(&config).expect("synth model");
        ("Tiny".to_owned(), privacy_core::PrivacySystem::new(catalog, dataflows, policy))
    }

    fn run_script(messages: Vec<Message>) -> Result<Vec<Message>, WorkerFailure> {
        let mut input = Vec::new();
        for message in &messages {
            privacy_interchange::write_frame(&mut input, &message.encode()).unwrap();
        }
        let mut output = Vec::new();
        run_worker(&mut &input[..], &mut output, WorkerFaults::default())?;
        let mut replies = Vec::new();
        let mut reader = &output[..];
        while let Some(frame) = read_frame(&mut reader).unwrap() {
            replies.push(Message::decode(&frame).unwrap());
        }
        Ok(replies)
    }

    fn init_message(name: &str, system: &privacy_core::PrivacySystem) -> Message {
        let lts = system.generate_lts().unwrap();
        let fingerprint = LtsIndex::build(&lts).fingerprint();
        Message::Init {
            worker_index: 0,
            owned_shards: (0..privacy_runtime::SHARD_COUNT as u32).collect(),
            model_psm: privacy_interchange::render_system(name, system),
            fingerprint,
            checkpoint_path: None,
            resume: None,
            resume_through_batch: 0,
            resume_imports: 0,
        }
    }

    // The Init path re-parses the rendered model and recomputes the index
    // fingerprint, so a passing run also proves the `.psm` round trip
    // preserves the fingerprint — the assumption model shipping rests on.
    #[test]
    fn worker_initialises_ingests_and_acks() {
        let (name, system) = tiny_system();
        let service = system.catalog().services().next().unwrap().id().clone();
        let actor = system.catalog().identifying_actors().next().unwrap().id().clone();
        let field = system.catalog().fields().next().unwrap().id().clone();
        let profile = UserProfile::new("ada")
            .consents_to(service.clone())
            .with_sensitivity(field.clone(), Sensitivity::new(0.9).unwrap());
        let event = privacy_runtime::Event::new(
            0,
            "ada",
            service,
            actor,
            ActionKind::Read,
            [field],
            None,
            true,
        );
        let replies = run_script(vec![
            init_message(&name, &system),
            Message::Register { profile },
            Message::Ingest { batch: 1, events: vec![(0, event)] },
            Message::Shutdown,
        ])
        .expect("worker runs cleanly");
        assert!(matches!(replies[0], Message::Ready { resumed_users: 0, .. }));
        let Message::Ack { batch: 1, .. } = &replies[1] else {
            panic!("expected an ack, got {:?}", replies[1]);
        };
    }

    // Finds, by exhaustive probe against a scratch monitor, a
    // (service, actor, field) combination whose first `Read` raises an alert
    // for a fresh maximum-sensitivity user — the coalesced-path tests need
    // events that *definitely* alert, and a repeat exposure never re-alerts,
    // so each batch below uses the recipe with a distinct user.
    fn alerting_recipe(
        system: &privacy_core::PrivacySystem,
    ) -> (privacy_model::ServiceId, privacy_model::ActorId, privacy_model::FieldId) {
        let lts = system.generate_lts().unwrap();
        let index = Arc::new(LtsIndex::build(&lts));
        for service in system.catalog().services() {
            for actor in system.catalog().identifying_actors() {
                for field in system.catalog().fields() {
                    let mut monitor = IndexedMonitor::new(
                        system.catalog().clone(),
                        system.policy().clone(),
                        index.clone(),
                    );
                    let (profile, event) = recipe_user(
                        "probe",
                        0,
                        &(service.id().clone(), actor.id().clone(), field.id().clone()),
                    );
                    monitor.register_user(&profile);
                    if !monitor.observe(&event).is_empty() {
                        return (service.id().clone(), actor.id().clone(), field.id().clone());
                    }
                }
            }
        }
        panic!("tiny system has no alert-raising read at all");
    }

    fn recipe_user(
        name: &str,
        sequence: u64,
        (service, actor, field): &(
            privacy_model::ServiceId,
            privacy_model::ActorId,
            privacy_model::FieldId,
        ),
    ) -> (UserProfile, privacy_runtime::Event) {
        let profile =
            UserProfile::new(name).with_sensitivity(field.clone(), Sensitivity::new(1.0).unwrap());
        let event = privacy_runtime::Event::new(
            sequence,
            name,
            service.clone(),
            actor.clone(),
            ActionKind::Read,
            [field.clone()],
            None,
            true,
        );
        (profile, event)
    }

    #[test]
    fn coalesced_frames_ack_cumulatively_and_retain_unconfirmed_alerts() {
        let (name, system) = tiny_system();
        let recipe = alerting_recipe(&system);
        let (ada, ada_read) = recipe_user("ada", 0, &recipe);
        let (bob, bob_read) = recipe_user("bob", 1, &recipe);
        let (eve, eve_read) = recipe_user("eve", 2, &recipe);
        let replies = run_script(vec![
            init_message(&name, &system),
            Message::Register { profile: ada },
            Message::Register { profile: bob },
            Message::Register { profile: eve },
            // Nothing confirmed yet: the reply must carry both parts' alerts…
            Message::IngestBatch {
                acked_through: 0,
                parts: vec![(1, vec![(0, ada_read)]), (2, vec![(1, bob_read)])],
            },
            // …until a piggybacked acked_through prunes them.
            Message::IngestBatch { acked_through: 2, parts: vec![(3, vec![(0, eve_read)])] },
            Message::Shutdown,
        ])
        .expect("worker runs cleanly");
        let Message::AckThrough { through: 2, alerts: first } = &replies[1] else {
            panic!("expected AckThrough through 2, got {:?}", replies[1]);
        };
        assert!(first.iter().any(|(batch, _, _)| *batch == 1));
        assert!(first.iter().any(|(batch, _, _)| *batch == 2));
        let Message::AckThrough { through: 3, alerts: second } = &replies[2] else {
            panic!("expected AckThrough through 3, got {:?}", replies[2]);
        };
        assert!(!second.is_empty(), "batch 3's alert must be present");
        assert!(
            second.iter().all(|(batch, _, _)| *batch == 3),
            "confirmed batches must be pruned from the retained buffer: {second:?}"
        );
    }

    #[test]
    fn dropped_ack_alerts_reappear_in_the_next_ack_through() {
        let (name, system) = tiny_system();
        let recipe = alerting_recipe(&system);
        let (ada, ada_read) = recipe_user("ada", 0, &recipe);
        let (bob, bob_read) = recipe_user("bob", 1, &recipe);
        let mut input = Vec::new();
        for message in [
            init_message(&name, &system),
            Message::Register { profile: ada },
            Message::Register { profile: bob },
            Message::IngestBatch { acked_through: 0, parts: vec![(1, vec![(0, ada_read)])] },
            Message::IngestBatch { acked_through: 0, parts: vec![(2, vec![(0, bob_read)])] },
            Message::Shutdown,
        ] {
            privacy_interchange::write_frame(&mut input, &message.encode()).unwrap();
        }
        let mut output = Vec::new();
        let mut faults = WorkerFaults::default();
        faults.parse_arg("drop-ack=1").unwrap();
        run_worker(&mut &input[..], &mut output, faults).expect("worker runs cleanly");
        let mut replies = Vec::new();
        let mut reader = &output[..];
        while let Some(frame) = read_frame(&mut reader).unwrap() {
            replies.push(Message::decode(&frame).unwrap());
        }
        // Frame 1's ack was swallowed; frame 2's cumulative reply must carry
        // batch 1's alerts anyway, because the supervisor never confirmed it.
        assert_eq!(replies.len(), 2, "Ready plus exactly one AckThrough: {replies:?}");
        let Message::AckThrough { through: 2, alerts } = &replies[1] else {
            panic!("expected AckThrough through 2, got {:?}", replies[1]);
        };
        assert!(alerts.iter().any(|(batch, _, _)| *batch == 1));
        assert!(alerts.iter().any(|(batch, _, _)| *batch == 2));
    }

    #[test]
    fn fingerprint_mismatch_is_a_typed_state_failure() {
        let (name, system) = tiny_system();
        let Message::Init { model_psm, .. } = init_message(&name, &system) else { unreachable!() };
        let bad_init = Message::Init {
            worker_index: 0,
            owned_shards: vec![0],
            model_psm,
            fingerprint: 0xBAAD_F00D,
            checkpoint_path: None,
            resume: None,
            resume_through_batch: 0,
            resume_imports: 0,
        };
        let failure = run_script(vec![bad_init]).expect_err("mismatch must fail");
        assert!(matches!(failure, WorkerFailure::State(_)));
        assert_eq!(failure.exit_code(), exit::SNAPSHOT_FATAL);
        assert!(failure.to_string().contains("fingerprint mismatch"));
    }

    #[test]
    fn non_init_first_message_is_a_protocol_failure() {
        let failure = run_script(vec![Message::Checkpoint]).expect_err("must fail");
        assert!(matches!(failure, WorkerFailure::Protocol(_)));
        assert_eq!(failure.exit_code(), exit::PROTOCOL_FATAL);
    }

    #[test]
    fn eof_before_init_and_after_messages_is_clean() {
        assert!(run_script(vec![]).is_ok());
        let (name, system) = tiny_system();
        // No Shutdown: the input just ends. Clean exit.
        assert!(run_script(vec![init_message(&name, &system)]).is_ok());
    }

    #[test]
    fn fatal_message_precedes_error_exit() {
        let mut input = Vec::new();
        privacy_interchange::write_frame(&mut input, &Message::Checkpoint.encode()).unwrap();
        let mut output = Vec::new();
        let failure =
            run_worker(&mut &input[..], &mut output, WorkerFaults::default()).unwrap_err();
        let mut reader = &output[..];
        let frame = read_frame(&mut reader).unwrap().expect("a fatal frame");
        let Message::Fatal { code, message } = Message::decode(&frame).unwrap() else {
            panic!("expected Fatal");
        };
        assert_eq!(code, failure.exit_code() as u32);
        assert!(message.contains("protocol"));
    }
}
