//! The `privacy-shardd` worker: a shard-owning monitor process.
//!
//! One worker owns a subset of the monitor's `UserId`-hash shards. Its whole
//! life is a loop over framed [`Message`]s on stdin:
//!
//! 1. [`Init`](Message::Init) — parse the shipped `.psm` model, regenerate
//!    the LTS and its index, verify the **index fingerprint** against the
//!    supervisor's (a mismatch is a terminal, typed death: restarting cannot
//!    help), and resume from the carried snapshot if there is one, keeping
//!    only the owned shards.
//! 2. [`Ingest`](Message::Ingest) — feed each event through the monitor in
//!    stream order, tagging every raised alert with the event's position in
//!    the super-batch, and ack the batch with those alerts. Events for users
//!    the worker does not track are ignored, exactly as the in-process
//!    `IndexedMonitor` ignores
//!    unregistered users — this also makes replayed pre-handoff batches
//!    harmless after a shard has moved away.
//! 3. [`Checkpoint`](Message::Checkpoint) — write the monitor snapshot plus
//!    bookkeeping (covered super-batch, absorbed-import count) atomically
//!    through the [`CheckpointStore`].
//! 4. [`ExportShards`](Message::ExportShards) /
//!    [`ImportShards`](Message::ImportShards) — the two halves of a live
//!    shard handoff.
//!
//! The injected faults ([`WorkerFaults`], armed via `--fault` arguments) are
//! deliberately crude: `process::exit` mid-batch, a sleep before an ack, a
//! swallowed ack. Crude is the point — they model the failure, not a polite
//! simulation of it.

use crate::checkpoint::CheckpointStore;
use crate::exit;
use crate::fault::WorkerFaults;
use crate::wire::{encode_checkpoint, Message};
use privacy_interchange::{parse_document, read_frame, write_frame, FrameIoError};
use privacy_lts::LtsIndex;
use privacy_runtime::{Alert, IndexedMonitor, MonitorSnapshot};
use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

/// A typed worker failure, mapped onto the [`crate::exit`] taxonomy.
#[derive(Debug)]
pub enum WorkerFailure {
    /// A pipe or checkpoint-file I/O operation failed.
    Io(String),
    /// The supervisor broke the wire protocol (or the pipe carried garbage).
    Protocol(String),
    /// The model or snapshot could not establish monitor state: parse
    /// failure, LTS generation failure, fingerprint mismatch, rejected
    /// snapshot.
    State(String),
}

impl WorkerFailure {
    /// The process exit code this failure maps to.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            WorkerFailure::Io(_) => exit::IO_FATAL,
            WorkerFailure::Protocol(_) => exit::PROTOCOL_FATAL,
            WorkerFailure::State(_) => exit::SNAPSHOT_FATAL,
        }
    }
}

impl fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFailure::Io(detail) => write!(f, "i/o failure: {detail}"),
            WorkerFailure::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            WorkerFailure::State(detail) => write!(f, "cannot establish monitor state: {detail}"),
        }
    }
}

impl std::error::Error for WorkerFailure {}

struct WorkerState {
    monitor: IndexedMonitor,
    store: Option<CheckpointStore>,
    worker_index: u32,
    through_batch: u64,
    imports_absorbed: u64,
    events_seen: u64,
    ingests_seen: u64,
    faults: WorkerFaults,
}

fn next_message(input: &mut impl Read) -> Result<Option<Message>, WorkerFailure> {
    match read_frame(input) {
        Ok(None) => Ok(None),
        Ok(Some(frame)) => Message::decode(&frame)
            .map(Some)
            .map_err(|error| WorkerFailure::Protocol(format!("undecodable message: {error}"))),
        Err(FrameIoError::Io(error)) => {
            Err(WorkerFailure::Io(format!("reading command pipe: {error}")))
        }
        Err(FrameIoError::Codec(error)) => {
            Err(WorkerFailure::Protocol(format!("unreadable frame: {error}")))
        }
        // `FrameIoError` is non-exhaustive; treat future variants as I/O.
        Err(other) => Err(WorkerFailure::Io(format!("reading command pipe: {other}"))),
    }
}

fn send(output: &mut impl Write, message: &Message) -> Result<(), WorkerFailure> {
    // `write_frame` flushes, so a reply never sits in a stdout buffer while
    // the worker blocks on its next command (which would deadlock the
    // supervisor waiting for exactly that reply).
    write_frame(output, &message.encode())
        .map_err(|error| WorkerFailure::Io(format!("writing reply pipe: {error}")))
}

/// Runs the worker protocol over the given pipes until the supervisor sends
/// [`Shutdown`](Message::Shutdown) or closes its end.
///
/// On a typed failure a last [`Fatal`](Message::Fatal) message is written
/// best-effort before the error is returned, so the supervisor can log the
/// cause instead of just seeing the pipe close.
///
/// # Errors
///
/// Returns the [`WorkerFailure`] the caller should map to a process exit
/// code via [`WorkerFailure::exit_code`].
pub fn run_worker(
    input: &mut impl Read,
    output: &mut impl Write,
    faults: WorkerFaults,
) -> Result<(), WorkerFailure> {
    match serve(input, output, faults) {
        Ok(()) => Ok(()),
        Err(failure) => {
            let fatal =
                Message::Fatal { code: failure.exit_code() as u32, message: failure.to_string() };
            let _ = write_frame(output, &fatal.encode());
            Err(failure)
        }
    }
}

fn serve(
    input: &mut impl Read,
    output: &mut impl Write,
    faults: WorkerFaults,
) -> Result<(), WorkerFailure> {
    let Some(first) = next_message(input)? else {
        return Ok(()); // supervisor went away before init: nothing to do
    };
    let Message::Init {
        worker_index,
        owned_shards,
        model_psm,
        fingerprint,
        checkpoint_path,
        resume,
        resume_through_batch,
        resume_imports,
    } = first
    else {
        return Err(WorkerFailure::Protocol("first message must be Init".to_owned()));
    };

    let document = parse_document(&model_psm)
        .map_err(|error| WorkerFailure::State(format!("model does not parse: {error}")))?;
    let lts = document
        .system
        .generate_lts()
        .map_err(|error| WorkerFailure::State(format!("LTS generation failed: {error}")))?;
    let index = LtsIndex::build(&lts);
    if index.fingerprint() != fingerprint {
        return Err(WorkerFailure::State(format!(
            "index fingerprint mismatch: supervisor has {:#018x}, this model yields {:#018x}",
            fingerprint,
            index.fingerprint()
        )));
    }
    let index = Arc::new(index);
    let catalog = document.system.catalog().clone();
    let policy = document.system.policy().clone();

    let (mut monitor, resumed_users) = match resume {
        Some(bytes) => {
            let mut snapshot = MonitorSnapshot::from_bytes(&bytes)
                .map_err(|error| WorkerFailure::State(format!("resume snapshot: {error}")))?;
            snapshot.retain_shards(&owned_shards);
            let users = snapshot.user_count() as u64;
            let monitor = IndexedMonitor::resume_from(catalog, policy, index, &snapshot)
                .map_err(|error| WorkerFailure::State(format!("resume rejected: {error}")))?;
            (monitor, users)
        }
        None => (IndexedMonitor::new(catalog, policy, index), 0),
    };
    // Any pending alerts in the snapshot were acked before the checkpoint
    // was taken; draining them keeps future snapshots and acks disjoint.
    let _ = monitor.drain_alerts();

    let mut state = WorkerState {
        monitor,
        store: checkpoint_path.map(CheckpointStore::new),
        worker_index,
        through_batch: resume_through_batch,
        imports_absorbed: resume_imports,
        events_seen: 0,
        ingests_seen: 0,
        faults,
    };
    send(output, &Message::Ready { fingerprint, resumed_users })?;

    while let Some(message) = next_message(input)? {
        match message {
            Message::Register { profile } => {
                // Idempotent: a re-registration (restart replay, or a user
                // already restored from the snapshot) must not reset state.
                if !state.monitor.is_registered(profile.id()) {
                    state.monitor.register_user(&profile);
                }
            }
            Message::Ingest { batch, events } => handle_ingest(&mut state, output, batch, events)?,
            Message::Checkpoint => handle_checkpoint(&mut state, output)?,
            Message::ExportShards { shards } => {
                let exported = state.monitor.snapshot().extract_shards(&shards);
                for &shard in &shards {
                    state.monitor.remove_shard_users(shard);
                }
                send(output, &Message::ShardExport { snapshot: exported.to_bytes() })?;
            }
            Message::ImportShards { snapshot } => {
                let snapshot = MonitorSnapshot::from_bytes(&snapshot)
                    .map_err(|error| WorkerFailure::State(format!("import snapshot: {error}")))?;
                let users = state
                    .monitor
                    .absorb(&snapshot)
                    .map_err(|error| WorkerFailure::State(format!("import rejected: {error}")))?;
                let _ = state.monitor.drain_alerts();
                state.imports_absorbed += 1;
                send(output, &Message::Imported { users: users as u64 })?;
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(WorkerFailure::Protocol(format!(
                    "unexpected message after init: {other:?}"
                )))
            }
        }
    }
    Ok(())
}

fn handle_ingest(
    state: &mut WorkerState,
    output: &mut impl Write,
    batch: u64,
    events: Vec<(u32, privacy_runtime::Event)>,
) -> Result<(), WorkerFailure> {
    let mut alerts: Vec<(u32, Alert)> = Vec::new();
    for (position, event) in &events {
        for alert in state.monitor.observe(event) {
            alerts.push((*position, alert));
        }
        state.events_seen += 1;
        if let Some(threshold) = state.faults.kill_after_events {
            if state.events_seen >= threshold {
                // An injected crash: no ack, no cleanup, mid-batch.
                std::process::exit(exit::INJECTED_FAULT);
            }
        }
    }
    // observe() also accumulates the alerts internally; drain them so the
    // ack stream and future snapshots never carry an alert twice.
    let _ = state.monitor.drain_alerts();
    state.through_batch = batch;
    state.ingests_seen += 1;
    if let Some((threshold, millis)) = state.faults.stall_before_ack {
        if state.events_seen >= threshold {
            std::thread::sleep(std::time::Duration::from_millis(millis));
            state.faults.stall_before_ack = None;
        }
    }
    if state.faults.drop_ack == Some(state.ingests_seen) {
        return Ok(()); // injected lost ack: the batch was processed silently
    }
    send(output, &Message::Ack { batch, alerts })
}

fn handle_checkpoint(
    state: &mut WorkerState,
    output: &mut impl Write,
) -> Result<(), WorkerFailure> {
    if let Some(store) = &state.store {
        let snapshot = state.monitor.snapshot().to_bytes();
        let file = encode_checkpoint(
            state.worker_index,
            state.through_batch,
            state.imports_absorbed,
            &snapshot,
        );
        store.write(&file).map_err(|error| {
            WorkerFailure::Io(format!(
                "checkpoint write to `{}` failed: {error}",
                store.path().display()
            ))
        })?;
    }
    send(
        output,
        &Message::CheckpointDone {
            through_batch: state.through_batch,
            imports: state.imports_absorbed,
        },
    )
}

/// The `privacy-shardd` entry point: parses `--fault` switches, runs the
/// worker over stdin/stdout, and returns the process exit code.
#[must_use]
pub fn shardd_main(args: impl Iterator<Item = String>) -> i32 {
    let mut faults = WorkerFaults::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fault" => {
                let Some(spec) = args.next() else {
                    eprintln!("privacy-shardd: --fault needs a SPEC argument");
                    return exit::USAGE;
                };
                if let Err(error) = faults.parse_arg(&spec) {
                    eprintln!("privacy-shardd: {error}");
                    return exit::USAGE;
                }
            }
            "--help" | "-h" => {
                println!(
                    "privacy-shardd: shard-owning monitor worker; speaks framed messages on \
                     stdin/stdout.\nSpawned by the privacy-distrib supervisor — not meant to be \
                     run by hand.\n\nOptions:\n  --fault SPEC   arm an injected fault \
                     (kill-after-events=N, stall-before-ack=N:MS,\n                 drop-ack=B); \
                     test harness only\n  --help         this message\n\nExit codes: 0 ok, \
                     2 usage, 11 snapshot/model mismatch, 12 i/o failure,\n13 protocol \
                     violation, 101 injected fault."
                );
                return exit::OK;
            }
            other => {
                eprintln!("privacy-shardd: unknown argument `{other}` (try --help)");
                return exit::USAGE;
            }
        }
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = std::io::BufReader::new(stdin.lock());
    let mut output = stdout.lock();
    match run_worker(&mut input, &mut output, faults) {
        Ok(()) => exit::OK,
        Err(failure) => {
            eprintln!("privacy-shardd: {failure}");
            failure.exit_code()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_lts::ActionKind;
    use privacy_model::{Sensitivity, UserProfile};

    // A tiny synthetic model shared by the in-process worker tests (worker
    // processes in integration tests run under the dev profile, so model
    // size matters).
    fn tiny_system() -> (String, privacy_core::PrivacySystem) {
        use privacy_synth::{random_model, ModelGeneratorConfig};
        let config = ModelGeneratorConfig {
            actors: 3,
            fields: 4,
            datastores: 1,
            services: 2,
            flows_per_service: 3,
            grant_probability: 0.7,
            seed: 5,
            ..ModelGeneratorConfig::default()
        };
        let (catalog, dataflows, policy) = random_model(&config).expect("synth model");
        ("Tiny".to_owned(), privacy_core::PrivacySystem::new(catalog, dataflows, policy))
    }

    fn run_script(messages: Vec<Message>) -> Result<Vec<Message>, WorkerFailure> {
        let mut input = Vec::new();
        for message in &messages {
            privacy_interchange::write_frame(&mut input, &message.encode()).unwrap();
        }
        let mut output = Vec::new();
        run_worker(&mut &input[..], &mut output, WorkerFaults::default())?;
        let mut replies = Vec::new();
        let mut reader = &output[..];
        while let Some(frame) = read_frame(&mut reader).unwrap() {
            replies.push(Message::decode(&frame).unwrap());
        }
        Ok(replies)
    }

    fn init_message(name: &str, system: &privacy_core::PrivacySystem) -> Message {
        let lts = system.generate_lts().unwrap();
        let fingerprint = LtsIndex::build(&lts).fingerprint();
        Message::Init {
            worker_index: 0,
            owned_shards: (0..privacy_runtime::SHARD_COUNT as u32).collect(),
            model_psm: privacy_interchange::render_system(name, system),
            fingerprint,
            checkpoint_path: None,
            resume: None,
            resume_through_batch: 0,
            resume_imports: 0,
        }
    }

    // The Init path re-parses the rendered model and recomputes the index
    // fingerprint, so a passing run also proves the `.psm` round trip
    // preserves the fingerprint — the assumption model shipping rests on.
    #[test]
    fn worker_initialises_ingests_and_acks() {
        let (name, system) = tiny_system();
        let service = system.catalog().services().next().unwrap().id().clone();
        let actor = system.catalog().identifying_actors().next().unwrap().id().clone();
        let field = system.catalog().fields().next().unwrap().id().clone();
        let profile = UserProfile::new("ada")
            .consents_to(service.clone())
            .with_sensitivity(field.clone(), Sensitivity::new(0.9).unwrap());
        let event = privacy_runtime::Event::new(
            0,
            "ada",
            service,
            actor,
            ActionKind::Read,
            [field],
            None,
            true,
        );
        let replies = run_script(vec![
            init_message(&name, &system),
            Message::Register { profile },
            Message::Ingest { batch: 1, events: vec![(0, event)] },
            Message::Shutdown,
        ])
        .expect("worker runs cleanly");
        assert!(matches!(replies[0], Message::Ready { resumed_users: 0, .. }));
        let Message::Ack { batch: 1, .. } = &replies[1] else {
            panic!("expected an ack, got {:?}", replies[1]);
        };
    }

    #[test]
    fn fingerprint_mismatch_is_a_typed_state_failure() {
        let (name, system) = tiny_system();
        let Message::Init { model_psm, .. } = init_message(&name, &system) else { unreachable!() };
        let bad_init = Message::Init {
            worker_index: 0,
            owned_shards: vec![0],
            model_psm,
            fingerprint: 0xBAAD_F00D,
            checkpoint_path: None,
            resume: None,
            resume_through_batch: 0,
            resume_imports: 0,
        };
        let failure = run_script(vec![bad_init]).expect_err("mismatch must fail");
        assert!(matches!(failure, WorkerFailure::State(_)));
        assert_eq!(failure.exit_code(), exit::SNAPSHOT_FATAL);
        assert!(failure.to_string().contains("fingerprint mismatch"));
    }

    #[test]
    fn non_init_first_message_is_a_protocol_failure() {
        let failure = run_script(vec![Message::Checkpoint]).expect_err("must fail");
        assert!(matches!(failure, WorkerFailure::Protocol(_)));
        assert_eq!(failure.exit_code(), exit::PROTOCOL_FATAL);
    }

    #[test]
    fn eof_before_init_and_after_messages_is_clean() {
        assert!(run_script(vec![]).is_ok());
        let (name, system) = tiny_system();
        // No Shutdown: the input just ends. Clean exit.
        assert!(run_script(vec![init_message(&name, &system)]).is_ok());
    }

    #[test]
    fn fatal_message_precedes_error_exit() {
        let mut input = Vec::new();
        privacy_interchange::write_frame(&mut input, &Message::Checkpoint.encode()).unwrap();
        let mut output = Vec::new();
        let failure =
            run_worker(&mut &input[..], &mut output, WorkerFaults::default()).unwrap_err();
        let mut reader = &output[..];
        let frame = read_frame(&mut reader).unwrap().expect("a fatal frame");
        let Message::Fatal { code, message } = Message::decode(&frame).unwrap() else {
            panic!("expected Fatal");
        };
        assert_eq!(code, failure.exit_code() as u32);
        assert!(message.contains("protocol"));
    }
}
