//! `privacy-shardd`: one shard-owning monitor worker, spawned and driven by
//! [`privacy_distrib::DistributedMonitor`] over framed stdin/stdout pipes.
//!
//! Not meant to be run by hand; see `privacy-shardd --help` for the exit
//! code taxonomy and the fault-injection switches the differential harness
//! uses.

fn main() {
    std::process::exit(privacy_distrib::worker::shardd_main(std::env::args().skip(1)));
}
