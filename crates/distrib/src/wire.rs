//! The supervisor ⇄ worker **wire protocol** and the checkpoint file format.
//!
//! Every message is one sealed [`privacy_interchange::binary`] frame of kind
//! `PDMG` carried over the worker's stdin/stdout pipes with
//! [`write_frame`](privacy_interchange::write_frame) /
//! [`read_frame`](privacy_interchange::read_frame). The envelope gives the
//! protocol what a pipe does not: integrity (trailing checksum), typed
//! version negotiation, and exact message boundaries — a killed worker can
//! only ever produce a *truncated frame*, never a silently misparsed one.
//!
//! Design choices worth naming:
//!
//! * **Models travel as `.psm` text.** The supervisor renders the system
//!   with [`render_system`](privacy_interchange::render_system) and the
//!   worker re-parses and re-generates the LTS and its index, then verifies
//!   the **index fingerprint** against the supervisor's. The model is the
//!   contract; shipping the source text reuses the round-trip-tested
//!   interchange format instead of inventing a second model codec.
//! * **Snapshots travel as opaque blobs.** A
//!   [`MonitorSnapshot`](privacy_runtime::MonitorSnapshot) already has
//!   its own sealed frame; resume payloads, shard exports and checkpoint
//!   files nest those bytes whole (the outer checksum covers them again).
//! * **Events carry explicit batch positions.** The supervisor splits each
//!   super-batch across owners; the position (`u32` index within the
//!   super-batch) rides with every event so the merged alert stream can be
//!   re-sorted into exactly the order the in-process
//!   [`IndexedMonitor`](privacy_runtime::IndexedMonitor) would emit.
//!
//! # Protocol versions
//!
//! Version 2 (current) adds the coalesced data plane:
//!
//! * [`IngestBatch`](Message::IngestBatch) carries **many** sub-batches in
//!   one frame — one length, one checksum, one pipe write — instead of a
//!   frame per sub-batch. It piggybacks the supervisor's acknowledged
//!   high-water mark so the worker can prune its retained alert buffer
//!   without any extra control frame.
//! * [`AckThrough`](Message::AckThrough) acknowledges **cumulatively**: one
//!   ack covers every sub-batch up to `through`, carrying the retained
//!   alerts of all batches the supervisor has not yet confirmed. A single
//!   lost ack therefore self-heals on the next one instead of forcing a
//!   restart.
//!
//! Version 1 frames are still decoded (a v1 peer's `Ingest`/`Ack` traffic
//! remains readable), but the v2-only tags are rejected with a typed
//! [`CodecError::Malformed`] when they arrive in a v1 frame, and frames of
//! any *other* version are rejected with
//! [`CodecError::UnsupportedVersion`] — a v1↔v2 mismatch can never be
//! silently misparsed.

use privacy_interchange::binary::{CodecError, Decoder, Encoder};
use privacy_lts::ActionKind;
use privacy_model::{
    Consent, DatastoreId, FieldId, RiskLevel, Sensitivity, SensitivityProfile, ServiceId, UserId,
    UserProfile,
};
use privacy_runtime::{Alert, Event};

/// Artefact kind of every supervisor ⇄ worker message frame.
pub const MESSAGE_KIND: [u8; 4] = *b"PDMG";
/// Current message protocol version (coalesced frames, cumulative acks).
pub const MESSAGE_VERSION: u32 = 2;
/// The previous protocol version, still accepted on decode.
pub const MESSAGE_VERSION_V1: u32 = 1;
/// Artefact kind of the worker checkpoint file.
pub const CHECKPOINT_KIND: [u8; 4] = *b"PDCP";
/// Current checkpoint file version. Version 3 carries sparse version-3
/// monitor snapshots (the bookkeeping layout is unchanged); version 2
/// (word-folded checksum, dense snapshots) is still decoded via
/// [`CHECKPOINT_VERSION_V2`], so a worker restarting across the v3
/// deployment resumes from its existing checkpoint and writes v3 from then
/// on. A version-1 file left on disk by an older build is rejected as
/// unsupported, which the loader reports as a skipped generation rather
/// than resuming from it.
pub const CHECKPOINT_VERSION: u32 = 3;
/// The previous checkpoint file version, still accepted on decode.
pub const CHECKPOINT_VERSION_V2: u32 = 2;

/// One protocol message, in either direction.
///
/// Supervisor → worker: [`Init`](Message::Init), [`Register`](Message::Register),
/// [`Ingest`](Message::Ingest), [`Checkpoint`](Message::Checkpoint),
/// [`ExportShards`](Message::ExportShards), [`ImportShards`](Message::ImportShards),
/// [`Shutdown`](Message::Shutdown).
///
/// Worker → supervisor: [`Ready`](Message::Ready), [`Ack`](Message::Ack),
/// [`CheckpointDone`](Message::CheckpointDone), [`ShardExport`](Message::ShardExport),
/// [`Imported`](Message::Imported), [`Fatal`](Message::Fatal).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// First message after spawn: everything the worker needs to stand up.
    Init {
        /// The worker's slot index in the supervisor's fleet.
        worker_index: u32,
        /// The monitor shards this worker owns.
        owned_shards: Vec<u32>,
        /// The privacy model as `.psm` source text.
        model_psm: String,
        /// The supervisor's design-time index fingerprint; the worker must
        /// reproduce it from the model or die with a typed mismatch.
        fingerprint: u64,
        /// Where the worker writes its checkpoints (`None` disables them).
        checkpoint_path: Option<String>,
        /// Snapshot bytes to resume from (a sealed `MonitorSnapshot` frame),
        /// or `None` for a fresh start.
        resume: Option<Vec<u8>>,
        /// The super-batch id the resume snapshot covers through (0 when
        /// starting fresh); the worker reports it back in
        /// [`CheckpointDone`](Message::CheckpointDone) bookkeeping.
        resume_through_batch: u64,
        /// How many shard-handoff imports the resume snapshot already
        /// contains (0 when starting fresh). The supervisor uses the import
        /// count persisted in each checkpoint to resend exactly the imports
        /// a resumed snapshot is missing — no more (which would regress the
        /// imported users to their handoff-time state) and no fewer (which
        /// would lose the handoff entirely).
        resume_imports: u64,
    },
    /// Registers (or re-registers, idempotently) one user profile.
    Register {
        /// The profile to track.
        profile: UserProfile,
    },
    /// One sub-batch of a super-batch, in stream order (v1 data plane; v2
    /// peers still accept it, one batch per frame).
    Ingest {
        /// Super-batch id (1-based, strictly increasing).
        batch: u64,
        /// Events with their positions within the super-batch.
        events: Vec<(u32, Event)>,
    },
    /// Several sub-batches coalesced into one frame (v2 data plane): one
    /// length, one checksum, one pipe write for many batches. The worker
    /// processes the parts in order and replies with a single cumulative
    /// [`AckThrough`](Message::AckThrough).
    IngestBatch {
        /// The supervisor's acknowledged high-water mark for this worker:
        /// every batch id `<= acked_through` has been received and merged,
        /// so the worker may prune retained alerts up to it.
        acked_through: u64,
        /// `(super-batch id, events)` in stream order; ids are strictly
        /// increasing within a frame.
        parts: Vec<(u64, Vec<(u32, Event)>)>,
    },
    /// Asks the worker to checkpoint its state atomically.
    Checkpoint,
    /// Asks the worker to export the given shards (handoff source side).
    /// The worker stops tracking the exported users.
    ExportShards {
        /// Shards to extract and drop.
        shards: Vec<u32>,
    },
    /// Delivers exported shard state to its new owner (handoff target side).
    ImportShards {
        /// A sealed `MonitorSnapshot` frame to absorb.
        snapshot: Vec<u8>,
    },
    /// Asks the worker to exit cleanly.
    Shutdown,
    /// Worker response to [`Init`](Message::Init): it stood up.
    Ready {
        /// The index fingerprint the worker computed from the model.
        fingerprint: u64,
        /// How many users the resume snapshot restored.
        resumed_users: u64,
    },
    /// Acknowledges one ingest: the batch is durable in worker memory and
    /// these are the alerts it raised (v1 data plane).
    Ack {
        /// The super-batch id being acknowledged.
        batch: u64,
        /// Alerts raised by this sub-batch, tagged with the super-batch
        /// positions of the events that raised them.
        alerts: Vec<(u32, Alert)>,
    },
    /// Cumulative acknowledgement (v2 data plane): every sub-batch with id
    /// `<= through` has been processed. Carries the worker's whole retained
    /// alert buffer — every alert the supervisor has not yet confirmed via
    /// [`IngestBatch::acked_through`](Message::IngestBatch) — so a lost ack
    /// self-heals: the next `AckThrough` re-carries the dropped alerts and
    /// the supervisor deduplicates by batch id.
    AckThrough {
        /// The highest sub-batch id processed so far.
        through: u64,
        /// Retained alerts as `(super-batch id, position, alert)`, in raise
        /// order within each batch.
        alerts: Vec<(u64, u32, Alert)>,
    },
    /// Worker response to [`Checkpoint`](Message::Checkpoint).
    CheckpointDone {
        /// The super-batch id the checkpoint covers through.
        through_batch: u64,
        /// How many shard-handoff imports the checkpoint contains.
        imports: u64,
    },
    /// Worker response to [`ExportShards`](Message::ExportShards).
    ShardExport {
        /// The extracted state as a sealed `MonitorSnapshot` frame.
        snapshot: Vec<u8>,
    },
    /// Worker response to [`ImportShards`](Message::ImportShards).
    Imported {
        /// How many users were absorbed.
        users: u64,
    },
    /// The worker is about to exit with a fatal error; a last diagnostic
    /// before the pipe closes.
    Fatal {
        /// The process exit code the worker will die with (see [`crate::exit`]).
        code: u32,
        /// Human-readable cause.
        message: String,
    },
}

const TAG_INIT: u8 = 1;
const TAG_REGISTER: u8 = 2;
const TAG_INGEST: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;
const TAG_EXPORT_SHARDS: u8 = 5;
const TAG_IMPORT_SHARDS: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
const TAG_INGEST_BATCH: u8 = 8; // v2-only
const TAG_READY: u8 = 16;
const TAG_ACK: u8 = 17;
const TAG_CHECKPOINT_DONE: u8 = 18;
const TAG_SHARD_EXPORT: u8 = 19;
const TAG_IMPORTED: u8 = 20;
const TAG_FATAL: u8 = 21;
const TAG_ACK_THROUGH: u8 = 22; // v2-only

fn put_u32_list(encoder: &mut Encoder, values: &[u32]) {
    encoder.u32(values.len() as u32);
    for &value in values {
        encoder.u32(value);
    }
}

fn get_u32_list(decoder: &mut Decoder<'_>) -> Result<Vec<u32>, CodecError> {
    let len = decoder.u32()? as usize;
    let mut values = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        values.push(decoder.u32()?);
    }
    Ok(values)
}

fn put_opt_bytes(encoder: &mut Encoder, value: Option<&[u8]>) {
    match value {
        Some(bytes) => {
            encoder.bool(true);
            encoder.bytes(bytes);
        }
        None => encoder.bool(false),
    }
}

fn get_opt_bytes(decoder: &mut Decoder<'_>) -> Result<Option<Vec<u8>>, CodecError> {
    Ok(if decoder.bool()? { Some(decoder.bytes()?) } else { None })
}

fn put_event(encoder: &mut Encoder, event: &Event) {
    encoder.u64(event.sequence());
    encoder.str(event.user().as_str());
    encoder.str(event.service().as_str());
    encoder.str(event.actor().as_str());
    encoder.u8(event.action().table_index() as u8);
    encoder.bool(event.permitted());
    match event.datastore() {
        Some(store) => {
            encoder.bool(true);
            encoder.str(store.as_str());
        }
        None => encoder.bool(false),
    }
    encoder.u32(event.fields().len() as u32);
    for field in event.fields() {
        encoder.str(field.as_str());
    }
}

fn get_event(decoder: &mut Decoder<'_>) -> Result<Event, CodecError> {
    let sequence = decoder.u64()?;
    let user = decoder.string()?;
    let service = decoder.string()?;
    let actor = decoder.string()?;
    let action_index = decoder.u8()? as usize;
    let action =
        ActionKind::ALL.get(action_index).copied().ok_or_else(|| CodecError::Malformed {
            what: "event action",
            detail: format!("action index {action_index} is out of range"),
        })?;
    let permitted = decoder.bool()?;
    let datastore = if decoder.bool()? { Some(DatastoreId::new(decoder.string()?)) } else { None };
    let field_count = decoder.u32()? as usize;
    let mut fields = Vec::with_capacity(field_count.min(4096));
    for _ in 0..field_count {
        fields.push(FieldId::new(decoder.string()?));
    }
    Ok(Event::new(sequence, user, service, actor, action, fields, datastore, permitted))
}

fn put_profile(encoder: &mut Encoder, profile: &UserProfile) {
    encoder.str(profile.id().as_str());
    let services: Vec<&ServiceId> = profile.consent().services().collect();
    encoder.u32(services.len() as u32);
    for service in services {
        encoder.str(service.as_str());
    }
    let sensitivities = profile.sensitivities();
    encoder.f64(sensitivities.default_sensitivity().value());
    let entries: Vec<(&FieldId, Sensitivity)> = sensitivities.iter().collect();
    encoder.u32(entries.len() as u32);
    for (field, sensitivity) in entries {
        encoder.str(field.as_str());
        encoder.f64(sensitivity.value());
    }
}

fn get_sensitivity(decoder: &mut Decoder<'_>) -> Result<Sensitivity, CodecError> {
    let value = decoder.f64()?;
    Sensitivity::new(value)
        .map_err(|error| CodecError::Malformed { what: "sensitivity", detail: error.to_string() })
}

fn get_profile(decoder: &mut Decoder<'_>) -> Result<UserProfile, CodecError> {
    let id = decoder.string()?;
    let service_count = decoder.u32()? as usize;
    let mut services = Vec::with_capacity(service_count.min(4096));
    for _ in 0..service_count {
        services.push(ServiceId::new(decoder.string()?));
    }
    let mut sensitivities = SensitivityProfile::with_default(get_sensitivity(decoder)?);
    let entry_count = decoder.u32()? as usize;
    for _ in 0..entry_count {
        let field = FieldId::new(decoder.string()?);
        sensitivities.set(field, get_sensitivity(decoder)?);
    }
    Ok(UserProfile::new(id).with_consent(Consent::to(services)).with_sensitivities(sensitivities))
}

fn put_alert(encoder: &mut Encoder, alert: &Alert) {
    encoder.u64(alert.sequence());
    encoder.str(alert.user().as_str());
    encoder.u8(alert.level().index() as u8);
    encoder.str(alert.message());
}

fn get_alert(decoder: &mut Decoder<'_>) -> Result<Alert, CodecError> {
    let sequence = decoder.u64()?;
    let user = UserId::new(decoder.string()?);
    let level_index = decoder.u8()? as usize;
    let level = RiskLevel::from_index(level_index).ok_or_else(|| CodecError::Malformed {
        what: "alert risk level",
        detail: format!("risk-level index {level_index} is out of range"),
    })?;
    let message = decoder.string()?;
    Ok(Alert::from_parts(sequence, user, level, message))
}

impl Message {
    /// Seals the message into one wire frame at the current protocol
    /// version, ready for [`write_frame`](privacy_interchange::write_frame).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.encode_at(MESSAGE_VERSION)
    }

    /// Seals the message into a frame stamped with an explicit protocol
    /// `version` — the compatibility seam: v1 frames written by an old peer
    /// are reproduced by `encode_at(MESSAGE_VERSION_V1)` in tests, and a
    /// v2-only message encoded at v1 yields exactly the mismatched frame a
    /// v1↔v2 deployment skew would produce (which [`Message::decode`]
    /// rejects with a typed error).
    #[must_use]
    pub fn encode_at(&self, version: u32) -> Vec<u8> {
        let mut encoder = Encoder::new(MESSAGE_KIND, version);
        match self {
            Message::Init {
                worker_index,
                owned_shards,
                model_psm,
                fingerprint,
                checkpoint_path,
                resume,
                resume_through_batch,
                resume_imports,
            } => {
                encoder.u8(TAG_INIT);
                encoder.u32(*worker_index);
                put_u32_list(&mut encoder, owned_shards);
                encoder.str(model_psm);
                encoder.u64(*fingerprint);
                match checkpoint_path {
                    Some(path) => {
                        encoder.bool(true);
                        encoder.str(path);
                    }
                    None => encoder.bool(false),
                }
                put_opt_bytes(&mut encoder, resume.as_deref());
                encoder.u64(*resume_through_batch);
                encoder.u64(*resume_imports);
            }
            Message::Register { profile } => {
                encoder.u8(TAG_REGISTER);
                put_profile(&mut encoder, profile);
            }
            Message::Ingest { batch, events } => {
                encoder.u8(TAG_INGEST);
                encoder.u64(*batch);
                encoder.u32(events.len() as u32);
                for (position, event) in events {
                    encoder.u32(*position);
                    put_event(&mut encoder, event);
                }
            }
            Message::IngestBatch { acked_through, parts } => {
                encoder.u8(TAG_INGEST_BATCH);
                encoder.u64(*acked_through);
                encoder.u32(parts.len() as u32);
                for (batch, events) in parts {
                    encoder.u64(*batch);
                    encoder.u32(events.len() as u32);
                    for (position, event) in events {
                        encoder.u32(*position);
                        put_event(&mut encoder, event);
                    }
                }
            }
            Message::Checkpoint => encoder.u8(TAG_CHECKPOINT),
            Message::ExportShards { shards } => {
                encoder.u8(TAG_EXPORT_SHARDS);
                put_u32_list(&mut encoder, shards);
            }
            Message::ImportShards { snapshot } => {
                encoder.u8(TAG_IMPORT_SHARDS);
                encoder.bytes(snapshot);
            }
            Message::Shutdown => encoder.u8(TAG_SHUTDOWN),
            Message::Ready { fingerprint, resumed_users } => {
                encoder.u8(TAG_READY);
                encoder.u64(*fingerprint);
                encoder.u64(*resumed_users);
            }
            Message::Ack { batch, alerts } => {
                encoder.u8(TAG_ACK);
                encoder.u64(*batch);
                encoder.u32(alerts.len() as u32);
                for (position, alert) in alerts {
                    encoder.u32(*position);
                    put_alert(&mut encoder, alert);
                }
            }
            Message::AckThrough { through, alerts } => {
                encoder.u8(TAG_ACK_THROUGH);
                encoder.u64(*through);
                encoder.u32(alerts.len() as u32);
                for (batch, position, alert) in alerts {
                    encoder.u64(*batch);
                    encoder.u32(*position);
                    put_alert(&mut encoder, alert);
                }
            }
            Message::CheckpointDone { through_batch, imports } => {
                encoder.u8(TAG_CHECKPOINT_DONE);
                encoder.u64(*through_batch);
                encoder.u64(*imports);
            }
            Message::ShardExport { snapshot } => {
                encoder.u8(TAG_SHARD_EXPORT);
                encoder.bytes(snapshot);
            }
            Message::Imported { users } => {
                encoder.u8(TAG_IMPORTED);
                encoder.u64(*users);
            }
            Message::Fatal { code, message } => {
                encoder.u8(TAG_FATAL);
                encoder.u32(*code);
                encoder.str(message);
            }
        }
        encoder.finish()
    }

    /// Opens and decodes one wire frame, accepting the current protocol
    /// version and [`MESSAGE_VERSION_V1`].
    ///
    /// # Errors
    ///
    /// Returns the typed [`CodecError`] for a frame of the wrong kind,
    /// a version that is neither 1 nor 2, corruption anywhere, an unknown
    /// message tag, a v2-only tag inside a v1 frame, or any field that
    /// decodes to an impossible value.
    pub fn decode(frame: &[u8]) -> Result<Message, CodecError> {
        let (mut decoder, version) = match Decoder::new(frame, MESSAGE_KIND, MESSAGE_VERSION) {
            Ok(decoder) => (decoder, MESSAGE_VERSION),
            Err(CodecError::UnsupportedVersion { found, .. }) if found == MESSAGE_VERSION_V1 => {
                (Decoder::new(frame, MESSAGE_KIND, MESSAGE_VERSION_V1)?, MESSAGE_VERSION_V1)
            }
            Err(error) => return Err(error),
        };
        let tag = decoder.u8()?;
        if version < MESSAGE_VERSION && matches!(tag, TAG_INGEST_BATCH | TAG_ACK_THROUGH) {
            // A v1 peer can never have *sent* these; a v1-stamped frame
            // carrying them is a version-skewed (or corrupted) sender.
            return Err(CodecError::Malformed {
                what: "message tag",
                detail: format!(
                    "message tag {tag} (coalesced data plane) requires protocol version \
                     {MESSAGE_VERSION}, but the frame is version {version}"
                ),
            });
        }
        let message = match tag {
            TAG_INIT => {
                let worker_index = decoder.u32()?;
                let owned_shards = get_u32_list(&mut decoder)?;
                let model_psm = decoder.string()?;
                let fingerprint = decoder.u64()?;
                let checkpoint_path = if decoder.bool()? { Some(decoder.string()?) } else { None };
                let resume = get_opt_bytes(&mut decoder)?;
                let resume_through_batch = decoder.u64()?;
                let resume_imports = decoder.u64()?;
                Message::Init {
                    worker_index,
                    owned_shards,
                    model_psm,
                    fingerprint,
                    checkpoint_path,
                    resume,
                    resume_through_batch,
                    resume_imports,
                }
            }
            TAG_REGISTER => Message::Register { profile: get_profile(&mut decoder)? },
            TAG_INGEST => {
                let batch = decoder.u64()?;
                let count = decoder.u32()? as usize;
                let mut events = Vec::with_capacity(count.min(65_536));
                for _ in 0..count {
                    let position = decoder.u32()?;
                    events.push((position, get_event(&mut decoder)?));
                }
                Message::Ingest { batch, events }
            }
            TAG_INGEST_BATCH => {
                let acked_through = decoder.u64()?;
                let part_count = decoder.u32()? as usize;
                let mut parts = Vec::with_capacity(part_count.min(4096));
                for _ in 0..part_count {
                    let batch = decoder.u64()?;
                    let count = decoder.u32()? as usize;
                    let mut events = Vec::with_capacity(count.min(65_536));
                    for _ in 0..count {
                        let position = decoder.u32()?;
                        events.push((position, get_event(&mut decoder)?));
                    }
                    parts.push((batch, events));
                }
                Message::IngestBatch { acked_through, parts }
            }
            TAG_CHECKPOINT => Message::Checkpoint,
            TAG_EXPORT_SHARDS => Message::ExportShards { shards: get_u32_list(&mut decoder)? },
            TAG_IMPORT_SHARDS => Message::ImportShards { snapshot: decoder.bytes()? },
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_READY => {
                Message::Ready { fingerprint: decoder.u64()?, resumed_users: decoder.u64()? }
            }
            TAG_ACK => {
                let batch = decoder.u64()?;
                let count = decoder.u32()? as usize;
                let mut alerts = Vec::with_capacity(count.min(65_536));
                for _ in 0..count {
                    let position = decoder.u32()?;
                    alerts.push((position, get_alert(&mut decoder)?));
                }
                Message::Ack { batch, alerts }
            }
            TAG_ACK_THROUGH => {
                let through = decoder.u64()?;
                let count = decoder.u32()? as usize;
                let mut alerts = Vec::with_capacity(count.min(65_536));
                for _ in 0..count {
                    let batch = decoder.u64()?;
                    let position = decoder.u32()?;
                    alerts.push((batch, position, get_alert(&mut decoder)?));
                }
                Message::AckThrough { through, alerts }
            }
            TAG_CHECKPOINT_DONE => {
                Message::CheckpointDone { through_batch: decoder.u64()?, imports: decoder.u64()? }
            }
            TAG_SHARD_EXPORT => Message::ShardExport { snapshot: decoder.bytes()? },
            TAG_IMPORTED => Message::Imported { users: decoder.u64()? },
            TAG_FATAL => Message::Fatal { code: decoder.u32()?, message: decoder.string()? },
            other => {
                return Err(CodecError::Malformed {
                    what: "message tag",
                    detail: format!("unknown message tag {other}"),
                })
            }
        };
        decoder.finish()?;
        Ok(message)
    }
}

/// Seals a worker checkpoint file: worker index, the super-batch the state
/// covers through, the number of shard-handoff imports it contains, and the
/// monitor snapshot as an opaque nested frame.
#[must_use]
pub fn encode_checkpoint(
    worker_index: u32,
    through_batch: u64,
    imports: u64,
    snapshot: &[u8],
) -> Vec<u8> {
    encode_checkpoint_at(CHECKPOINT_VERSION, worker_index, through_batch, imports, snapshot)
}

/// [`encode_checkpoint`] at an explicit file version — the compatibility
/// seam: tests use it to produce old-version checkpoint files and prove
/// current readers still accept them. The bookkeeping layout is identical
/// across v2/v3; only the version stamp (and the snapshot format the nested
/// blob is expected to carry) differs.
#[must_use]
pub fn encode_checkpoint_at(
    version: u32,
    worker_index: u32,
    through_batch: u64,
    imports: u64,
    snapshot: &[u8],
) -> Vec<u8> {
    let mut encoder = Encoder::new(CHECKPOINT_KIND, version);
    encoder.u32(worker_index);
    encoder.u64(through_batch);
    encoder.u64(imports);
    encoder.bytes(snapshot);
    encoder.finish()
}

/// Opens a worker checkpoint file sealed by [`encode_checkpoint`] — current
/// ([`CHECKPOINT_VERSION`]) or previous ([`CHECKPOINT_VERSION_V2`]) version;
/// the nested snapshot blob is passed through opaquely, and
/// `MonitorSnapshot::from_bytes` applies its own dual-version handling.
///
/// The outer checksum covers the nested snapshot bytes too, so corruption
/// *anywhere* in the file — header, bookkeeping, or snapshot — surfaces here
/// as a typed error before any state is trusted.
///
/// # Errors
///
/// Returns the typed [`CodecError`] describing the first problem with the
/// envelope or the bookkeeping fields.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointFile, CodecError> {
    let mut decoder = match Decoder::new(bytes, CHECKPOINT_KIND, CHECKPOINT_VERSION) {
        Ok(decoder) => decoder,
        Err(CodecError::UnsupportedVersion { found, .. }) if found == CHECKPOINT_VERSION_V2 => {
            Decoder::new(bytes, CHECKPOINT_KIND, CHECKPOINT_VERSION_V2)?
        }
        Err(error) => return Err(error),
    };
    let worker_index = decoder.u32()?;
    let through_batch = decoder.u64()?;
    let imports = decoder.u64()?;
    let snapshot = decoder.bytes()?;
    decoder.finish()?;
    Ok(CheckpointFile { worker_index, through_batch, imports, snapshot })
}

/// The decoded contents of a worker checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFile {
    /// The worker slot that wrote the checkpoint.
    pub worker_index: u32,
    /// The super-batch id the state covers through.
    pub through_batch: u64,
    /// The number of shard-handoff imports the state contains.
    pub imports: u64,
    /// The nested, sealed `MonitorSnapshot` frame.
    pub snapshot: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::Sensitivity;

    fn sample_event(seq: u64, pos: u32) -> (u32, Event) {
        let event = Event::new(
            seq,
            format!("user-{seq}"),
            "MedicalService",
            "Doctor",
            ActionKind::ALL[(seq as usize) % ActionKind::ALL.len()],
            [FieldId::new("Diagnosis"), FieldId::new("Name")],
            if seq.is_multiple_of(2) { Some(DatastoreId::new("EHR")) } else { None },
            !seq.is_multiple_of(3),
        );
        (pos, event)
    }

    fn sample_profile() -> UserProfile {
        let mut sensitivities = SensitivityProfile::with_default(Sensitivity::new(0.25).unwrap());
        sensitivities.set(FieldId::new("Diagnosis"), Sensitivity::new(0.9).unwrap());
        sensitivities.set(FieldId::new("Name"), Sensitivity::new(0.1).unwrap());
        UserProfile::new("alice")
            .with_consent(Consent::to([ServiceId::new("MedicalService"), ServiceId::new("Lab")]))
            .with_sensitivities(sensitivities)
    }

    fn sample_alert(seq: u64) -> (u32, Alert) {
        (
            seq as u32,
            Alert::from_parts(
                seq,
                UserId::new("alice"),
                RiskLevel::from_index(2).unwrap(),
                format!("risk at #{seq}"),
            ),
        )
    }

    #[test]
    fn every_message_round_trips() {
        let messages = vec![
            Message::Init {
                worker_index: 3,
                owned_shards: vec![0, 5, 31],
                model_psm: "system \"Demo\"\n".to_owned(),
                fingerprint: 0xDEAD_BEEF_1234_5678,
                checkpoint_path: Some("/tmp/ckpt/worker-3.ckpt".to_owned()),
                resume: Some(vec![1, 2, 3, 4]),
                resume_through_batch: 17,
                resume_imports: 2,
            },
            Message::Init {
                worker_index: 0,
                owned_shards: vec![],
                model_psm: String::new(),
                fingerprint: 0,
                checkpoint_path: None,
                resume: None,
                resume_through_batch: 0,
                resume_imports: 0,
            },
            Message::Register { profile: sample_profile() },
            Message::Ingest {
                batch: 9,
                events: (0..5).map(|i| sample_event(100 + i, i as u32 * 2)).collect(),
            },
            Message::IngestBatch {
                acked_through: 7,
                parts: vec![
                    (8, (0..3).map(|i| sample_event(200 + i, i as u32)).collect()),
                    (9, Vec::new()),
                    (10, (0..2).map(|i| sample_event(300 + i, 5 + i as u32)).collect()),
                ],
            },
            Message::IngestBatch { acked_through: 0, parts: Vec::new() },
            Message::Checkpoint,
            Message::ExportShards { shards: vec![7, 8] },
            Message::ImportShards { snapshot: vec![9; 64] },
            Message::Shutdown,
            Message::Ready { fingerprint: 42, resumed_users: 7 },
            Message::Ack { batch: 9, alerts: (0..3).map(sample_alert).collect() },
            Message::AckThrough {
                through: 10,
                alerts: (0..3)
                    .map(|i| {
                        let (position, alert) = sample_alert(i);
                        (8 + i, position, alert)
                    })
                    .collect(),
            },
            Message::AckThrough { through: 0, alerts: Vec::new() },
            Message::CheckpointDone { through_batch: 9, imports: 1 },
            Message::ShardExport { snapshot: vec![1; 10] },
            Message::Imported { users: 4 },
            Message::Fatal { code: 11, message: "fingerprint mismatch".to_owned() },
        ];
        for message in messages {
            let frame = message.encode();
            let decoded = Message::decode(&frame).expect("frame decodes");
            assert_eq!(decoded, message);
        }
    }

    #[test]
    fn version_1_frames_still_decode() {
        // Everything a v1 peer can say must remain readable after the bump.
        let legacy = vec![
            Message::Register { profile: sample_profile() },
            Message::Ingest { batch: 3, events: vec![sample_event(7, 0)] },
            Message::Checkpoint,
            Message::Shutdown,
            Message::Ready { fingerprint: 42, resumed_users: 7 },
            Message::Ack { batch: 3, alerts: vec![sample_alert(1)] },
            Message::CheckpointDone { through_batch: 3, imports: 0 },
            Message::Fatal { code: 12, message: "pipe".to_owned() },
        ];
        for message in legacy {
            let frame = message.encode_at(MESSAGE_VERSION_V1);
            assert_eq!(Message::decode(&frame).expect("v1 frame decodes"), message);
        }
    }

    #[test]
    fn v2_only_tags_in_v1_frames_are_rejected_with_a_typed_error() {
        for message in [
            Message::IngestBatch { acked_through: 1, parts: vec![(2, vec![sample_event(9, 0)])] },
            Message::AckThrough { through: 2, alerts: Vec::new() },
        ] {
            let skewed = message.encode_at(MESSAGE_VERSION_V1);
            let error = Message::decode(&skewed).expect_err("v1 frame with v2 tag must refuse");
            assert!(
                matches!(&error, CodecError::Malformed { what: "message tag", .. }),
                "expected a typed tag rejection, got {error:?}"
            );
            assert!(error.to_string().contains("requires protocol version"));
        }
    }

    #[test]
    fn unknown_future_versions_are_typed_unsupported() {
        let frame = Message::Checkpoint.encode_at(MESSAGE_VERSION + 1);
        assert!(matches!(
            Message::decode(&frame),
            Err(CodecError::UnsupportedVersion { found, .. }) if found == MESSAGE_VERSION + 1
        ));
    }

    #[test]
    fn profile_codec_preserves_consent_and_sensitivities() {
        let profile = sample_profile();
        let frame = Message::Register { profile: profile.clone() }.encode();
        let Message::Register { profile: decoded } = Message::decode(&frame).unwrap() else {
            panic!("wrong message kind");
        };
        assert_eq!(decoded.id(), profile.id());
        assert_eq!(
            decoded.consent().services().collect::<Vec<_>>(),
            profile.consent().services().collect::<Vec<_>>()
        );
        assert_eq!(
            decoded.sensitivities().default_sensitivity(),
            profile.sensitivities().default_sensitivity()
        );
        assert_eq!(
            decoded.sensitivities().iter().collect::<Vec<_>>(),
            profile.sensitivities().iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn unknown_tags_and_bad_indices_are_typed() {
        let mut encoder = Encoder::new(MESSAGE_KIND, MESSAGE_VERSION);
        encoder.u8(250);
        assert!(matches!(
            Message::decode(&encoder.finish()),
            Err(CodecError::Malformed { what: "message tag", .. })
        ));

        // An event whose action index is out of range.
        let (pos, event) = sample_event(1, 0);
        let frame = Message::Ingest { batch: 1, events: vec![(pos, event)] }.encode();
        // Corrupting payload bytes trips the checksum first, which is the
        // point of the envelope; a *well-formed* frame with a bad index can
        // only come from an encoder bug, which get_event still types:
        let mut encoder = Encoder::new(MESSAGE_KIND, MESSAGE_VERSION);
        encoder.u8(super::TAG_ACK);
        encoder.u64(1);
        encoder.u32(1);
        encoder.u32(0);
        encoder.u64(5);
        encoder.str("alice");
        encoder.u8(99); // impossible risk level
        encoder.str("boom");
        assert!(matches!(
            Message::decode(&encoder.finish()),
            Err(CodecError::Malformed { what: "alert risk level", .. })
        ));
        assert!(Message::decode(&frame).is_ok());
    }

    #[test]
    fn checkpoint_file_round_trips_and_detects_corruption() {
        let snapshot = vec![7u8; 100];
        let bytes = encode_checkpoint(4, 99, 3, &snapshot);
        let file = decode_checkpoint(&bytes).unwrap();
        assert_eq!((file.worker_index, file.through_batch, file.imports), (4, 99, 3));
        assert_eq!(file.snapshot, snapshot);

        for position in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[position] ^= 0x40;
            assert!(
                decode_checkpoint(&corrupt).is_err(),
                "flipping byte {position} went undetected"
            );
        }
    }

    #[test]
    fn checkpoint_v2_files_still_decode_after_the_v3_bump() {
        // A checkpoint left on disk by a pre-sparse-snapshot build: the
        // bookkeeping layout is identical, only the version stamp differs,
        // and the loader must accept it so a worker restarting across the
        // deployment resumes instead of discarding its state.
        let snapshot = vec![9u8; 64];
        let old = encode_checkpoint_at(CHECKPOINT_VERSION_V2, 2, 17, 5, &snapshot);
        let file = decode_checkpoint(&old).unwrap();
        assert_eq!((file.worker_index, file.through_batch, file.imports), (2, 17, 5));
        assert_eq!(file.snapshot, snapshot);
        // The compatibility window is exactly {v2, v3}: v1 and future
        // versions are typed rejections, not best-effort parses.
        for version in [1, CHECKPOINT_VERSION + 1] {
            let alien = encode_checkpoint_at(version, 2, 17, 5, &snapshot);
            assert!(matches!(
                decode_checkpoint(&alien),
                Err(CodecError::UnsupportedVersion { found, .. }) if found == version
            ));
        }
    }

    #[test]
    fn messages_reject_wrong_kind_frames() {
        let foreign = Encoder::new(*b"PMSN", 1).finish();
        assert!(matches!(Message::decode(&foreign), Err(CodecError::BadMagic { .. })));
    }
}
