//! Failure injection: [`FaultPlan`] schedules and the worker-side switches.
//!
//! A fault plan is a *deterministic schedule* of failures, addressed by
//! worker index and (for process-local faults) by **incarnation** — the
//! number of times that worker slot has been (re)spawned, starting at 0.
//! Addressing by incarnation lets a test kill the same worker repeatedly
//! (`(w, 0)`, `(w, 1)`, …) or only once, and guarantees the schedule plays
//! out identically on every run: there is no randomness at injection time,
//! only in the generators that *produce* plans for the property tests.
//!
//! Process-local faults (kill, stall, drop-ack) are armed by the supervisor
//! when it spawns the worker, via `--fault` command-line arguments that the
//! `privacy-shardd` binary parses into [`WorkerFaults`]. The
//! corrupt-checkpoint fault is applied by the supervisor itself, flipping a
//! byte of the freshly written checkpoint file — simulating torn storage
//! that the next restart must detect and fall back from.

use std::fmt;

/// One injected failure in a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Kill the process (exit code [`INJECTED_FAULT`](crate::exit::INJECTED_FAULT))
    /// immediately after ingesting its `events`-th event (1-based, counted
    /// over the incarnation's lifetime), mid-batch and without acking.
    KillAfterEvents {
        /// Worker slot the fault targets.
        worker: usize,
        /// Incarnation of that slot the fault arms in (0 = first spawn).
        incarnation: u32,
        /// Event count after which the process exits.
        events: u64,
    },
    /// Sleep `millis` before sending the first ack after the `events`-th
    /// event has been ingested — a slow consumer. With a stall longer than
    /// the supervisor's ack timeout this triggers kill-and-restart.
    StallBeforeAck {
        /// Worker slot the fault targets.
        worker: usize,
        /// Incarnation of that slot the fault arms in.
        incarnation: u32,
        /// Event count after which the stall fires (once).
        events: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Process the `ordinal`-th ingest of the incarnation (1-based) fully
    /// but never ack it — a lost acknowledgement. The supervisor's ack
    /// timeout fires and the worker is killed and restarted; replay must
    /// deduplicate the re-acked batches.
    DropAck {
        /// Worker slot the fault targets.
        worker: usize,
        /// Incarnation of that slot the fault arms in.
        incarnation: u32,
        /// 1-based ingest ordinal whose ack is swallowed.
        ordinal: u64,
    },
    /// Sleep `millis` after ingesting *every* event — a legitimately slow
    /// evaluator, not a hang. Unlike [`Fault::StallBeforeAck`] the delay
    /// scales with batch size, which is exactly what the supervisor's
    /// per-event ack-timeout grace must absorb without restarting.
    SleepPerEvent {
        /// Worker slot the fault targets.
        worker: usize,
        /// Incarnation of that slot the fault arms in.
        incarnation: u32,
        /// Sleep per ingested event, in milliseconds.
        millis: u64,
    },
    /// Flip one byte of worker `worker`'s checkpoint file immediately after
    /// its `ordinal`-th successful checkpoint (1-based, counted across
    /// incarnations). The next restart must detect the corruption via the
    /// frame checksum and fall back to the `.prev` generation.
    CorruptCheckpoint {
        /// Worker slot whose checkpoint file is corrupted.
        worker: usize,
        /// 1-based checkpoint ordinal after which the byte flip happens.
        ordinal: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::KillAfterEvents { worker, incarnation, events } => {
                write!(f, "kill worker {worker}.{incarnation} after {events} events")
            }
            Fault::StallBeforeAck { worker, incarnation, events, millis } => {
                write!(f, "stall worker {worker}.{incarnation} {millis}ms after {events} events")
            }
            Fault::DropAck { worker, incarnation, ordinal } => {
                write!(f, "drop ack {ordinal} of worker {worker}.{incarnation}")
            }
            Fault::SleepPerEvent { worker, incarnation, millis } => {
                write!(f, "slow worker {worker}.{incarnation}: {millis}ms per event")
            }
            Fault::CorruptCheckpoint { worker, ordinal } => {
                write!(f, "corrupt checkpoint {ordinal} of worker {worker}")
            }
        }
    }
}

/// A deterministic schedule of injected failures for one supervised run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan: no failures are injected.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from an explicit fault list.
    #[must_use]
    pub fn new(faults: Vec<Fault>) -> Self {
        Self { faults }
    }

    /// Adds a [`Fault::KillAfterEvents`] to the plan.
    #[must_use]
    pub fn kill_after(mut self, worker: usize, incarnation: u32, events: u64) -> Self {
        self.faults.push(Fault::KillAfterEvents { worker, incarnation, events });
        self
    }

    /// Adds a [`Fault::StallBeforeAck`] to the plan.
    #[must_use]
    pub fn stall(mut self, worker: usize, incarnation: u32, events: u64, millis: u64) -> Self {
        self.faults.push(Fault::StallBeforeAck { worker, incarnation, events, millis });
        self
    }

    /// Adds a [`Fault::DropAck`] to the plan.
    #[must_use]
    pub fn drop_ack(mut self, worker: usize, incarnation: u32, ordinal: u64) -> Self {
        self.faults.push(Fault::DropAck { worker, incarnation, ordinal });
        self
    }

    /// Adds a [`Fault::SleepPerEvent`] to the plan.
    #[must_use]
    pub fn sleep_per_event(mut self, worker: usize, incarnation: u32, millis: u64) -> Self {
        self.faults.push(Fault::SleepPerEvent { worker, incarnation, millis });
        self
    }

    /// Adds a [`Fault::CorruptCheckpoint`] to the plan.
    #[must_use]
    pub fn corrupt_checkpoint(mut self, worker: usize, ordinal: u64) -> Self {
        self.faults.push(Fault::CorruptCheckpoint { worker, ordinal });
        self
    }

    /// Whether the plan contains no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The `--fault` command-line arguments to arm in worker `worker`'s
    /// incarnation `incarnation` at spawn time.
    #[must_use]
    pub fn worker_args(&self, worker: usize, incarnation: u32) -> Vec<String> {
        let mut args = Vec::new();
        for fault in &self.faults {
            match *fault {
                Fault::KillAfterEvents { worker: w, incarnation: i, events }
                    if w == worker && i == incarnation =>
                {
                    args.push("--fault".to_owned());
                    args.push(format!("kill-after-events={events}"));
                }
                Fault::StallBeforeAck { worker: w, incarnation: i, events, millis }
                    if w == worker && i == incarnation =>
                {
                    args.push("--fault".to_owned());
                    args.push(format!("stall-before-ack={events}:{millis}"));
                }
                Fault::DropAck { worker: w, incarnation: i, ordinal }
                    if w == worker && i == incarnation =>
                {
                    args.push("--fault".to_owned());
                    args.push(format!("drop-ack={ordinal}"));
                }
                Fault::SleepPerEvent { worker: w, incarnation: i, millis }
                    if w == worker && i == incarnation =>
                {
                    args.push("--fault".to_owned());
                    args.push(format!("sleep-per-event={millis}"));
                }
                _ => {}
            }
        }
        args
    }

    /// Whether the supervisor should corrupt worker `worker`'s checkpoint
    /// file after its `ordinal`-th successful checkpoint.
    #[must_use]
    pub fn corrupts_checkpoint(&self, worker: usize, ordinal: u64) -> bool {
        self.faults.iter().any(|fault| {
            matches!(*fault, Fault::CorruptCheckpoint { worker: w, ordinal: o }
                if w == worker && o == ordinal)
        })
    }
}

/// The process-local fault switches a `privacy-shardd` incarnation runs
/// with, parsed from repeated `--fault SPEC` arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerFaults {
    /// Exit with [`INJECTED_FAULT`](crate::exit::INJECTED_FAULT) once this
    /// many events have been ingested.
    pub kill_after_events: Option<u64>,
    /// `(events, millis)`: one-shot sleep before the next ack once `events`
    /// events have been ingested.
    pub stall_before_ack: Option<(u64, u64)>,
    /// Swallow the ack of this 1-based ingest ordinal.
    pub drop_ack: Option<u64>,
    /// Sleep this many milliseconds after every ingested event.
    pub sleep_per_event: Option<u64>,
}

impl WorkerFaults {
    /// Parses one `--fault` SPEC (`kill-after-events=N`,
    /// `stall-before-ack=N:MS`, `drop-ack=B`, `sleep-per-event=MS`) into the
    /// switch set.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when the spec is unknown or its
    /// numeric payload does not parse.
    pub fn parse_arg(&mut self, spec: &str) -> Result<(), String> {
        let (name, value) = spec
            .split_once('=')
            .ok_or_else(|| format!("fault spec `{spec}` is missing `=value`"))?;
        let parse = |v: &str| {
            v.parse::<u64>().map_err(|_| format!("fault spec `{spec}`: `{v}` is not a number"))
        };
        match name {
            "kill-after-events" => self.kill_after_events = Some(parse(value)?),
            "stall-before-ack" => {
                let (events, millis) = value
                    .split_once(':')
                    .ok_or_else(|| format!("fault spec `{spec}` wants EVENTS:MILLIS"))?;
                self.stall_before_ack = Some((parse(events)?, parse(millis)?));
            }
            "drop-ack" => self.drop_ack = Some(parse(value)?),
            "sleep-per-event" => self.sleep_per_event = Some(parse(value)?),
            other => return Err(format!("unknown fault `{other}`")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_args_select_by_worker_and_incarnation() {
        let plan = FaultPlan::none()
            .kill_after(0, 0, 40)
            .kill_after(0, 1, 90)
            .stall(1, 0, 10, 250)
            .drop_ack(1, 0, 3)
            .corrupt_checkpoint(0, 1);
        assert_eq!(plan.worker_args(0, 0), vec!["--fault", "kill-after-events=40"]);
        assert_eq!(plan.worker_args(0, 1), vec!["--fault", "kill-after-events=90"]);
        assert_eq!(
            plan.worker_args(1, 0),
            vec!["--fault", "stall-before-ack=10:250", "--fault", "drop-ack=3"]
        );
        assert!(plan.worker_args(1, 1).is_empty());
        assert!(plan.corrupts_checkpoint(0, 1));
        assert!(!plan.corrupts_checkpoint(0, 2));
        assert!(!plan.corrupts_checkpoint(1, 1));
    }

    #[test]
    fn worker_faults_round_trip_through_arg_parsing() {
        let plan = FaultPlan::none()
            .kill_after(2, 3, 7)
            .stall(2, 3, 5, 111)
            .drop_ack(2, 3, 2)
            .sleep_per_event(2, 3, 9);
        let args = plan.worker_args(2, 3);
        let mut faults = WorkerFaults::default();
        for pair in args.chunks(2) {
            assert_eq!(pair[0], "--fault");
            faults.parse_arg(&pair[1]).expect("spec parses");
        }
        assert_eq!(faults.kill_after_events, Some(7));
        assert_eq!(faults.stall_before_ack, Some((5, 111)));
        assert_eq!(faults.drop_ack, Some(2));
        assert_eq!(faults.sleep_per_event, Some(9));
    }

    #[test]
    fn bad_fault_specs_are_rejected_with_reasons() {
        let mut faults = WorkerFaults::default();
        assert!(faults.parse_arg("kill-after-events").unwrap_err().contains("missing"));
        assert!(faults.parse_arg("kill-after-events=abc").unwrap_err().contains("not a number"));
        assert!(faults.parse_arg("stall-before-ack=5").unwrap_err().contains("EVENTS:MILLIS"));
        assert!(faults.parse_arg("explode=1").unwrap_err().contains("unknown fault"));
    }
}
