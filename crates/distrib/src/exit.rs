//! Process exit-code taxonomy shared by the pipeline binaries.
//!
//! `privacy-shardd`, `privacy-supervisor` and `privacy-monitor` all exit
//! with codes from this table so that callers — the supervisor's restart
//! policy, CI scripts, shell pipelines — can tell *what kind* of failure
//! happened without parsing stderr. The supervisor additionally uses
//! [`is_terminal`] to decide whether restarting a dead worker can possibly
//! help: a worker that died from an I/O hiccup or an injected crash is
//! worth restarting, one that rejected the model or the protocol will just
//! reject them again.

/// Success.
pub const OK: i32 = 0;
/// Bad command line: unknown flag, missing argument, unparsable value.
pub const USAGE: i32 = 2;
/// The ingest front end rejected the input fatally (strict-mode parse
/// failure, unreadable source log).
pub const INGEST_FATAL: i32 = 10;
/// Monitor state could not be established: snapshot rejected (fingerprint
/// or shape mismatch), model failed to parse, or resume was impossible.
pub const SNAPSHOT_FATAL: i32 = 11;
/// An I/O operation on a file or pipe failed (checkpoint write, log read).
pub const IO_FATAL: i32 = 12;
/// The peer broke the wire protocol: unexpected message kind, undecodable
/// frame, out-of-order acknowledgement.
pub const PROTOCOL_FATAL: i32 = 13;
/// The process terminated itself on purpose because an injected fault from
/// a [`FaultPlan`](crate::fault::FaultPlan) fired. Test harness only.
pub const INJECTED_FAULT: i32 = 101;

/// Whether a worker exit code is *terminal*: restarting the worker with the
/// same configuration would deterministically fail again.
///
/// Everything else — injected faults, I/O errors, signal deaths (no code at
/// all), and even an unexpected clean exit — is considered retryable.
#[must_use]
pub fn is_terminal(code: i32) -> bool {
    matches!(code, USAGE | INGEST_FATAL | SNAPSHOT_FATAL | PROTOCOL_FATAL)
}

/// Human-readable label for a known exit code, for diagnostics.
#[must_use]
pub fn describe(code: i32) -> &'static str {
    match code {
        OK => "success",
        USAGE => "usage error",
        INGEST_FATAL => "fatal ingest error",
        SNAPSHOT_FATAL => "snapshot/model mismatch",
        IO_FATAL => "I/O failure",
        PROTOCOL_FATAL => "wire-protocol violation",
        INJECTED_FAULT => "injected fault",
        _ => "unknown exit code",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_distinct_and_classified() {
        let codes =
            [OK, USAGE, INGEST_FATAL, SNAPSHOT_FATAL, IO_FATAL, PROTOCOL_FATAL, INJECTED_FAULT];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(is_terminal(USAGE));
        assert!(is_terminal(PROTOCOL_FATAL));
        assert!(is_terminal(SNAPSHOT_FATAL));
        assert!(!is_terminal(INJECTED_FAULT));
        assert!(!is_terminal(IO_FATAL));
        assert!(!is_terminal(OK));
        assert_eq!(describe(INJECTED_FAULT), "injected fault");
    }
}
