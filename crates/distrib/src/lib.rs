//! # privacy-distrib
//!
//! Fault-tolerant **distributed** runtime monitoring: the layer that turns
//! the single-process [`IndexedMonitor`](privacy_runtime::IndexedMonitor)
//! into a supervised fleet of shard-owning worker *processes* whose merged
//! alert stream is provably identical to an uninterrupted in-process run.
//!
//! The paper pitches the operation-time monitor for *distributed data
//! services*; this crate makes that credible under the failures distributed
//! services actually have — worker crashes, slow consumers, torn checkpoint
//! writes:
//!
//! * [`wire`] — the supervisor ⇄ worker message protocol: every message is
//!   one framed [`privacy_interchange::binary`] artefact (magic, kind,
//!   version, length, checksum) carried over the worker's stdin/stdout
//!   pipes, so a torn or corrupted pipe read is a typed error, never a
//!   misparse. Models travel as `.psm` text; events, profiles and alerts as
//!   binary payloads. Protocol version 2 adds the coalesced data plane —
//!   many sub-batches per [`Message::IngestBatch`] frame, answered by
//!   cumulative [`Message::AckThrough`] replies — while still decoding
//!   every v1 frame; a v2-only tag inside a v1 frame is a typed rejection.
//! * [`worker`] — the `privacy-shardd` process: owns a contiguous range of
//!   the monitor's [`SHARD_COUNT`](privacy_runtime::SHARD_COUNT) stable
//!   `UserId`-hash shards, rebuilds the design-time index from the shipped
//!   model (verifying the index fingerprint), ingests event sub-batches in
//!   stream order and acks each with its alerts, checkpoints atomically on
//!   request, and exports/imports shards for live handoff.
//! * [`supervisor`] — [`DistributedMonitor`]: spawns and supervises the
//!   workers, routes events by shard owner through **bounded in-flight
//!   windows with backpressure**, merges per-worker alert streams back into
//!   the deterministic batch-position order the in-process sharding
//!   guarantees, detects death (pipe EOF / ack timeout) and restarts with
//!   exponential backoff + a jitter cap, resuming the replacement from its
//!   last good checkpoint and replaying only the unacknowledged suffix.
//! * [`checkpoint`] — [`CheckpointStore`]: atomic write-to-temp-then-rename
//!   checkpoint files with a `.prev` generation, and a loader that falls
//!   back past a torn or corrupted generation with typed warnings.
//! * [`fault`] — [`FaultPlan`]: the failure-injection harness. Kill-at-event,
//!   stall, drop-ack, sleep-per-event (armed in the worker via `--fault`
//!   arguments) and corrupt-checkpoint (applied by the supervisor to the
//!   on-disk file) drive the differential property tests asserting the
//!   merged alert stream is byte-identical to the uninterrupted
//!   single-process run under every injected fault schedule.
//! * [`exit`] — the process exit-code taxonomy shared by `privacy-shardd`,
//!   `privacy-monitor` and `privacy-supervisor`, so the restart policy can
//!   distinguish retryable exits (crash, I/O, injected fault) from terminal
//!   ones (usage, protocol, model mismatch).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod exit;
pub mod fault;
pub mod supervisor;
pub mod wire;
pub mod worker;

pub use checkpoint::{CheckpointStore, CheckpointWarning, Generation};
pub use fault::{Fault, FaultPlan, WorkerFaults};
pub use supervisor::{
    DistribError, DistribStats, DistributedMonitor, Recovery, RestartPolicy, SupervisorConfig,
};
pub use wire::Message;

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::checkpoint::{CheckpointStore, CheckpointWarning, Generation};
    pub use crate::fault::{Fault, FaultPlan};
    pub use crate::supervisor::{
        DistribError, DistribStats, DistributedMonitor, Recovery, RestartPolicy, SupervisorConfig,
    };
    pub use crate::wire::Message;
}
