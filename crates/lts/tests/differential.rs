//! Differential tests: the optimised compiled-flow engine against the
//! retained reference implementation, over seeded random `privacy-synth`
//! system models.
//!
//! The engine is required to agree with the reference on *everything* the
//! issue cares about — state counts, the transition multiset, the
//! deadlock/final states — and, because its merge phase is deterministic in
//! frontier order, on the stronger property of full LTS equality (identical
//! state numbering and transition order).

use privacy_lts::space::VarKind;
use privacy_lts::{
    generate_lts, generate_lts_reference, ActionKind, GeneratorConfig, Lts, LtsIndex,
};
use privacy_synth::{random_model, ModelGeneratorConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The transition multiset of an LTS, as count-tagged rendered edges. Using
/// the privacy-state labels (not state ids) makes the comparison meaningful
/// even if the two implementations ever numbered states differently.
fn transition_multiset(lts: &Lts) -> BTreeMap<(String, String, String, bool), usize> {
    let space = lts.space();
    let mut multiset = BTreeMap::new();
    for (_, transition) in lts.transitions() {
        let key = (
            lts.state(transition.from()).short_label(space),
            lts.state(transition.to()).short_label(space),
            transition.label().to_string(),
            transition.is_risk_transition(),
        );
        *multiset.entry(key).or_insert(0) += 1;
    }
    multiset
}

/// The deadlock (no outgoing transition) states of an LTS, rendered.
fn deadlock_states(lts: &Lts) -> Vec<String> {
    let space = lts.space();
    let mut deadlocks: Vec<String> = lts
        .states()
        .filter(|(id, _)| lts.outgoing(*id).next().is_none())
        .map(|(_, state)| state.short_label(space))
        .collect();
    deadlocks.sort();
    deadlocks
}

fn assert_equivalent(engine: &Lts, reference: &Lts) {
    assert_eq!(engine.state_count(), reference.state_count(), "state counts diverge");
    assert_eq!(
        engine.transition_count(),
        reference.transition_count(),
        "transition counts diverge"
    );
    assert_eq!(
        transition_multiset(engine),
        transition_multiset(reference),
        "transition multisets diverge"
    );
    assert_eq!(deadlock_states(engine), deadlock_states(reference), "deadlock states diverge");
    // The engine's deterministic merge makes the stronger guarantee hold too.
    assert_eq!(engine, reference, "full LTS equality diverges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engine_matches_reference_on_random_models(
        actors in 1usize..5,
        fields in 1usize..5,
        datastores in 1usize..4,
        services in 1usize..4,
        flows in 1usize..6,
        seed in 0u64..1_000_000,
        potential_reads in proptest::bool::ANY,
        interleave in proptest::bool::ANY,
        threads in 1usize..5,
    ) {
        let model_config = ModelGeneratorConfig {
            actors,
            fields,
            datastores,
            services,
            flows_per_service: flows,
            seed,
            ..ModelGeneratorConfig::default()
        };
        let (catalog, system, policy) =
            random_model(&model_config).expect("generated model is valid");

        let mut config = GeneratorConfig::default().with_max_states(50_000);
        config.explore_potential_reads = potential_reads;
        config.interleave_services = interleave;
        config.threads = Some(threads);

        let engine = generate_lts(&catalog, &system, &policy, &config);
        let reference = generate_lts_reference(&catalog, &system, &policy, &config);
        match (engine, reference) {
            (Ok(engine), Ok(reference)) => assert_equivalent(&engine, &reference),
            (Err(engine_err), Err(reference_err)) => {
                // Both may hit the state bound — then they must fail alike.
                prop_assert_eq!(engine_err.to_string(), reference_err.to_string());
            }
            (engine, reference) => {
                return Err(TestCaseError::fail(format!(
                    "implementations disagree: engine {:?} vs reference {:?}",
                    engine.map(|l| l.stats().to_string()),
                    reference.map(|l| l.stats().to_string()),
                )));
            }
        }
    }

    #[test]
    fn engine_matches_reference_under_tight_state_bounds(
        seed in 0u64..1_000_000,
        max_states in 1usize..40,
    ) {
        let (catalog, system, policy) =
            random_model(&ModelGeneratorConfig::default().with_seed(seed))
                .expect("generated model is valid");
        let config = GeneratorConfig::default()
            .with_potential_reads()
            .with_max_states(max_states);
        let engine = generate_lts(&catalog, &system, &policy, &config);
        let reference = generate_lts_reference(&catalog, &system, &policy, &config);
        match (engine, reference) {
            (Ok(engine), Ok(reference)) => assert_equivalent(&engine, &reference),
            (Err(engine_err), Err(reference_err)) => {
                prop_assert_eq!(engine_err.to_string(), reference_err.to_string());
            }
            _ => return Err(TestCaseError::fail("one implementation hit the bound alone")),
        }
    }
}

/// Deliberately larger fixed-seed models, outside the proptest loop so their
/// runtime stays visible in test output. Some seeds collapse onto a handful
/// of privacy states, so the size assertion is on the batch, not per seed.
#[test]
fn engine_matches_reference_on_larger_models() {
    let mut total_states = 0usize;
    for seed in 0..6 {
        let model_config = ModelGeneratorConfig {
            actors: 5,
            fields: 6,
            datastores: 2,
            services: 2,
            flows_per_service: 6,
            grant_probability: 0.3,
            seed,
            ..ModelGeneratorConfig::default()
        };
        let (catalog, system, policy) = random_model(&model_config).expect("model builds");
        let config = GeneratorConfig::default().with_potential_reads().with_max_states(500_000);
        let engine = generate_lts(&catalog, &system, &policy, &config).expect("engine generates");
        let reference = generate_lts_reference(&catalog, &system, &policy, &config)
            .expect("reference generates");
        assert_equivalent(&engine, &reference);
        total_states += engine.state_count();
    }
    assert!(total_states > 100, "explorations stayed trivial: {total_states} states in total");
}

/// Structural equality over every observable surface of two analysis
/// indexes — columns, posting lists, covers, CSR adjacency, reachability
/// and per-variable state postings.
fn assert_index_equivalent(a: &LtsIndex, b: &LtsIndex) {
    assert_eq!(a.transition_count(), b.transition_count());
    assert_eq!(a.actors(), b.actors(), "actor interner order diverges");
    assert_eq!(a.fields(), b.fields(), "field interner order diverges");
    assert_eq!(a.reachable(), b.reachable());
    for tx in 0..a.transition_count() as u32 {
        assert_eq!(a.action_of(tx), b.action_of(tx));
        assert_eq!(a.actor_of(tx), b.actor_of(tx));
        assert_eq!(a.purpose_of(tx), b.purpose_of(tx));
        assert_eq!(a.has_fields(tx), b.has_fields(tx));
    }
    for action in ActionKind::ALL {
        assert_eq!(a.transitions_of_kind(action), b.transitions_of_kind(action));
    }
    for actor in a.actors().to_vec() {
        assert_eq!(a.transitions_by_actor(&actor), b.transitions_by_actor(&actor));
        for action in ActionKind::ALL {
            assert_eq!(
                a.transitions_by_actor_of_kind(&actor, action),
                b.transitions_by_actor_of_kind(&actor, action)
            );
        }
    }
    for field in a.fields().to_vec() {
        assert_eq!(a.transitions_involving_field(&field), b.transitions_involving_field(&field));
        for action in ActionKind::ALL {
            assert_eq!(a.kind_covers_field(action, &field), b.kind_covers_field(action, &field));
        }
    }
    for state in a.reachable().to_vec() {
        assert_eq!(a.outgoing_transitions(state), b.outgoing_transitions(state));
    }
    let space = a.space().clone();
    assert_eq!(&space, b.space());
    for actor in space.actors() {
        for field in space.fields() {
            for kind in [VarKind::Has, VarKind::Could] {
                assert_eq!(
                    a.states_of_variable(actor, field, kind),
                    b.states_of_variable(actor, field, kind)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded column/posting pass of the index build must reproduce the
    /// single-threaded build exactly, for every shard count — including shard
    /// counts that leave some shards empty.
    #[test]
    fn sharded_index_build_matches_sequential_build_on_random_models(
        actors in 1usize..5,
        fields in 1usize..5,
        seed in 0u64..1_000_000,
        potential_reads in proptest::bool::ANY,
        threads in 2usize..9,
    ) {
        let model_config = ModelGeneratorConfig {
            actors,
            fields,
            seed,
            ..ModelGeneratorConfig::default()
        };
        let (catalog, system, policy) =
            random_model(&model_config).expect("generated model is valid");
        let mut config = GeneratorConfig::default().with_max_states(20_000);
        config.explore_potential_reads = potential_reads;
        let lts = generate_lts(&catalog, &system, &policy, &config)
            .expect("generation in bounds");

        let sequential = LtsIndex::build_with_threads(&lts, Some(1));
        let sharded = LtsIndex::build_with_threads(&lts, Some(threads));
        assert_index_equivalent(&sequential, &sharded);
        // The default (auto-threaded) build resolves to the same index too.
        assert_index_equivalent(&sequential, &LtsIndex::build(&lts));
    }
}
