//! Automatic generation of the privacy LTS from the design artefacts.
//!
//! This is the heart of the model-driven method (Section II-B): from the
//! per-service data-flow diagrams and the access-control policy, the
//! extraction rules produce a labelled transition system whose states are
//! privacy states and whose transitions are the privacy actions implied by
//! the flows:
//!
//! * user → actor flow: `collect` — the actor *has identified* the fields;
//! * actor → actor flow: `disclose` — the receiving actor has identified the
//!   fields;
//! * actor → datastore flow: `create` (or `anon` for anonymised stores) —
//!   every actor the access policy allows to read those fields *could
//!   identify* them;
//! * datastore → actor flow: `read` — the reading actor has identified the
//!   fields it is permitted to read.
//!
//! *"If there are multiple flows within a service, the flows can be executed
//! independently, provided the start node has the correct data to flow"* —
//! the generator therefore explores the interleavings of the per-service
//! flow sequences (each service's own flows stay in their declared order)
//! and merges composite states that share the same privacy state, which is
//! what keeps the generated LTS small compared to the `2^60` theoretical
//! state space.
//!
//! [`generate_lts`] is a thin wrapper over the optimised engine: the
//! artefacts are first compiled to a dense-index flow program (the private
//! `compile` module) and then explored by a parallel frontier BFS (the
//! private `engine` module). The original string-resolving single-threaded path
//! is retained as [`crate::reference::generate_lts_reference`] and is held
//! equal to the engine by differential tests; `docs/PERFORMANCE.md` in the
//! repository root describes the design and the measured speedups.

use crate::compile::CompiledModel;
use crate::engine;
use crate::lts::Lts;
use privacy_access::AccessPolicy;
use privacy_dataflow::SystemDataFlows;
use privacy_model::{Catalog, ModelError, ServiceId};
use std::collections::BTreeSet;

/// Configuration of the LTS generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Restrict generation to these services (`None` = all services with a
    /// diagram). Fig. 3 of the paper shows the LTS of the Medical Service
    /// process alone.
    pub services: Option<BTreeSet<ServiceId>>,
    /// Explore the full interleaving of services (`true`, the default) or
    /// execute the services one after another in service-id order (`false`).
    pub interleave_services: bool,
    /// Additionally generate `read` transitions for every actor that the
    /// access policy allows to read data present in a datastore, even where
    /// no declared flow performs that read. This exposes *potential* reads
    /// (the accesses the disclosure-risk analysis worries about) directly in
    /// the LTS at the cost of a larger state space.
    pub explore_potential_reads: bool,
    /// Safety bound on the number of composite states explored.
    ///
    /// The bound is enforced when a composite state is *inserted* into the
    /// visited set: generation fails deterministically while inserting
    /// composite state number `max_states + 1` (the initial state counts),
    /// so the exploration queue can never outgrow the bound.
    pub max_states: usize,
    /// Number of worker threads for frontier expansion (`None` = one per
    /// available CPU). The generated LTS is identical for every thread
    /// count; `Some(1)` forces the fully inline single-threaded path.
    pub threads: Option<usize>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            services: None,
            interleave_services: true,
            explore_potential_reads: false,
            max_states: 250_000,
            threads: None,
        }
    }
}

impl GeneratorConfig {
    /// A configuration restricted to a single service.
    pub fn for_service(service: impl Into<ServiceId>) -> Self {
        GeneratorConfig {
            services: Some([service.into()].into_iter().collect()),
            ..GeneratorConfig::default()
        }
    }

    /// Builder-style: enable exploration of potential reads.
    pub fn with_potential_reads(mut self) -> Self {
        self.explore_potential_reads = true;
        self
    }

    /// Builder-style: restrict the explored services.
    pub fn with_services(mut self, services: impl IntoIterator<Item = ServiceId>) -> Self {
        self.services = Some(services.into_iter().collect());
        self
    }

    /// Builder-style: set the composite-state safety bound.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Builder-style: set the number of frontier-expansion worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }
}

/// Generates the privacy LTS for a system model.
///
/// Identifier resolution happens once, at compile time; exploration then
/// operates on packed `u64` words and is parallelised across frontier
/// generations. The result is deterministic: independent of thread count,
/// and equal — state numbering included — to what the retained reference
/// implementation ([`crate::reference::generate_lts_reference`]) produces.
///
/// # Errors
///
/// Returns [`ModelError::Invalid`] if the state bound of the configuration is
/// exceeded, and [`ModelError::Unknown`] if a requested service has no
/// diagram.
pub fn generate_lts(
    catalog: &Catalog,
    system: &SystemDataFlows,
    policy: &AccessPolicy,
    config: &GeneratorConfig,
) -> Result<Lts, ModelError> {
    let compiled = CompiledModel::compile(catalog, system, policy, config)?;
    engine::explore(&compiled, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::ActionKind;
    use crate::reference::generate_lts_reference;
    use privacy_access::{AccessControlList, Grant};
    use privacy_dataflow::DiagramBuilder;
    use privacy_model::{
        Actor, ActorId, DataField, DataSchema, DatastoreDecl, FieldId, ServiceDecl,
    };

    /// A small two-service model: a doctor collects and stores a diagnosis
    /// (medical service); an administrator has read access to the store but
    /// no flow of the medical service reads it.
    fn fixture() -> (Catalog, SystemDataFlows, AccessPolicy) {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::data_subject("Patient")).unwrap();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Administrator")).unwrap();
        catalog.add_actor(Actor::role("Researcher")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis_anon")).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "EHRSchema",
                [FieldId::new("Name"), FieldId::new("Diagnosis")],
            ))
            .unwrap();
        catalog
            .add_schema(DataSchema::new("AnonSchema", [FieldId::new("Diagnosis_anon")]))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog.add_datastore(DatastoreDecl::anonymised("AnonEHR", "AnonSchema")).unwrap();
        catalog.add_service(ServiceDecl::new("MedicalService", [ActorId::new("Doctor")])).unwrap();
        catalog
            .add_service(ServiceDecl::new(
                "ResearchService",
                [ActorId::new("Administrator"), ActorId::new("Researcher")],
            ))
            .unwrap();

        let medical = DiagramBuilder::new("MedicalService")
            .collect("Doctor", ["Name", "Diagnosis"], "consultation", 1)
            .unwrap()
            .create("Doctor", "EHR", ["Name", "Diagnosis"], "record", 2)
            .unwrap()
            .read("Doctor", "EHR", ["Diagnosis"], "review", 3)
            .unwrap()
            .build();
        let research = DiagramBuilder::new("ResearchService")
            .read("Administrator", "EHR", ["Diagnosis"], "prepare", 1)
            .unwrap()
            .anonymise("Administrator", "AnonEHR", ["Diagnosis_anon"], "anonymise", 2)
            .unwrap()
            .read("Researcher", "AnonEHR", ["Diagnosis_anon"], "research", 3)
            .unwrap()
            .build();
        let system =
            SystemDataFlows::new().with_diagram(medical).unwrap().with_diagram(research).unwrap();

        let acl = AccessControlList::new()
            .with_grant(Grant::read_write_all("Doctor", "EHR"))
            .with_grant(Grant::read_all("Administrator", "EHR"))
            .with_grant(Grant::read_write_all("Administrator", "AnonEHR"))
            .with_grant(Grant::read_all("Researcher", "AnonEHR"));
        let policy = AccessPolicy::from_parts(acl, Default::default());
        (catalog, system, policy)
    }

    #[test]
    fn single_service_generation_follows_the_flow_order() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::for_service("MedicalService");
        let lts = generate_lts(&catalog, &system, &policy, &config).unwrap();

        // Three flows executed linearly: collect, create, read.
        assert_eq!(lts.transition_count(), 3);
        // collect and create produce new states; the final read re-reads a
        // field the doctor already identified, so it loops back onto the same
        // privacy state: 3 distinct states.
        assert_eq!(lts.state_count(), 3);

        let space = lts.space().clone();
        let doctor = ActorId::new("Doctor");
        let admin = ActorId::new("Administrator");
        let diagnosis = FieldId::new("Diagnosis");

        // After the create, the administrator could identify the diagnosis
        // because the ACL grants them read access to the EHR.
        let reachable_exposure = lts.states().any(|(_, s)| s.could(&space, &admin, &diagnosis));
        assert!(reachable_exposure, "administrator exposure must be represented");
        assert!(lts.states().any(|(_, s)| s.has(&space, &doctor, &diagnosis)));

        // Actions are labelled as the paper prescribes.
        let actions: Vec<ActionKind> = lts.transitions().map(|(_, t)| t.label().action()).collect();
        assert_eq!(actions, vec![ActionKind::Collect, ActionKind::Create, ActionKind::Read]);
    }

    #[test]
    fn anon_flows_are_labelled_anon() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::for_service("ResearchService");
        let lts = generate_lts(&catalog, &system, &policy, &config).unwrap();
        let actions: Vec<ActionKind> = lts.transitions().map(|(_, t)| t.label().action()).collect();
        assert!(actions.contains(&ActionKind::Anon));
        assert!(actions.contains(&ActionKind::Read));
    }

    #[test]
    fn interleaved_services_share_privacy_states() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::default();
        let lts = generate_lts(&catalog, &system, &policy, &config).unwrap();
        // Interleaving generates more transitions than the 6 flows because
        // the same flow fires from different privacy states.
        assert!(lts.transition_count() >= 6);
        assert!(lts.state_count() >= 4);
        // The researcher ends up having identified the anonymised diagnosis
        // on some path.
        let space = lts.space().clone();
        let researcher = ActorId::new("Researcher");
        let anon_field = FieldId::new("Diagnosis_anon");
        assert!(lts.states().any(|(_, s)| s.has(&space, &researcher, &anon_field)));
    }

    #[test]
    fn sequential_mode_produces_a_smaller_or_equal_lts() {
        let (catalog, system, policy) = fixture();
        let interleaved =
            generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let sequential = generate_lts(
            &catalog,
            &system,
            &policy,
            &GeneratorConfig { interleave_services: false, ..GeneratorConfig::default() },
        )
        .unwrap();
        assert!(sequential.transition_count() <= interleaved.transition_count());
        assert!(sequential.state_count() <= interleaved.state_count());
    }

    #[test]
    fn potential_reads_add_read_transitions_for_policy_holders() {
        let (catalog, system, policy) = fixture();
        let base = generate_lts(
            &catalog,
            &system,
            &policy,
            &GeneratorConfig::for_service("MedicalService"),
        )
        .unwrap();
        let with_reads = generate_lts(
            &catalog,
            &system,
            &policy,
            &GeneratorConfig::for_service("MedicalService").with_potential_reads(),
        )
        .unwrap();
        assert!(with_reads.transition_count() > base.transition_count());

        // Now the administrator actually *has identified* the diagnosis on
        // some path, via a potential read that is not part of any flow.
        let space = with_reads.space().clone();
        let admin = ActorId::new("Administrator");
        let diagnosis = FieldId::new("Diagnosis");
        assert!(with_reads.states().any(|(_, s)| s.has(&space, &admin, &diagnosis)));
        assert!(!base.states().any(|(_, s)| s.has(&space, &admin, &diagnosis)));
    }

    #[test]
    fn read_without_permission_does_not_identify() {
        let (catalog, system, _) = fixture();
        // Empty policy: nobody can read anything, so creates expose nothing
        // and reads identify nothing.
        let policy = AccessPolicy::new();
        let lts = generate_lts(
            &catalog,
            &system,
            &policy,
            &GeneratorConfig::for_service("MedicalService"),
        )
        .unwrap();
        let space = lts.space().clone();
        let admin = ActorId::new("Administrator");
        let diagnosis = FieldId::new("Diagnosis");
        assert!(!lts.states().any(|(_, s)| s.could(&space, &admin, &diagnosis)));
        // The doctor still identifies the diagnosis by collecting it.
        assert!(lts.states().any(|(_, s)| s.has(&space, &ActorId::new("Doctor"), &diagnosis)));
    }

    #[test]
    fn unknown_service_selection_is_an_error() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::for_service("NoSuchService");
        let err = generate_lts(&catalog, &system, &policy, &config).unwrap_err();
        assert!(matches!(err, ModelError::Unknown { .. }));
    }

    #[test]
    fn state_bound_is_enforced() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::default().with_max_states(1);
        let err = generate_lts(&catalog, &system, &policy, &config).unwrap_err();
        assert!(matches!(err, ModelError::Invalid { .. }));
    }

    #[test]
    fn state_bound_fails_at_insertion_time_with_the_documented_count() {
        let (catalog, system, policy) = fixture();
        // The full interleaved exploration needs well over 8 composite
        // states; the bound must fail while *inserting* composite state
        // number 9 (the initial state counts), naming the bound, and both
        // engines must agree on the error.
        for max_states in [1usize, 4, 8] {
            let config = GeneratorConfig::default().with_max_states(max_states);
            let err = generate_lts(&catalog, &system, &policy, &config).unwrap_err();
            let message = err.to_string();
            assert!(
                message.contains(&format!("bound of {max_states} composite states")),
                "unexpected message: {message}"
            );
            let ref_err = generate_lts_reference(&catalog, &system, &policy, &config).unwrap_err();
            assert_eq!(message, ref_err.to_string());
        }
        // A bound exactly equal to the number of composite states explored
        // succeeds: the bound is inclusive.
        let exact = composite_state_count(&catalog, &system, &policy);
        let config = GeneratorConfig::default().with_max_states(exact);
        assert!(generate_lts(&catalog, &system, &policy, &config).is_ok());
        let config = GeneratorConfig::default().with_max_states(exact - 1);
        assert!(generate_lts(&catalog, &system, &policy, &config).is_err());
    }

    /// The number of composite states of the fixture's default exploration,
    /// found by growing the bound until generation succeeds.
    fn composite_state_count(
        catalog: &Catalog,
        system: &SystemDataFlows,
        policy: &AccessPolicy,
    ) -> usize {
        (1..10_000)
            .find(|&bound| {
                let config = GeneratorConfig::default().with_max_states(bound);
                generate_lts(catalog, system, policy, &config).is_ok()
            })
            .expect("fixture exploration fits in 10k composite states")
    }

    #[test]
    fn thread_count_does_not_change_the_generated_lts() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::default().with_potential_reads();
        let single =
            generate_lts(&catalog, &system, &policy, &config.clone().with_threads(1)).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel =
                generate_lts(&catalog, &system, &policy, &config.clone().with_threads(threads))
                    .unwrap();
            assert_eq!(single, parallel, "thread count {threads} changed the LTS");
        }
    }

    #[test]
    fn engine_equals_reference_on_the_fixture() {
        let (catalog, system, policy) = fixture();
        for config in [
            GeneratorConfig::default(),
            GeneratorConfig::default().with_potential_reads(),
            GeneratorConfig { interleave_services: false, ..GeneratorConfig::default() },
            GeneratorConfig::for_service("MedicalService").with_potential_reads(),
        ] {
            let engine = generate_lts(&catalog, &system, &policy, &config).unwrap();
            let reference = generate_lts_reference(&catalog, &system, &policy, &config).unwrap();
            assert_eq!(engine, reference, "config {config:?} diverged");
        }
    }

    #[test]
    fn generated_space_matches_catalog_variables() {
        let (catalog, system, policy) = fixture();
        let lts = generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        assert_eq!(lts.space().variable_count(), catalog.state_variable_count());
        // 3 identifying actors x 3 fields x 2 = 18.
        assert_eq!(lts.space().variable_count(), 18);
    }
}
