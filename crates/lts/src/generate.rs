//! Automatic generation of the privacy LTS from the design artefacts.
//!
//! This is the heart of the model-driven method (Section II-B): from the
//! per-service data-flow diagrams and the access-control policy, the
//! extraction rules produce a labelled transition system whose states are
//! privacy states and whose transitions are the privacy actions implied by
//! the flows:
//!
//! * user → actor flow: `collect` — the actor *has identified* the fields;
//! * actor → actor flow: `disclose` — the receiving actor has identified the
//!   fields;
//! * actor → datastore flow: `create` (or `anon` for anonymised stores) —
//!   every actor the access policy allows to read those fields *could
//!   identify* them;
//! * datastore → actor flow: `read` — the reading actor has identified the
//!   fields it is permitted to read.
//!
//! *"If there are multiple flows within a service, the flows can be executed
//! independently, provided the start node has the correct data to flow"* —
//! the generator therefore explores the interleavings of the per-service
//! flow sequences (each service's own flows stay in their declared order)
//! and merges composite states that share the same privacy state, which is
//! what keeps the generated LTS small compared to the `2^60` theoretical
//! state space.

use crate::label::{ActionKind, TransitionLabel};
use crate::lts::Lts;
use crate::space::VarSpace;
use crate::state::PrivacyState;
use privacy_access::{AccessPolicy, Permission};
use privacy_dataflow::{Flow, FlowKind, SystemDataFlows};
use privacy_model::{Catalog, DatastoreId, FieldId, ModelError, SchemaId, ServiceId};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Configuration of the LTS generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Restrict generation to these services (`None` = all services with a
    /// diagram). Fig. 3 of the paper shows the LTS of the Medical Service
    /// process alone.
    pub services: Option<BTreeSet<ServiceId>>,
    /// Explore the full interleaving of services (`true`, the default) or
    /// execute the services one after another in service-id order (`false`).
    pub interleave_services: bool,
    /// Additionally generate `read` transitions for every actor that the
    /// access policy allows to read data present in a datastore, even where
    /// no declared flow performs that read. This exposes *potential* reads
    /// (the accesses the disclosure-risk analysis worries about) directly in
    /// the LTS at the cost of a larger state space.
    pub explore_potential_reads: bool,
    /// Safety bound on the number of composite states explored.
    pub max_states: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            services: None,
            interleave_services: true,
            explore_potential_reads: false,
            max_states: 250_000,
        }
    }
}

impl GeneratorConfig {
    /// A configuration restricted to a single service.
    pub fn for_service(service: impl Into<ServiceId>) -> Self {
        GeneratorConfig {
            services: Some([service.into()].into_iter().collect()),
            ..GeneratorConfig::default()
        }
    }

    /// Builder-style: enable exploration of potential reads.
    pub fn with_potential_reads(mut self) -> Self {
        self.explore_potential_reads = true;
        self
    }

    /// Builder-style: restrict the explored services.
    pub fn with_services(mut self, services: impl IntoIterator<Item = ServiceId>) -> Self {
        self.services = Some(services.into_iter().collect());
        self
    }

    /// Builder-style: set the composite-state safety bound.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }
}

/// The exploration key: per-service progress, datastore contents and the
/// privacy state. Progress and contents are needed to know which flows are
/// enabled; only the privacy state becomes an LTS state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CompositeState {
    progress: Vec<usize>,
    stored: BTreeSet<(DatastoreId, FieldId)>,
    privacy: PrivacyState,
}

/// Generates the privacy LTS for a system model.
///
/// # Errors
///
/// Returns [`ModelError::Invalid`] if the state bound of the configuration is
/// exceeded, and [`ModelError::Unknown`] if a requested service has no
/// diagram.
pub fn generate_lts(
    catalog: &Catalog,
    system: &SystemDataFlows,
    policy: &AccessPolicy,
    config: &GeneratorConfig,
) -> Result<Lts, ModelError> {
    let space = VarSpace::from_catalog(catalog);
    let mut lts = Lts::new(space.clone());

    // Select and order the services to explore.
    let services: Vec<&ServiceId> = match &config.services {
        Some(selected) => {
            for service in selected {
                if system.diagram(service).is_none() {
                    return Err(ModelError::unknown("service diagram", service.as_str()));
                }
            }
            system.services().filter(|s| selected.contains(*s)).collect()
        }
        None => system.services().collect(),
    };
    let diagrams: Vec<&privacy_dataflow::DataFlowDiagram> =
        services.iter().map(|s| system.diagram(s).expect("checked above")).collect();

    let anonymised_stores: BTreeSet<DatastoreId> =
        catalog.datastores().filter(|d| d.is_anonymised()).map(|d| d.id().clone()).collect();

    let initial = CompositeState {
        progress: vec![0; diagrams.len()],
        stored: BTreeSet::new(),
        privacy: PrivacyState::absolute(&space),
    };

    let mut visited: HashMap<CompositeState, ()> = HashMap::new();
    let mut queue = VecDeque::new();
    visited.insert(initial.clone(), ());
    queue.push_back(initial);

    while let Some(current) = queue.pop_front() {
        if visited.len() > config.max_states {
            return Err(ModelError::invalid(format!(
                "lts generation exceeded the configured bound of {} composite states",
                config.max_states
            )));
        }
        let from_id = lts.intern(current.privacy.clone());

        // Which services may fire their next flow from this composite state?
        let enabled: Vec<usize> = if config.interleave_services {
            (0..diagrams.len()).filter(|&i| current.progress[i] < diagrams[i].len()).collect()
        } else {
            // Sequential execution: only the first unfinished service fires.
            (0..diagrams.len())
                .find(|&i| current.progress[i] < diagrams[i].len())
                .into_iter()
                .collect()
        };

        for service_index in enabled {
            let diagram = diagrams[service_index];
            let flow = &diagram.flows()[current.progress[service_index]];
            let (next_privacy, next_stored, label) = apply_flow(
                catalog,
                policy,
                &space,
                &anonymised_stores,
                &current.privacy,
                &current.stored,
                flow,
            );

            let mut next = CompositeState {
                progress: current.progress.clone(),
                stored: next_stored,
                privacy: next_privacy,
            };
            next.progress[service_index] += 1;

            let to_id = lts.intern(next.privacy.clone());
            lts.add_transition(from_id, to_id, label);

            if !visited.contains_key(&next) {
                visited.insert(next.clone(), ());
                queue.push_back(next);
            }
        }

        // Potential reads: any actor the policy allows to read data that is
        // present in a datastore may perform an (unscheduled) read.
        if config.explore_potential_reads {
            for (store, field) in current.stored.iter() {
                let schema = catalog.datastore(store).map(|d| d.schema().clone());
                for actor in policy.actors_with(Permission::Read, store, field) {
                    if current.privacy.has(&space, &actor, field) {
                        continue;
                    }
                    let next_privacy = current.privacy.with_has(&space, &actor, field);
                    let next = CompositeState {
                        progress: current.progress.clone(),
                        stored: current.stored.clone(),
                        privacy: next_privacy.clone(),
                    };
                    let to_id = lts.intern(next_privacy);
                    let label = TransitionLabel::new(
                        ActionKind::Read,
                        actor.clone(),
                        [field.clone()],
                        schema.clone(),
                    );
                    lts.add_transition(from_id, to_id, label);
                    if !visited.contains_key(&next) {
                        visited.insert(next.clone(), ());
                        queue.push_back(next);
                    }
                }
            }
        }
    }

    Ok(lts)
}

/// Applies one flow to a privacy state, producing the successor privacy
/// state, the successor datastore contents and the transition label.
fn apply_flow(
    catalog: &Catalog,
    policy: &AccessPolicy,
    space: &VarSpace,
    anonymised_stores: &BTreeSet<DatastoreId>,
    privacy: &PrivacyState,
    stored: &BTreeSet<(DatastoreId, FieldId)>,
    flow: &Flow,
) -> (PrivacyState, BTreeSet<(DatastoreId, FieldId)>, TransitionLabel) {
    let mut next_privacy = privacy.clone();
    let mut next_stored = stored.clone();

    let kind = flow.kind(anonymised_stores);
    let actor =
        flow.acting_actor().cloned().unwrap_or_else(|| privacy_model::ActorId::new("<unknown>"));
    let purpose = flow.purpose().clone();

    let schema_of = |store: &DatastoreId| -> Option<SchemaId> {
        catalog.datastore(store).map(|d| d.schema().clone())
    };

    let (action, schema): (ActionKind, Option<SchemaId>) = match kind {
        FlowKind::Collect => {
            if let Some(receiver) = flow.receiving_actor() {
                for field in flow.fields() {
                    next_privacy.set_has(space, receiver, field, true);
                }
            }
            (ActionKind::Collect, None)
        }
        FlowKind::Disclose => {
            if let Some(receiver) = flow.receiving_actor() {
                for field in flow.fields() {
                    next_privacy.set_has(space, receiver, field, true);
                }
            }
            (ActionKind::Disclose, None)
        }
        FlowKind::Create | FlowKind::Anonymise => {
            let store =
                flow.to().as_datastore().cloned().unwrap_or_else(|| DatastoreId::new("<unknown>"));
            for field in flow.fields() {
                next_stored.insert((store.clone(), field.clone()));
                // Every actor with read access to this field in this store
                // could now identify it.
                for reader in policy.actors_with(Permission::Read, &store, field) {
                    next_privacy.set_could(space, &reader, field, true);
                }
            }
            let action =
                if kind == FlowKind::Anonymise { ActionKind::Anon } else { ActionKind::Create };
            (action, schema_of(&store))
        }
        FlowKind::Read => {
            let store = flow
                .from()
                .as_datastore()
                .cloned()
                .unwrap_or_else(|| DatastoreId::new("<unknown>"));
            if let Some(reader) = flow.receiving_actor() {
                for field in flow.fields() {
                    if policy.can(reader, Permission::Read, &store, field) {
                        next_privacy.set_has(space, reader, field, true);
                    }
                }
            }
            (ActionKind::Read, schema_of(&store))
        }
        _ => (ActionKind::Disclose, None),
    };

    let label = TransitionLabel::new(action, actor, flow.fields().iter().cloned(), schema)
        .with_purpose(purpose);
    (next_privacy, next_stored, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_access::{AccessControlList, Grant};
    use privacy_dataflow::DiagramBuilder;
    use privacy_model::{Actor, ActorId, DataField, DataSchema, DatastoreDecl, ServiceDecl};

    /// A small two-service model: a doctor collects and stores a diagnosis
    /// (medical service); an administrator has read access to the store but
    /// no flow of the medical service reads it.
    fn fixture() -> (Catalog, SystemDataFlows, AccessPolicy) {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::data_subject("Patient")).unwrap();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Administrator")).unwrap();
        catalog.add_actor(Actor::role("Researcher")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis_anon")).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "EHRSchema",
                [FieldId::new("Name"), FieldId::new("Diagnosis")],
            ))
            .unwrap();
        catalog
            .add_schema(DataSchema::new("AnonSchema", [FieldId::new("Diagnosis_anon")]))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog.add_datastore(DatastoreDecl::anonymised("AnonEHR", "AnonSchema")).unwrap();
        catalog.add_service(ServiceDecl::new("MedicalService", [ActorId::new("Doctor")])).unwrap();
        catalog
            .add_service(ServiceDecl::new(
                "ResearchService",
                [ActorId::new("Administrator"), ActorId::new("Researcher")],
            ))
            .unwrap();

        let medical = DiagramBuilder::new("MedicalService")
            .collect("Doctor", ["Name", "Diagnosis"], "consultation", 1)
            .unwrap()
            .create("Doctor", "EHR", ["Name", "Diagnosis"], "record", 2)
            .unwrap()
            .read("Doctor", "EHR", ["Diagnosis"], "review", 3)
            .unwrap()
            .build();
        let research = DiagramBuilder::new("ResearchService")
            .read("Administrator", "EHR", ["Diagnosis"], "prepare", 1)
            .unwrap()
            .anonymise("Administrator", "AnonEHR", ["Diagnosis_anon"], "anonymise", 2)
            .unwrap()
            .read("Researcher", "AnonEHR", ["Diagnosis_anon"], "research", 3)
            .unwrap()
            .build();
        let system =
            SystemDataFlows::new().with_diagram(medical).unwrap().with_diagram(research).unwrap();

        let acl = AccessControlList::new()
            .with_grant(Grant::read_write_all("Doctor", "EHR"))
            .with_grant(Grant::read_all("Administrator", "EHR"))
            .with_grant(Grant::read_write_all("Administrator", "AnonEHR"))
            .with_grant(Grant::read_all("Researcher", "AnonEHR"));
        let policy = AccessPolicy::from_parts(acl, Default::default());
        (catalog, system, policy)
    }

    #[test]
    fn single_service_generation_follows_the_flow_order() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::for_service("MedicalService");
        let lts = generate_lts(&catalog, &system, &policy, &config).unwrap();

        // Three flows executed linearly: collect, create, read.
        assert_eq!(lts.transition_count(), 3);
        // collect and create produce new states; the final read re-reads a
        // field the doctor already identified, so it loops back onto the same
        // privacy state: 3 distinct states.
        assert_eq!(lts.state_count(), 3);

        let space = lts.space().clone();
        let doctor = ActorId::new("Doctor");
        let admin = ActorId::new("Administrator");
        let diagnosis = FieldId::new("Diagnosis");

        // After the create, the administrator could identify the diagnosis
        // because the ACL grants them read access to the EHR.
        let reachable_exposure = lts.states().any(|(_, s)| s.could(&space, &admin, &diagnosis));
        assert!(reachable_exposure, "administrator exposure must be represented");
        assert!(lts.states().any(|(_, s)| s.has(&space, &doctor, &diagnosis)));

        // Actions are labelled as the paper prescribes.
        let actions: Vec<ActionKind> = lts.transitions().map(|(_, t)| t.label().action()).collect();
        assert_eq!(actions, vec![ActionKind::Collect, ActionKind::Create, ActionKind::Read]);
    }

    #[test]
    fn anon_flows_are_labelled_anon() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::for_service("ResearchService");
        let lts = generate_lts(&catalog, &system, &policy, &config).unwrap();
        let actions: Vec<ActionKind> = lts.transitions().map(|(_, t)| t.label().action()).collect();
        assert!(actions.contains(&ActionKind::Anon));
        assert!(actions.contains(&ActionKind::Read));
    }

    #[test]
    fn interleaved_services_share_privacy_states() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::default();
        let lts = generate_lts(&catalog, &system, &policy, &config).unwrap();
        // Interleaving generates more transitions than the 6 flows because
        // the same flow fires from different privacy states.
        assert!(lts.transition_count() >= 6);
        assert!(lts.state_count() >= 4);
        // The researcher ends up having identified the anonymised diagnosis
        // on some path.
        let space = lts.space().clone();
        let researcher = ActorId::new("Researcher");
        let anon_field = FieldId::new("Diagnosis_anon");
        assert!(lts.states().any(|(_, s)| s.has(&space, &researcher, &anon_field)));
    }

    #[test]
    fn sequential_mode_produces_a_smaller_or_equal_lts() {
        let (catalog, system, policy) = fixture();
        let interleaved =
            generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let sequential = generate_lts(
            &catalog,
            &system,
            &policy,
            &GeneratorConfig { interleave_services: false, ..GeneratorConfig::default() },
        )
        .unwrap();
        assert!(sequential.transition_count() <= interleaved.transition_count());
        assert!(sequential.state_count() <= interleaved.state_count());
    }

    #[test]
    fn potential_reads_add_read_transitions_for_policy_holders() {
        let (catalog, system, policy) = fixture();
        let base = generate_lts(
            &catalog,
            &system,
            &policy,
            &GeneratorConfig::for_service("MedicalService"),
        )
        .unwrap();
        let with_reads = generate_lts(
            &catalog,
            &system,
            &policy,
            &GeneratorConfig::for_service("MedicalService").with_potential_reads(),
        )
        .unwrap();
        assert!(with_reads.transition_count() > base.transition_count());

        // Now the administrator actually *has identified* the diagnosis on
        // some path, via a potential read that is not part of any flow.
        let space = with_reads.space().clone();
        let admin = ActorId::new("Administrator");
        let diagnosis = FieldId::new("Diagnosis");
        assert!(with_reads.states().any(|(_, s)| s.has(&space, &admin, &diagnosis)));
        assert!(!base.states().any(|(_, s)| s.has(&space, &admin, &diagnosis)));
    }

    #[test]
    fn read_without_permission_does_not_identify() {
        let (catalog, system, _) = fixture();
        // Empty policy: nobody can read anything, so creates expose nothing
        // and reads identify nothing.
        let policy = AccessPolicy::new();
        let lts = generate_lts(
            &catalog,
            &system,
            &policy,
            &GeneratorConfig::for_service("MedicalService"),
        )
        .unwrap();
        let space = lts.space().clone();
        let admin = ActorId::new("Administrator");
        let diagnosis = FieldId::new("Diagnosis");
        assert!(!lts.states().any(|(_, s)| s.could(&space, &admin, &diagnosis)));
        // The doctor still identifies the diagnosis by collecting it.
        assert!(lts.states().any(|(_, s)| s.has(&space, &ActorId::new("Doctor"), &diagnosis)));
    }

    #[test]
    fn unknown_service_selection_is_an_error() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::for_service("NoSuchService");
        let err = generate_lts(&catalog, &system, &policy, &config).unwrap_err();
        assert!(matches!(err, ModelError::Unknown { .. }));
    }

    #[test]
    fn state_bound_is_enforced() {
        let (catalog, system, policy) = fixture();
        let config = GeneratorConfig::default().with_max_states(1);
        let err = generate_lts(&catalog, &system, &policy, &config).unwrap_err();
        assert!(matches!(err, ModelError::Invalid { .. }));
    }

    #[test]
    fn generated_space_matches_catalog_variables() {
        let (catalog, system, policy) = fixture();
        let lts = generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        assert_eq!(lts.space().variable_count(), catalog.state_variable_count());
        // 3 identifying actors x 3 fields x 2 = 18.
        assert_eq!(lts.space().variable_count(), 18);
    }
}
