//! Fast, non-cryptographic hashing for the LTS generation hot path.
//!
//! The exploration engine hashes millions of packed-`u64` composite-state
//! keys; SipHash (std's default) costs more than the state expansion itself.
//! [`FxHasher`] is the FireFox/rustc multiply-xor hash: word-at-a-time, a
//! single multiplication per word, excellent distribution on dense bit-packed
//! keys. [`ShardedSet`] spreads a visited set over independently lockable
//! shards so frontier workers can membership-test and batch-insert with
//! minimal contention.

use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplier from the FNV-inspired rustc-hash scheme (64-bit golden ratio).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The rustc-hash ("FxHash") hasher: not cryptographic, not DoS-resistant,
/// but several times faster than SipHash on short integer-dense keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value with [`FxHasher`].
pub fn fx_hash<T: Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// A set sharded over independently lockable [`FxHashSet`]s.
///
/// Frontier workers take shared read locks for membership tests while the
/// merge step takes per-shard write locks to insert a whole generation's
/// discoveries; distinct shards never contend.
#[derive(Debug)]
pub struct ShardedSet<T> {
    shards: Vec<RwLock<FxHashSet<T>>>,
    mask: u64,
}

impl<T: Eq + Hash> ShardedSet<T> {
    /// Creates a set with `shards` shards (rounded up to a power of two).
    pub fn new(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        ShardedSet {
            shards: (0..count).map(|_| RwLock::new(FxHashSet::default())).collect(),
            mask: (count - 1) as u64,
        }
    }

    #[inline]
    fn shard_of_hash(&self, hash: u64) -> usize {
        // The low bits feed the in-shard hash table; shard selection uses the
        // high bits so the two partitions stay independent.
        ((hash >> 48) & self.mask) as usize
    }

    #[inline]
    fn shard_of(&self, value: &T) -> usize {
        self.shard_of_hash(fx_hash(value))
    }

    /// Returns `true` if the set contains `value` (shared lock).
    pub fn contains(&self, value: &T) -> bool {
        self.shards[self.shard_of(value)].read().contains(value)
    }

    /// Like [`ShardedSet::contains`] but probes with a borrowed form of the
    /// element type (e.g. `&[u64]` for a set of `Box<[u64]>`). Sound because
    /// the `Borrow` contract requires borrowed and owned forms to hash
    /// identically, so the probe lands in the same shard.
    pub fn contains_borrowed<Q>(&self, value: &Q) -> bool
    where
        T: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_of_hash(fx_hash(&value))].read().contains(value)
    }

    /// Inserts `value`, returning `true` if it was not present (exclusive
    /// lock on one shard).
    pub fn insert(&self, value: T) -> bool {
        self.shards[self.shard_of(&value)].write().insert(value)
    }

    /// Total number of elements across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    /// Returns `true` if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|shard| shard.read().is_empty())
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal_and_unequal_values_spread() {
        let a = fx_hash(&vec![1u64, 2, 3]);
        let b = fx_hash(&vec![1u64, 2, 3]);
        let c = fx_hash(&vec![1u64, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn byte_tails_do_not_collide_with_padded_prefixes() {
        // "ab" vs "ab\0" must differ even though the tail pads with zeros.
        assert_ne!(fx_hash(&[0x61u8, 0x62]), fx_hash(&[0x61u8, 0x62, 0x00]));
    }

    #[test]
    fn fx_maps_and_sets_behave_like_std() {
        let mut map: FxHashMap<&str, usize> = FxHashMap::default();
        map.insert("a", 1);
        map.insert("b", 2);
        assert_eq!(map.get("a"), Some(&1));

        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
    }

    #[test]
    fn sharded_set_inserts_once_across_shards() {
        let set: ShardedSet<Vec<u64>> = ShardedSet::new(7);
        assert_eq!(set.shard_count(), 8);
        assert!(set.is_empty());
        for i in 0..1000u64 {
            assert!(set.insert(vec![i, i * 3]));
        }
        for i in 0..1000u64 {
            assert!(!set.insert(vec![i, i * 3]));
            assert!(set.contains(&vec![i, i * 3]));
        }
        assert!(!set.contains(&vec![9999, 1]));
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn sharded_set_is_safe_under_concurrent_insertion() {
        let set: ShardedSet<u64> = ShardedSet::new(8);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let set = &set;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        // Overlapping ranges: every value inserted by two threads.
                        set.insert(t / 2 * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(set.len(), 1000);
    }
}
