//! # privacy-lts
//!
//! The formal model of user privacy described in Section II-B of
//! *"Identifying Privacy Risks in Distributed Data Services"* (Grace et al.,
//! ICDCS 2018): a **Labelled Transition System** whose states represent the
//! user's state of privacy and whose labelled transitions represent actions
//! performed by actors on the user's personal data.
//!
//! * [`space`] — the *variable space*: the ordered set of (actor, field)
//!   pairs; each pair contributes two Boolean state variables, `has` ("the
//!   actor has identified the field") and `could` ("the actor could identify
//!   the field"), giving the `2 × |actors| × |fields|` variables of the
//!   paper (60 for the healthcare example).
//! * [`state`] — a [`state::PrivacyState`]: a compact bit-set assignment of
//!   every state variable (Fig. 2).
//! * [`label`] — transition labels: the action (`collect`, `create`, `read`,
//!   `disclose`, `anon`, `delete`), the field set, the schema, the acting
//!   actor, an optional purpose and an optional risk annotation.
//! * [`lts`] — the LTS itself: interned states, labelled transitions,
//!   reachability and path queries, statistics.
//! * [`generate`] — automatic generation of the LTS from the data-flow
//!   diagrams and the access-control policy using the extraction rules of
//!   Section II-B (Fig. 3). Generation compiles the artefacts to a
//!   dense-index flow program (the private `compile` module) and explores it
//!   with a parallel frontier BFS (the private `engine` module) over a
//!   sharded fast-hash visited set ([`hash`]); see `docs/PERFORMANCE.md` for
//!   the design.
//! * [`mod@reference`] — the retained pre-optimisation generator, used to
//!   differential-test and benchmark the engine.
//! * [`index`] — the columnar analysis index ([`LtsIndex`]): a one-pass
//!   compilation of a generated LTS into dense columns, posting lists, a CSR
//!   adjacency and per-state-variable reachability postings, so the risk and
//!   compliance analyses probe instead of re-scanning the transition
//!   relation per question.
//! * [`query`] — privacy-specific queries used by the risk analyses; an
//!   [`LtsQuery`] answers from the index when one is attached.
//! * [`dot`] — Graphviz export (Fig. 3 / Fig. 4 style, with risk transitions
//!   drawn dotted).
//!
//! # Example
//!
//! ```
//! use privacy_lts::prelude::*;
//! use privacy_model::{ActorId, FieldId};
//!
//! let space = VarSpace::new(
//!     [ActorId::new("Doctor"), ActorId::new("Researcher")],
//!     [FieldId::new("Name"), FieldId::new("Diagnosis")],
//! );
//! assert_eq!(space.variable_count(), 8);
//!
//! let mut state = PrivacyState::absolute(&space);
//! state.set_has(&space, &ActorId::new("Doctor"), &FieldId::new("Diagnosis"), true);
//! assert!(state.has(&space, &ActorId::new("Doctor"), &FieldId::new("Diagnosis")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod compile;
pub mod dot;
mod engine;
pub mod generate;
pub mod hash;
pub mod index;
pub mod label;
pub mod lts;
pub mod query;
pub mod reference;
pub mod space;
pub mod state;

pub use generate::{generate_lts, GeneratorConfig};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher, ShardedSet};
pub use index::LtsIndex;
pub use label::{ActionKind, RiskAnnotation, TransitionLabel};
pub use lts::{Lts, LtsStats, StateId, Transition, TransitionId};
pub use query::LtsQuery;
pub use reference::generate_lts_reference;
pub use space::VarSpace;
pub use state::PrivacyState;

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::dot::lts_to_dot;
    pub use crate::generate::{generate_lts, GeneratorConfig};
    pub use crate::index::LtsIndex;
    pub use crate::label::{ActionKind, RiskAnnotation, TransitionLabel};
    pub use crate::lts::{Lts, LtsStats, StateId, Transition, TransitionId};
    pub use crate::query::LtsQuery;
    pub use crate::reference::generate_lts_reference;
    pub use crate::space::VarSpace;
    pub use crate::state::PrivacyState;
}
