//! The reference (pre-optimisation) LTS generator, retained for differential
//! testing and benchmarking.
//!
//! This is the direct transcription of the extraction rules of Section II-B:
//! a single-threaded BFS whose `apply_flow` resolves actor and field
//! identifiers through string-keyed map lookups for every bit it sets and
//! clones the string-backed datastore-contents set on every transition. The
//! optimised engine (the private `engine` module, reached through
//! [`crate::generate_lts`]) must produce exactly the same LTS — the property
//! tests in `tests/differential.rs` and the scaling benchmark
//! (`privacy-bench`, `lts_scaling`) hold the two implementations against
//! each other, which is why this path is kept alive rather than deleted.
//!
//! Semantics are identical to the optimised engine, including the
//! insertion-time `max_states` bound (see
//! [`GeneratorConfig::max_states`](crate::GeneratorConfig::max_states)).

use crate::generate::GeneratorConfig;
use crate::label::{ActionKind, TransitionLabel};
use crate::lts::Lts;
use crate::space::VarSpace;
use crate::state::PrivacyState;
use privacy_access::{AccessPolicy, Permission};
use privacy_dataflow::{Flow, FlowKind, SystemDataFlows};
use privacy_model::{Catalog, DatastoreId, FieldId, ModelError, SchemaId, ServiceId};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// The exploration key: per-service progress, datastore contents and the
/// privacy state. Progress and contents are needed to know which flows are
/// enabled; only the privacy state becomes an LTS state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CompositeState {
    progress: Vec<usize>,
    stored: BTreeSet<(DatastoreId, FieldId)>,
    privacy: PrivacyState,
}

/// Generates the privacy LTS with the retained reference implementation.
///
/// Prefer [`crate::generate_lts`]; this path exists to differential-test and
/// benchmark the optimised engine against.
///
/// # Errors
///
/// Returns [`ModelError::Invalid`] if the state bound of the configuration is
/// exceeded, and [`ModelError::Unknown`] if a requested service has no
/// diagram.
pub fn generate_lts_reference(
    catalog: &Catalog,
    system: &SystemDataFlows,
    policy: &AccessPolicy,
    config: &GeneratorConfig,
) -> Result<Lts, ModelError> {
    let space = VarSpace::from_catalog(catalog);
    let mut lts = Lts::new(space.clone());

    // Select and order the services to explore.
    let services: Vec<&ServiceId> = match &config.services {
        Some(selected) => {
            for service in selected {
                if system.diagram(service).is_none() {
                    return Err(ModelError::unknown("service diagram", service.as_str()));
                }
            }
            system.services().filter(|s| selected.contains(*s)).collect()
        }
        None => system.services().collect(),
    };
    let diagrams: Vec<&privacy_dataflow::DataFlowDiagram> =
        services.iter().map(|s| system.diagram(s).expect("checked above")).collect();

    let anonymised_stores: BTreeSet<DatastoreId> =
        catalog.datastores().filter(|d| d.is_anonymised()).map(|d| d.id().clone()).collect();

    let initial = CompositeState {
        progress: vec![0; diagrams.len()],
        stored: BTreeSet::new(),
        privacy: PrivacyState::absolute(&space),
    };

    // Each composite state is hashed exactly once, on insertion; the bound is
    // enforced at insertion time so the queue can never outgrow it.
    let mut visited: HashSet<CompositeState> = HashSet::new();
    let mut queue = VecDeque::new();
    visited.insert(initial.clone());
    bound_check(visited.len(), config.max_states)?;
    queue.push_back(initial);

    while let Some(current) = queue.pop_front() {
        let from_id = lts.intern(current.privacy.clone());

        // Which services may fire their next flow from this composite state?
        let enabled: Vec<usize> = if config.interleave_services {
            (0..diagrams.len()).filter(|&i| current.progress[i] < diagrams[i].len()).collect()
        } else {
            // Sequential execution: only the first unfinished service fires.
            (0..diagrams.len())
                .find(|&i| current.progress[i] < diagrams[i].len())
                .into_iter()
                .collect()
        };

        for service_index in enabled {
            let diagram = diagrams[service_index];
            let flow = &diagram.flows()[current.progress[service_index]];
            let (next_privacy, next_stored, label) = apply_flow(
                catalog,
                policy,
                &space,
                &anonymised_stores,
                &current.privacy,
                &current.stored,
                flow,
            );

            let mut next = CompositeState {
                progress: current.progress.clone(),
                stored: next_stored,
                privacy: next_privacy,
            };
            next.progress[service_index] += 1;

            let to_id = lts.intern(next.privacy.clone());
            lts.add_transition(from_id, to_id, label);

            if visited.insert(next.clone()) {
                bound_check(visited.len(), config.max_states)?;
                queue.push_back(next);
            }
        }

        // Potential reads: any actor the policy allows to read data that is
        // present in a datastore may perform an (unscheduled) read.
        if config.explore_potential_reads {
            for (store, field) in current.stored.iter() {
                let schema = catalog.datastore(store).map(|d| d.schema().clone());
                for actor in policy.actors_with(Permission::Read, store, field) {
                    if current.privacy.has(&space, &actor, field) {
                        continue;
                    }
                    let next_privacy = current.privacy.with_has(&space, &actor, field);
                    let next = CompositeState {
                        progress: current.progress.clone(),
                        stored: current.stored.clone(),
                        privacy: next_privacy.clone(),
                    };
                    let to_id = lts.intern(next_privacy);
                    let label = TransitionLabel::new(
                        ActionKind::Read,
                        actor.clone(),
                        [field.clone()],
                        schema.clone(),
                    );
                    lts.add_transition(from_id, to_id, label);
                    if visited.insert(next.clone()) {
                        bound_check(visited.len(), config.max_states)?;
                        queue.push_back(next);
                    }
                }
            }
        }
    }

    Ok(lts)
}

/// Fails once the number of composite states passes the configured bound.
fn bound_check(composite_states: usize, max_states: usize) -> Result<(), ModelError> {
    if composite_states > max_states {
        return Err(ModelError::invalid(format!(
            "lts generation exceeded the configured bound of {max_states} composite states"
        )));
    }
    Ok(())
}

/// Applies one flow to a privacy state, producing the successor privacy
/// state, the successor datastore contents and the transition label.
fn apply_flow(
    catalog: &Catalog,
    policy: &AccessPolicy,
    space: &VarSpace,
    anonymised_stores: &BTreeSet<DatastoreId>,
    privacy: &PrivacyState,
    stored: &BTreeSet<(DatastoreId, FieldId)>,
    flow: &Flow,
) -> (PrivacyState, BTreeSet<(DatastoreId, FieldId)>, TransitionLabel) {
    let mut next_privacy = privacy.clone();
    let mut next_stored = stored.clone();

    let kind = flow.kind(anonymised_stores);
    let actor =
        flow.acting_actor().cloned().unwrap_or_else(|| privacy_model::ActorId::new("<unknown>"));
    let purpose = flow.purpose().clone();

    let schema_of = |store: &DatastoreId| -> Option<SchemaId> {
        catalog.datastore(store).map(|d| d.schema().clone())
    };

    let (action, schema): (ActionKind, Option<SchemaId>) = match kind {
        FlowKind::Collect => {
            if let Some(receiver) = flow.receiving_actor() {
                for field in flow.fields() {
                    next_privacy.set_has(space, receiver, field, true);
                }
            }
            (ActionKind::Collect, None)
        }
        FlowKind::Disclose => {
            if let Some(receiver) = flow.receiving_actor() {
                for field in flow.fields() {
                    next_privacy.set_has(space, receiver, field, true);
                }
            }
            (ActionKind::Disclose, None)
        }
        FlowKind::Create | FlowKind::Anonymise => {
            let store =
                flow.to().as_datastore().cloned().unwrap_or_else(|| DatastoreId::new("<unknown>"));
            for field in flow.fields() {
                next_stored.insert((store.clone(), field.clone()));
                // Every actor with read access to this field in this store
                // could now identify it.
                for reader in policy.actors_with(Permission::Read, &store, field) {
                    next_privacy.set_could(space, &reader, field, true);
                }
            }
            let action =
                if kind == FlowKind::Anonymise { ActionKind::Anon } else { ActionKind::Create };
            (action, schema_of(&store))
        }
        FlowKind::Read => {
            let store = flow
                .from()
                .as_datastore()
                .cloned()
                .unwrap_or_else(|| DatastoreId::new("<unknown>"));
            if let Some(reader) = flow.receiving_actor() {
                for field in flow.fields() {
                    if policy.can(reader, Permission::Read, &store, field) {
                        next_privacy.set_has(space, reader, field, true);
                    }
                }
            }
            (ActionKind::Read, schema_of(&store))
        }
        _ => (ActionKind::Disclose, None),
    };

    let label = TransitionLabel::new(action, actor, flow.fields().iter().cloned(), schema)
        .with_purpose(purpose);
    (next_privacy, next_stored, label)
}
