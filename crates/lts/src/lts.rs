//! The labelled transition system: interned states, labelled transitions and
//! structural queries.

use crate::label::{RiskAnnotation, TransitionLabel};
use crate::space::VarSpace;
use crate::state::PrivacyState;
use privacy_model::RiskLevel;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Index of a state within an [`Lts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub usize);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Index of a transition within an [`Lts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub usize);

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One labelled transition between two states.
///
/// Labels are stored behind [`Arc`] so that the many transitions generated
/// from the same compiled flow share one allocation; mutation (risk
/// annotation) copies-on-write via [`Arc::make_mut`], so annotating one
/// transition never affects another that happens to share its label.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    from: StateId,
    to: StateId,
    label: Arc<TransitionLabel>,
    /// Risk-transitions are the dotted edges of Fig. 4: they do not belong to
    /// any declared service flow but represent an access that the policy
    /// makes possible.
    risk_transition: bool,
}

impl Transition {
    /// The source state.
    pub fn from(&self) -> StateId {
        self.from
    }

    /// The target state.
    pub fn to(&self) -> StateId {
        self.to
    }

    /// The label.
    pub fn label(&self) -> &TransitionLabel {
        &self.label
    }

    /// Mutable access to the label (used by risk annotation). If the label is
    /// shared with other transitions it is cloned first (copy-on-write).
    pub fn label_mut(&mut self) -> &mut TransitionLabel {
        Arc::make_mut(&mut self.label)
    }

    /// Returns `true` if this is a risk-transition (dotted edge in Fig. 4).
    pub fn is_risk_transition(&self) -> bool {
        self.risk_transition
    }

    /// The address of the shared label allocation. The analysis index keys a
    /// per-label cache on it: the generation engine interns labels, so a
    /// handful of distinct allocations cover millions of transitions.
    pub(crate) fn label_ptr(&self) -> *const TransitionLabel {
        Arc::as_ptr(&self.label)
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --[{}]--> {}", self.from, self.label, self.to)
    }
}

/// Summary statistics of an LTS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LtsStats {
    /// Number of distinct privacy states.
    pub states: usize,
    /// Number of transitions.
    pub transitions: usize,
    /// Number of transitions flagged as risk-transitions.
    pub risk_transitions: usize,
    /// Number of Boolean state variables carried by each state.
    pub state_variables: usize,
    /// `2^state_variables`: the size of the unreduced state space the
    /// data-flow model avoids exploring.
    pub theoretical_states: f64,
}

impl fmt::Display for LtsStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions ({} risk transitions), {} state variables \
             (theoretical state space 2^{} = {:.3e})",
            self.states,
            self.transitions,
            self.risk_transitions,
            self.state_variables,
            self.state_variables,
            self.theoretical_states
        )
    }
}

/// A labelled transition system over privacy states.
#[derive(Debug, Clone, PartialEq)]
pub struct Lts {
    space: VarSpace,
    states: Vec<PrivacyState>,
    index: HashMap<PrivacyState, StateId>,
    transitions: Vec<Transition>,
    outgoing: Vec<Vec<TransitionId>>,
    initial: StateId,
}

impl Lts {
    /// Creates an LTS over the given variable space whose initial state is
    /// the absolute privacy state.
    pub fn new(space: VarSpace) -> Self {
        let initial_state = PrivacyState::absolute(&space);
        let mut index = HashMap::new();
        index.insert(initial_state.clone(), StateId(0));
        Lts {
            space,
            states: vec![initial_state],
            index,
            transitions: Vec::new(),
            outgoing: vec![Vec::new()],
            initial: StateId(0),
        }
    }

    /// The variable space the states are defined over.
    pub fn space(&self) -> &VarSpace {
        &self.space
    }

    /// The initial state (the absolute privacy state).
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Interns a state, returning its id (existing id if already present).
    pub fn intern(&mut self, state: PrivacyState) -> StateId {
        if let Some(id) = self.index.get(&state) {
            return *id;
        }
        let id = StateId(self.states.len());
        self.index.insert(state.clone(), id);
        self.states.push(state);
        self.outgoing.push(Vec::new());
        id
    }

    /// Looks up the id of a state if it has been interned.
    pub fn find(&self, state: &PrivacyState) -> Option<StateId> {
        self.index.get(state).copied()
    }

    /// The state with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this LTS.
    pub fn state(&self, id: StateId) -> &PrivacyState {
        &self.states[id.0]
    }

    /// Adds a transition. Duplicate transitions (same endpoints and equal
    /// label) are not added twice; the id of the existing transition is
    /// returned instead.
    pub fn add_transition(
        &mut self,
        from: StateId,
        to: StateId,
        label: TransitionLabel,
    ) -> TransitionId {
        self.add_transition_inner(from, to, Arc::new(label), false)
    }

    /// Adds a transition whose label is shared (interned), with the full
    /// duplicate scan. The engine pre-dedups and uses
    /// [`Lts::add_transition_shared_unchecked`]; this checked variant backs
    /// the copy-on-write unit tests.
    #[cfg(test)]
    pub(crate) fn add_transition_shared(
        &mut self,
        from: StateId,
        to: StateId,
        label: Arc<TransitionLabel>,
    ) -> TransitionId {
        self.add_transition_inner(from, to, label, false)
    }

    /// Adds a risk-transition (a dotted edge in Fig. 4).
    pub fn add_risk_transition(
        &mut self,
        from: StateId,
        to: StateId,
        label: TransitionLabel,
    ) -> TransitionId {
        self.add_transition_inner(from, to, Arc::new(label), true)
    }

    /// Adds a risk-transition with a shared (interned) label.
    #[cfg(test)]
    pub(crate) fn add_risk_transition_shared(
        &mut self,
        from: StateId,
        to: StateId,
        label: Arc<TransitionLabel>,
    ) -> TransitionId {
        self.add_transition_inner(from, to, label, true)
    }

    /// Adds a non-risk transition without scanning for duplicates. The
    /// generation engine dedups `(from, to, label)` triples by interned label
    /// index up front — exactly the check the scan would perform — so the
    /// linear scan over hub states' outgoing lists (quadratic in out-degree)
    /// is skipped.
    pub(crate) fn add_transition_shared_unchecked(
        &mut self,
        from: StateId,
        to: StateId,
        label: Arc<TransitionLabel>,
    ) -> TransitionId {
        let id = TransitionId(self.transitions.len());
        self.transitions.push(Transition { from, to, label, risk_transition: false });
        self.outgoing[from.0].push(id);
        id
    }

    fn add_transition_inner(
        &mut self,
        from: StateId,
        to: StateId,
        label: Arc<TransitionLabel>,
        risk_transition: bool,
    ) -> TransitionId {
        if let Some(existing) = self.outgoing[from.0].iter().find(|tid| {
            let t = &self.transitions[tid.0];
            t.to == to
                && t.risk_transition == risk_transition
                && (Arc::ptr_eq(&t.label, &label) || t.label == label)
        }) {
            return *existing;
        }
        let id = TransitionId(self.transitions.len());
        self.transitions.push(Transition { from, to, label, risk_transition });
        self.outgoing[from.0].push(id);
        id
    }

    /// The transition with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this LTS.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.0]
    }

    /// Mutable access to a transition (used by risk annotation).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this LTS.
    pub fn transition_mut(&mut self, id: TransitionId) -> &mut Transition {
        &mut self.transitions[id.0]
    }

    /// Attaches a risk annotation to a transition.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this LTS.
    pub fn annotate(&mut self, id: TransitionId, risk: RiskAnnotation) {
        self.transitions[id.0].label_mut().set_risk(risk);
    }

    /// Iterates over the states with their ids.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &PrivacyState)> {
        self.states.iter().enumerate().map(|(i, s)| (StateId(i), s))
    }

    /// Iterates over the transitions with their ids.
    pub fn transitions(&self) -> impl Iterator<Item = (TransitionId, &Transition)> {
        self.transitions.iter().enumerate().map(|(i, t)| (TransitionId(i), t))
    }

    /// The outgoing transitions of a state.
    pub fn outgoing(&self, state: StateId) -> impl Iterator<Item = (TransitionId, &Transition)> {
        self.outgoing[state.0].iter().map(move |tid| (*tid, &self.transitions[tid.0]))
    }

    /// The outgoing transition ids of a state as a slice (used by the
    /// analysis index to build its CSR adjacency without re-walking the
    /// transition relation).
    pub(crate) fn outgoing_ids(&self, state: StateId) -> &[TransitionId] {
        &self.outgoing[state.0]
    }

    /// The incoming transitions of a state.
    pub fn incoming(&self, state: StateId) -> impl Iterator<Item = (TransitionId, &Transition)> {
        self.transitions
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.to == state)
            .map(|(i, t)| (TransitionId(i), t))
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The ids of states reachable from the initial state (always includes
    /// the initial state), in breadth-first order.
    pub fn reachable(&self) -> Vec<StateId> {
        self.reachable_from(self.initial)
    }

    /// The ids of states reachable from `start`, in breadth-first order.
    pub fn reachable_from(&self, start: StateId) -> Vec<StateId> {
        let mut visited = vec![false; self.states.len()];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        visited[start.0] = true;
        queue.push_back(start);
        while let Some(current) = queue.pop_front() {
            order.push(current);
            for tid in &self.outgoing[current.0] {
                let next = self.transitions[tid.0].to;
                if !visited[next.0] {
                    visited[next.0] = true;
                    queue.push_back(next);
                }
            }
        }
        order
    }

    /// A shortest path (sequence of transition ids) from the initial state to
    /// the first state satisfying `goal`, if one exists.
    pub fn path_to(&self, goal: impl Fn(&PrivacyState) -> bool) -> Option<Vec<TransitionId>> {
        if goal(self.state(self.initial)) {
            return Some(Vec::new());
        }
        let mut visited = vec![false; self.states.len()];
        let mut parent: Vec<Option<TransitionId>> = vec![None; self.states.len()];
        let mut queue = VecDeque::new();
        visited[self.initial.0] = true;
        queue.push_back(self.initial);
        while let Some(current) = queue.pop_front() {
            for tid in &self.outgoing[current.0] {
                let next = self.transitions[tid.0].to;
                if visited[next.0] {
                    continue;
                }
                visited[next.0] = true;
                parent[next.0] = Some(*tid);
                if goal(self.state(next)) {
                    // Reconstruct the path.
                    let mut path = Vec::new();
                    let mut cursor = next;
                    while let Some(tid) = parent[cursor.0] {
                        path.push(tid);
                        cursor = self.transitions[tid.0].from;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// Summary statistics.
    pub fn stats(&self) -> LtsStats {
        LtsStats {
            states: self.states.len(),
            transitions: self.transitions.len(),
            risk_transitions: self.transitions.iter().filter(|t| t.risk_transition).count(),
            state_variables: self.space.variable_count(),
            theoretical_states: self.space.theoretical_state_count(),
        }
    }

    /// The transitions whose risk annotation is at least `level`.
    pub fn transitions_at_risk(
        &self,
        level: RiskLevel,
    ) -> impl Iterator<Item = (TransitionId, &Transition)> {
        self.transitions().filter(move |(_, t)| {
            t.label().risk().map(|r| r.risk_level().at_least(level)).unwrap_or(false)
        })
    }
}

impl fmt::Display for Lts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "lts: {}", self.stats())?;
        for (_, transition) in self.transitions() {
            writeln!(f, "  {transition}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{ActionKind, TransitionLabel};
    use privacy_model::{ActorId, FieldId};

    fn space() -> VarSpace {
        VarSpace::new(
            [ActorId::new("Doctor"), ActorId::new("Admin")],
            [FieldId::new("Name"), FieldId::new("Diagnosis")],
        )
    }

    fn label(action: ActionKind, actor: &str, field: &str) -> TransitionLabel {
        TransitionLabel::new(action, actor, [FieldId::new(field)], None)
    }

    fn two_step_lts() -> Lts {
        let space = space();
        let mut lts = Lts::new(space.clone());
        let s0 = lts.initial();
        let s1 = lts.intern(lts.state(s0).clone().with_has(
            &space,
            &ActorId::new("Doctor"),
            &FieldId::new("Name"),
        ));
        let s2 = lts.intern(lts.state(s1).clone().with_could(
            &space,
            &ActorId::new("Admin"),
            &FieldId::new("Diagnosis"),
        ));
        lts.add_transition(s0, s1, label(ActionKind::Collect, "Doctor", "Name"));
        lts.add_transition(s1, s2, label(ActionKind::Create, "Doctor", "Diagnosis"));
        lts
    }

    #[test]
    fn new_lts_has_only_the_absolute_initial_state() {
        let lts = Lts::new(space());
        assert_eq!(lts.state_count(), 1);
        assert_eq!(lts.transition_count(), 0);
        assert!(lts.state(lts.initial()).is_absolute());
        assert_eq!(lts.reachable(), vec![lts.initial()]);
    }

    #[test]
    fn interning_deduplicates_states() {
        let space = space();
        let mut lts = Lts::new(space.clone());
        let state = PrivacyState::absolute(&space).with_has(
            &space,
            &ActorId::new("Doctor"),
            &FieldId::new("Name"),
        );
        let a = lts.intern(state.clone());
        let b = lts.intern(state.clone());
        assert_eq!(a, b);
        assert_eq!(lts.state_count(), 2);
        assert_eq!(lts.find(&state), Some(a));
        assert_eq!(lts.intern(PrivacyState::absolute(&space)), lts.initial());
    }

    #[test]
    fn duplicate_transitions_are_not_added_twice() {
        let mut lts = two_step_lts();
        let before = lts.transition_count();
        let s0 = lts.initial();
        let s1 = lts.transition(TransitionId(0)).to();
        let id = lts.add_transition(s0, s1, label(ActionKind::Collect, "Doctor", "Name"));
        assert_eq!(lts.transition_count(), before);
        assert_eq!(id, TransitionId(0));

        // A different label between the same states is a new transition.
        lts.add_transition(s0, s1, label(ActionKind::Read, "Doctor", "Name"));
        assert_eq!(lts.transition_count(), before + 1);
    }

    #[test]
    fn outgoing_incoming_and_reachability() {
        let lts = two_step_lts();
        let s0 = lts.initial();
        assert_eq!(lts.outgoing(s0).count(), 1);
        let (_, t) = lts.outgoing(s0).next().unwrap();
        let s1 = t.to();
        assert_eq!(lts.incoming(s1).count(), 1);
        assert_eq!(lts.reachable().len(), 3);
        assert_eq!(lts.reachable_from(s1).len(), 2);
    }

    #[test]
    fn path_to_finds_the_shortest_witness() {
        let lts = two_step_lts();
        let space = lts.space().clone();
        let admin = ActorId::new("Admin");
        let diagnosis = FieldId::new("Diagnosis");
        let path = lts
            .path_to(|state| state.could(&space, &admin, &diagnosis))
            .expect("a path must exist");
        assert_eq!(path.len(), 2);
        assert_eq!(lts.transition(path[0]).label().action(), ActionKind::Collect);
        assert_eq!(lts.transition(path[1]).label().action(), ActionKind::Create);

        // Goal already satisfied in the initial state -> empty path.
        let path = lts.path_to(|state| state.is_absolute()).unwrap();
        assert!(path.is_empty());

        // Unreachable goal -> None.
        assert!(lts.path_to(|state| state.has(&space, &admin, &diagnosis)).is_none());
    }

    #[test]
    fn risk_transitions_and_annotation() {
        let mut lts = two_step_lts();
        let s2 = StateId(2);
        let s_risk = {
            let space = lts.space().clone();
            lts.intern(lts.state(s2).clone().with_has(
                &space,
                &ActorId::new("Admin"),
                &FieldId::new("Diagnosis"),
            ))
        };
        let tid =
            lts.add_risk_transition(s2, s_risk, label(ActionKind::Read, "Admin", "Diagnosis"));
        assert!(lts.transition(tid).is_risk_transition());

        lts.annotate(tid, RiskAnnotation::level(RiskLevel::Medium));
        assert_eq!(lts.transition(tid).label().risk().unwrap().risk_level(), RiskLevel::Medium);
        assert_eq!(lts.transitions_at_risk(RiskLevel::Medium).count(), 1);
        assert_eq!(lts.transitions_at_risk(RiskLevel::High).count(), 0);

        let stats = lts.stats();
        assert_eq!(stats.states, 4);
        assert_eq!(stats.transitions, 3);
        assert_eq!(stats.risk_transitions, 1);
        assert_eq!(stats.state_variables, 8);
        assert_eq!(stats.theoretical_states, 256.0);
        assert!(stats.to_string().contains("4 states"));
    }

    #[test]
    fn shared_labels_copy_on_write_under_annotation() {
        let mut lts = two_step_lts();
        let s0 = lts.initial();
        let s1 = lts.transition(TransitionId(0)).to();
        let s2 = lts.transition(TransitionId(1)).to();
        let shared = std::sync::Arc::new(label(ActionKind::Read, "Admin", "Name"));

        let t_a = lts.add_transition_shared(s0, s2, std::sync::Arc::clone(&shared));
        let t_b = lts.add_transition_shared(s1, s2, std::sync::Arc::clone(&shared));
        // Re-adding the same shared label between the same states dedups.
        assert_eq!(lts.add_transition_shared(s0, s2, std::sync::Arc::clone(&shared)), t_a);

        // Annotating one transition must not leak into the other.
        lts.annotate(t_a, RiskAnnotation::level(RiskLevel::High));
        assert!(lts.transition(t_a).label().risk().is_some());
        assert!(lts.transition(t_b).label().risk().is_none());
        assert!(shared.risk().is_none());

        let t_risk = lts.add_risk_transition_shared(s2, s2, shared);
        assert!(lts.transition(t_risk).is_risk_transition());
    }

    #[test]
    fn display_lists_transitions() {
        let lts = two_step_lts();
        let text = lts.to_string();
        assert!(text.contains("lts: 3 states"));
        assert!(text.contains("collect(Doctor, {Name})"));
        assert!(text.contains("s0 --["));
    }

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(StateId(3).to_string(), "s3");
        assert_eq!(TransitionId(7).to_string(), "t7");
    }
}
