//! Privacy-specific queries over a generated LTS.
//!
//! The paper argues that *"a developer can determine which actors can
//! identify which data during the course of a service (in conflict with user
//! preferences)"*. [`LtsQuery`] wraps an [`Lts`] with the questions the risk
//! analyses and the examples need to ask.
//!
//! Every query has two execution strategies: a direct scan over the
//! transition relation / reachable states, and — when an [`LtsIndex`] is
//! attached via [`LtsQuery::with_index`] — a probe of the columnar index's
//! posting lists. Both return identical results in identical order (the
//! index stores its postings in transition-id and breadth-first state order,
//! exactly the orders the scans produce); the property tests in
//! `privacy-compliance` and `privacy-risk` pin that equivalence.

use crate::index::LtsIndex;
use crate::label::ActionKind;
use crate::lts::{Lts, StateId, Transition, TransitionId};
use privacy_model::{ActorId, FieldId};
use std::collections::BTreeSet;

/// A read-only query interface over an [`Lts`], optionally accelerated by a
/// columnar [`LtsIndex`].
#[derive(Debug, Clone, Copy)]
pub struct LtsQuery<'a> {
    lts: &'a Lts,
    index: Option<&'a LtsIndex>,
}

impl<'a> LtsQuery<'a> {
    /// Wraps an LTS (scan strategy).
    pub fn new(lts: &'a Lts) -> Self {
        LtsQuery { lts, index: None }
    }

    /// Wraps an LTS together with its analysis index (probe strategy). The
    /// index must have been built from this LTS (and the LTS must not have
    /// been mutated since), otherwise answers describe the stale snapshot.
    pub fn with_index(lts: &'a Lts, index: &'a LtsIndex) -> Self {
        LtsQuery { lts, index: Some(index) }
    }

    /// The underlying LTS.
    pub fn lts(&self) -> &'a Lts {
        self.lts
    }

    /// The attached analysis index, if any.
    pub fn index(&self) -> Option<&'a LtsIndex> {
        self.index
    }

    /// The reachable states in which `actor` **has identified** `field`.
    pub fn states_where_identified(&self, actor: &ActorId, field: &FieldId) -> Vec<StateId> {
        if let Some(index) = self.index {
            return index.states_where_has(actor, field).to_vec();
        }
        let space = self.lts.space();
        self.lts
            .reachable()
            .into_iter()
            .filter(|id| self.lts.state(*id).has(space, actor, field))
            .collect()
    }

    /// The reachable states in which `actor` **could identify** `field`.
    pub fn states_where_accessible(&self, actor: &ActorId, field: &FieldId) -> Vec<StateId> {
        if let Some(index) = self.index {
            return index.states_where_could(actor, field).to_vec();
        }
        let space = self.lts.space();
        self.lts
            .reachable()
            .into_iter()
            .filter(|id| self.lts.state(*id).could(space, actor, field))
            .collect()
    }

    /// Returns `true` if some reachable state lets `actor` identify `field`
    /// (either `has` or `could`).
    pub fn can_actor_identify(&self, actor: &ActorId, field: &FieldId) -> bool {
        if let Some(index) = self.index {
            return index.can_actor_identify(actor, field);
        }
        let space = self.lts.space();
        self.lts
            .reachable()
            .into_iter()
            .any(|id| self.lts.state(id).has_or_could(space, actor, field))
    }

    /// Every (actor, field) pair exposed (`has ∨ could`) in some reachable
    /// state — the paper's "which actors can identify which data during the
    /// course of a service".
    pub fn exposure_summary(&self) -> BTreeSet<(ActorId, FieldId)> {
        let space = self.lts.space();
        if let Some(index) = self.index {
            let mut summary = BTreeSet::new();
            for actor in space.actors() {
                for field in space.fields() {
                    if index.can_actor_identify(actor, field) {
                        summary.insert((actor.clone(), field.clone()));
                    }
                }
            }
            return summary;
        }
        let mut summary = BTreeSet::new();
        for id in self.lts.reachable() {
            for (actor, field) in self.lts.state(id).exposed_pairs(space) {
                summary.insert((actor.clone(), field.clone()));
            }
        }
        summary
    }

    /// The transitions performing a given action kind.
    pub fn transitions_of_kind(&self, action: ActionKind) -> Vec<(TransitionId, &'a Transition)> {
        if let Some(index) = self.index {
            return self.resolve(index.transitions_of_kind(action));
        }
        self.lts.transitions().filter(|(_, t)| t.label().action() == action).collect()
    }

    /// The transitions performed by a given actor.
    pub fn transitions_by_actor(&self, actor: &ActorId) -> Vec<(TransitionId, &'a Transition)> {
        if let Some(index) = self.index {
            return self.resolve(index.transitions_by_actor(actor));
        }
        self.lts.transitions().filter(|(_, t)| t.label().actor() == actor).collect()
    }

    /// The transitions that involve a given field.
    pub fn transitions_involving_field(
        &self,
        field: &FieldId,
    ) -> Vec<(TransitionId, &'a Transition)> {
        if let Some(index) = self.index {
            return self.resolve(index.transitions_involving_field(field));
        }
        self.lts.transitions().filter(|(_, t)| t.label().involves_field(field)).collect()
    }

    /// The `read` transitions performed by actors outside the allowed set —
    /// the transitions the disclosure-risk analysis attaches risk labels to.
    pub fn reads_by_non_allowed(
        &self,
        allowed: &BTreeSet<ActorId>,
    ) -> Vec<(TransitionId, &'a Transition)> {
        if let Some(index) = self.index {
            let ids: Vec<u32> = index
                .transitions_of_kind(ActionKind::Read)
                .iter()
                .filter(|&&tx| !allowed.contains(index.actor_of(tx)))
                .copied()
                .collect();
            return self.resolve(&ids);
        }
        self.lts
            .transitions()
            .filter(|(_, t)| {
                t.label().action() == ActionKind::Read && !allowed.contains(t.label().actor())
            })
            .collect()
    }

    /// The shortest action trace (labels only) leading to a state where
    /// `actor` has identified `field`, if any.
    pub fn trace_to_identification(&self, actor: &ActorId, field: &FieldId) -> Option<Vec<String>> {
        let space = self.lts.space();
        let actor = actor.clone();
        let field = field.clone();
        self.lts.path_to(move |state| state.has(space, &actor, &field)).map(|path| {
            path.into_iter().map(|tid| self.lts.transition(tid).label().to_string()).collect()
        })
    }

    fn resolve(&self, ids: &[u32]) -> Vec<(TransitionId, &'a Transition)> {
        ids.iter()
            .map(|&tx| {
                let id = TransitionId(tx as usize);
                (id, self.lts.transition(id))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::TransitionLabel;
    use crate::space::VarSpace;
    use crate::state::PrivacyState;

    fn doctor() -> ActorId {
        ActorId::new("Doctor")
    }

    fn admin() -> ActorId {
        ActorId::new("Admin")
    }

    fn name() -> FieldId {
        FieldId::new("Name")
    }

    fn diagnosis() -> FieldId {
        FieldId::new("Diagnosis")
    }

    /// s0 --collect(Doctor,Name)--> s1 --create(Doctor,Diagnosis)--> s2
    ///    (s2: Admin could identify Diagnosis)
    /// s2 --read(Admin,Diagnosis)--> s3
    fn sample_lts() -> Lts {
        let space = VarSpace::new([doctor(), admin()], [name(), diagnosis()]);
        let mut lts = Lts::new(space.clone());
        let s0 = lts.initial();
        let s1 = lts.intern(PrivacyState::absolute(&space).with_has(&space, &doctor(), &name()));
        let s2 = lts.intern(lts.state(s1).clone().with_could(&space, &admin(), &diagnosis()));
        let s3 = lts.intern(lts.state(s2).clone().with_has(&space, &admin(), &diagnosis()));
        lts.add_transition(
            s0,
            s1,
            TransitionLabel::new(ActionKind::Collect, doctor(), [name()], None),
        );
        lts.add_transition(
            s1,
            s2,
            TransitionLabel::new(ActionKind::Create, doctor(), [diagnosis()], None),
        );
        lts.add_transition(
            s2,
            s3,
            TransitionLabel::new(ActionKind::Read, admin(), [diagnosis()], None),
        );
        lts
    }

    #[test]
    fn state_queries_find_identification_and_accessibility() {
        let lts = sample_lts();
        let query = LtsQuery::new(&lts);

        assert_eq!(query.states_where_identified(&doctor(), &name()).len(), 3);
        assert_eq!(query.states_where_identified(&admin(), &diagnosis()).len(), 1);
        assert_eq!(query.states_where_accessible(&admin(), &diagnosis()).len(), 2);
        assert!(query.can_actor_identify(&admin(), &diagnosis()));
        assert!(!query.can_actor_identify(&admin(), &name()));
    }

    #[test]
    fn exposure_summary_lists_every_exposed_pair() {
        let lts = sample_lts();
        let summary = LtsQuery::new(&lts).exposure_summary();
        assert!(summary.contains(&(doctor(), name())));
        assert!(summary.contains(&(admin(), diagnosis())));
        assert!(!summary.contains(&(admin(), name())));
        assert_eq!(summary.len(), 2);
    }

    #[test]
    fn transition_filters_work() {
        let lts = sample_lts();
        let query = LtsQuery::new(&lts);
        assert_eq!(query.transitions_of_kind(ActionKind::Read).len(), 1);
        assert_eq!(query.transitions_of_kind(ActionKind::Delete).len(), 0);
        assert_eq!(query.transitions_by_actor(&doctor()).len(), 2);
        assert_eq!(query.transitions_involving_field(&diagnosis()).len(), 2);
    }

    #[test]
    fn non_allowed_reads_are_found() {
        let lts = sample_lts();
        let query = LtsQuery::new(&lts);
        let allowed: BTreeSet<ActorId> = [doctor()].into_iter().collect();
        let risky = query.reads_by_non_allowed(&allowed);
        assert_eq!(risky.len(), 1);
        assert_eq!(risky[0].1.label().actor(), &admin());

        let all_allowed: BTreeSet<ActorId> = [doctor(), admin()].into_iter().collect();
        assert!(query.reads_by_non_allowed(&all_allowed).is_empty());
    }

    #[test]
    fn trace_to_identification_returns_action_sequence() {
        let lts = sample_lts();
        let query = LtsQuery::new(&lts);
        let trace = query.trace_to_identification(&admin(), &diagnosis()).unwrap();
        assert_eq!(trace.len(), 3);
        assert!(trace[0].starts_with("collect"));
        assert!(trace[2].starts_with("read"));
        assert!(query.trace_to_identification(&admin(), &name()).is_none());
    }

    #[test]
    fn indexed_queries_equal_scan_queries() {
        let lts = sample_lts();
        let index = LtsIndex::build(&lts);
        let scan = LtsQuery::new(&lts);
        let probed = LtsQuery::with_index(&lts, &index);
        assert!(probed.index().is_some());

        for actor in [doctor(), admin(), ActorId::new("Ghost")] {
            for field in [name(), diagnosis(), FieldId::new("Ghost")] {
                assert_eq!(
                    scan.states_where_identified(&actor, &field),
                    probed.states_where_identified(&actor, &field)
                );
                assert_eq!(
                    scan.states_where_accessible(&actor, &field),
                    probed.states_where_accessible(&actor, &field)
                );
                assert_eq!(
                    scan.can_actor_identify(&actor, &field),
                    probed.can_actor_identify(&actor, &field)
                );
            }
            assert_eq!(scan.transitions_by_actor(&actor), probed.transitions_by_actor(&actor));
        }
        assert_eq!(scan.exposure_summary(), probed.exposure_summary());
        for action in ActionKind::ALL {
            assert_eq!(scan.transitions_of_kind(action), probed.transitions_of_kind(action));
        }
        for field in [name(), diagnosis()] {
            assert_eq!(
                scan.transitions_involving_field(&field),
                probed.transitions_involving_field(&field)
            );
        }
        let allowed: BTreeSet<ActorId> = [doctor()].into_iter().collect();
        assert_eq!(scan.reads_by_non_allowed(&allowed), probed.reads_by_non_allowed(&allowed));
    }
}
