//! Privacy states: assignments of every state variable (Fig. 2).

use crate::space::{VarKind, VarSpace};
use privacy_model::{ActorId, FieldId};
use std::fmt;

/// A state of user privacy: one Boolean per (actor, field, has/could)
/// variable, stored as a packed bit set.
///
/// The *absolute privacy state* (every variable false) is the initial state
/// of the generated LTS and the reference point for sensitivity-change
/// computations in the risk analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrivacyState {
    bits: Vec<u64>,
    len: usize,
}

impl PrivacyState {
    /// Creates the absolute privacy state (all variables false) for a space.
    pub fn absolute(space: &VarSpace) -> Self {
        let len = space.variable_count();
        PrivacyState { bits: vec![0; len.div_ceil(64)], len }
    }

    /// Reconstructs a state from its raw backing words (used by the compiled
    /// generation engine, which manipulates states as bare `u64` words).
    pub(crate) fn from_raw_words(bits: Vec<u64>, len: usize) -> Self {
        debug_assert_eq!(bits.len(), len.div_ceil(64));
        PrivacyState { bits, len }
    }

    /// Reconstructs a state of `len` variables from its packed backing words
    /// (bit `i` of the concatenated words is variable `i` of the
    /// [`VarSpace`]). The low-level counterpart of [`PrivacyState::words`]
    /// for components — like the indexed runtime monitor — that manipulate
    /// states as bare `u64` words and only materialise a `PrivacyState` at
    /// their API boundary.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not exactly `len.div_ceil(64)` words long.
    pub fn from_words(bits: Vec<u64>, len: usize) -> Self {
        assert_eq!(bits.len(), len.div_ceil(64), "word count must match the variable count");
        PrivacyState { bits, len }
    }

    /// The raw backing words (bit `i` is variable `i` of the [`VarSpace`];
    /// trailing bits of the last word are zero). Used by the analysis index
    /// and the indexed runtime monitor, which iterate and mutate set bits
    /// directly instead of probing variables one at a time.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Number of variables tracked by this state.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the state tracks no variables at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if every variable is false (the absolute privacy
    /// state).
    pub fn is_absolute(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    fn get_bit(&self, bit: usize) -> bool {
        if bit >= self.len {
            return false;
        }
        (self.bits[bit / 64] >> (bit % 64)) & 1 == 1
    }

    fn set_bit(&mut self, bit: usize, value: bool) {
        if bit >= self.len {
            return;
        }
        let word = bit / 64;
        let mask = 1u64 << (bit % 64);
        if value {
            self.bits[word] |= mask;
        } else {
            self.bits[word] &= !mask;
        }
    }

    /// Whether `actor` **has identified** `field` in this state.
    pub fn has(&self, space: &VarSpace, actor: &ActorId, field: &FieldId) -> bool {
        space.bit_index(actor, field, VarKind::Has).map(|bit| self.get_bit(bit)).unwrap_or(false)
    }

    /// Whether `actor` **could identify** `field` in this state.
    pub fn could(&self, space: &VarSpace, actor: &ActorId, field: &FieldId) -> bool {
        space.bit_index(actor, field, VarKind::Could).map(|bit| self.get_bit(bit)).unwrap_or(false)
    }

    /// Whether `actor` has identified **or** could identify `field`.
    ///
    /// The impact model of Section III-A treats the two equivalently: *"a
    /// user will be equivalently sensitive if the data field has been
    /// identified or the data field could be identified by a non-allowed
    /// actor"*.
    pub fn has_or_could(&self, space: &VarSpace, actor: &ActorId, field: &FieldId) -> bool {
        self.has(space, actor, field) || self.could(space, actor, field)
    }

    /// Sets the `has` variable for (actor, field). Unknown actors/fields are
    /// ignored.
    pub fn set_has(&mut self, space: &VarSpace, actor: &ActorId, field: &FieldId, value: bool) {
        if let Some(bit) = space.bit_index(actor, field, VarKind::Has) {
            self.set_bit(bit, value);
        }
    }

    /// Sets the `could` variable for (actor, field). Unknown actors/fields
    /// are ignored.
    pub fn set_could(&mut self, space: &VarSpace, actor: &ActorId, field: &FieldId, value: bool) {
        if let Some(bit) = space.bit_index(actor, field, VarKind::Could) {
            self.set_bit(bit, value);
        }
    }

    /// Returns a copy with the `has` variable set.
    pub fn with_has(&self, space: &VarSpace, actor: &ActorId, field: &FieldId) -> PrivacyState {
        let mut next = self.clone();
        next.set_has(space, actor, field, true);
        next
    }

    /// Returns a copy with the `could` variable set.
    pub fn with_could(&self, space: &VarSpace, actor: &ActorId, field: &FieldId) -> PrivacyState {
        let mut next = self.clone();
        next.set_could(space, actor, field, true);
        next
    }

    /// Number of variables that are true.
    pub fn count_true(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The fields that `actor` has identified in this state.
    pub fn fields_identified_by<'a>(
        &'a self,
        space: &'a VarSpace,
        actor: &'a ActorId,
    ) -> impl Iterator<Item = &'a FieldId> + 'a {
        space.fields().iter().filter(move |field| self.has(space, actor, field))
    }

    /// The fields that `actor` could identify (but has not necessarily
    /// identified) in this state.
    pub fn fields_accessible_by<'a>(
        &'a self,
        space: &'a VarSpace,
        actor: &'a ActorId,
    ) -> impl Iterator<Item = &'a FieldId> + 'a {
        space.fields().iter().filter(move |field| self.could(space, actor, field))
    }

    /// The (actor, field) pairs for which `has ∨ could` holds.
    pub fn exposed_pairs<'a>(
        &'a self,
        space: &'a VarSpace,
    ) -> impl Iterator<Item = (&'a ActorId, &'a FieldId)> + 'a {
        space.pairs().filter(move |(actor, field)| self.has_or_could(space, actor, field))
    }

    /// Returns `true` if every variable true in `self` is also true in
    /// `other` — i.e. `other` exposes at least as much as `self`.
    pub fn is_subset_of(&self, other: &PrivacyState) -> bool {
        self.bits.iter().zip(other.bits.iter()).all(|(a, b)| a & !b == 0)
    }

    /// The union of two states (variable-wise OR). Panics are avoided by
    /// truncating to the shorter of the two bit vectors; in practice states
    /// always come from the same [`VarSpace`].
    pub fn union(&self, other: &PrivacyState) -> PrivacyState {
        let mut result = self.clone();
        for (dst, src) in result.bits.iter_mut().zip(other.bits.iter()) {
            *dst |= *src;
        }
        result
    }

    /// Renders the state-variable table of Fig. 2 as text: one row per
    /// (actor, field) pair with the values of the `has` and `could`
    /// variables.
    pub fn table(&self, space: &VarSpace) -> String {
        let mut out = String::new();
        out.push_str("actor | field | has | could\n");
        for (actor, field) in space.pairs() {
            out.push_str(&format!(
                "{} | {} | {} | {}\n",
                actor,
                field,
                self.has(space, actor, field),
                self.could(space, actor, field)
            ));
        }
        out
    }

    /// A short label for the state listing only the true variables, e.g.
    /// `"has(Doctor,Name) could(Admin,Diagnosis)"`. The absolute state is
    /// labelled `"⊥"`.
    pub fn short_label(&self, space: &VarSpace) -> String {
        if self.is_absolute() {
            return "⊥".to_owned();
        }
        let mut parts = Vec::new();
        for (actor, field) in space.pairs() {
            if self.has(space, actor, field) {
                parts.push(format!("has({actor},{field})"));
            }
            if self.could(space, actor, field) {
                parts.push(format!("could({actor},{field})"));
            }
        }
        parts.join(" ")
    }
}

impl fmt::Display for PrivacyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "privacy state ({} of {} variables set)", self.count_true(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> VarSpace {
        VarSpace::new(
            [ActorId::new("Doctor"), ActorId::new("Admin")],
            [FieldId::new("Name"), FieldId::new("Diagnosis")],
        )
    }

    fn doctor() -> ActorId {
        ActorId::new("Doctor")
    }

    fn admin() -> ActorId {
        ActorId::new("Admin")
    }

    fn name() -> FieldId {
        FieldId::new("Name")
    }

    fn diagnosis() -> FieldId {
        FieldId::new("Diagnosis")
    }

    #[test]
    fn absolute_state_has_everything_false() {
        let space = space();
        let state = PrivacyState::absolute(&space);
        assert!(state.is_absolute());
        assert_eq!(state.len(), 8);
        assert_eq!(state.count_true(), 0);
        assert!(!state.has(&space, &doctor(), &name()));
        assert!(!state.could(&space, &doctor(), &name()));
    }

    #[test]
    fn setting_and_clearing_variables() {
        let space = space();
        let mut state = PrivacyState::absolute(&space);
        state.set_has(&space, &doctor(), &name(), true);
        state.set_could(&space, &admin(), &diagnosis(), true);

        assert!(state.has(&space, &doctor(), &name()));
        assert!(!state.has(&space, &doctor(), &diagnosis()));
        assert!(state.could(&space, &admin(), &diagnosis()));
        assert!(state.has_or_could(&space, &admin(), &diagnosis()));
        assert!(!state.is_absolute());
        assert_eq!(state.count_true(), 2);

        state.set_has(&space, &doctor(), &name(), false);
        assert!(!state.has(&space, &doctor(), &name()));
        assert_eq!(state.count_true(), 1);
    }

    #[test]
    fn unknown_variables_are_ignored_not_panicking() {
        let space = space();
        let mut state = PrivacyState::absolute(&space);
        state.set_has(&space, &ActorId::new("Ghost"), &name(), true);
        assert!(state.is_absolute());
        assert!(!state.has(&space, &ActorId::new("Ghost"), &name()));
    }

    #[test]
    fn with_variants_do_not_mutate_the_original() {
        let space = space();
        let state = PrivacyState::absolute(&space);
        let next = state.with_has(&space, &doctor(), &name());
        let next2 = next.with_could(&space, &admin(), &name());
        assert!(state.is_absolute());
        assert!(next.has(&space, &doctor(), &name()));
        assert!(next2.could(&space, &admin(), &name()));
        assert_ne!(state, next);
        assert_ne!(next, next2);
    }

    #[test]
    fn field_iterators_list_the_right_fields() {
        let space = space();
        let state = PrivacyState::absolute(&space).with_has(&space, &doctor(), &name()).with_could(
            &space,
            &doctor(),
            &diagnosis(),
        );

        let doctor = doctor();
        let identified: Vec<_> = state.fields_identified_by(&space, &doctor).collect();
        assert_eq!(identified, vec![&name()]);
        let accessible: Vec<_> = state.fields_accessible_by(&space, &doctor).collect();
        assert_eq!(accessible, vec![&diagnosis()]);
        let exposed: Vec<_> = state.exposed_pairs(&space).collect();
        assert_eq!(exposed.len(), 2);
    }

    #[test]
    fn subset_and_union_behave_like_sets() {
        let space = space();
        let a = PrivacyState::absolute(&space).with_has(&space, &doctor(), &name());
        let b = a.with_could(&space, &admin(), &diagnosis());
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));

        let u = a.union(&b);
        assert_eq!(u, b);
        let absolute = PrivacyState::absolute(&space);
        assert_eq!(absolute.union(&a), a);
    }

    #[test]
    fn states_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let space = space();
        let mut set = HashSet::new();
        set.insert(PrivacyState::absolute(&space));
        set.insert(PrivacyState::absolute(&space).with_has(&space, &doctor(), &name()));
        set.insert(PrivacyState::absolute(&space));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn table_and_labels_render() {
        let space = space();
        let state = PrivacyState::absolute(&space).with_has(&space, &doctor(), &name());
        let table = state.table(&space);
        assert!(table.contains("actor | field | has | could"));
        assert!(table.contains("Doctor | Name | true | false"));
        assert_eq!(table.lines().count(), 1 + 4);

        assert_eq!(PrivacyState::absolute(&space).short_label(&space), "⊥");
        assert_eq!(state.short_label(&space), "has(Doctor,Name)");
        assert!(state.to_string().contains("1 of 8"));
    }

    #[test]
    fn large_spaces_span_multiple_words() {
        let space = VarSpace::new(
            (0..10).map(|i| ActorId::new(format!("a{i}"))),
            (0..10).map(|i| FieldId::new(format!("f{i}"))),
        );
        assert_eq!(space.variable_count(), 200);
        let mut state = PrivacyState::absolute(&space);
        let actor = ActorId::new("a9");
        let field = FieldId::new("f9");
        state.set_could(&space, &actor, &field, true);
        assert!(state.could(&space, &actor, &field));
        assert_eq!(state.count_true(), 1);
    }
}
