//! Transition labels.
//!
//! Section II-B: transitions *"are labelled according to i) an action, ii)
//! the set of data fields, iii) the data schema that the data field is a
//! part of, iv) the actor performing the action. There are two optional
//! fields: i) a purpose ... and ii) a privacy risk measure ... (whose value
//! is calculated and annotated during risk analysis)"*.

use privacy_model::{ActorId, FieldId, Likelihood, Purpose, RiskLevel, SchemaId, Severity};
use std::collections::BTreeSet;
use std::fmt;

/// The privacy actions that can label a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ActionKind {
    /// An actor collects personal data directly from the data subject.
    Collect,
    /// An actor creates personal data in a datastore.
    Create,
    /// An actor reads personal data from a datastore.
    Read,
    /// An actor discloses personal data to another actor.
    Disclose,
    /// An actor writes pseudonymised data to an anonymised datastore.
    Anon,
    /// An actor deletes personal data from a datastore.
    Delete,
}

impl ActionKind {
    /// All action kinds.
    pub const ALL: [ActionKind; 6] = [
        ActionKind::Collect,
        ActionKind::Create,
        ActionKind::Read,
        ActionKind::Disclose,
        ActionKind::Anon,
        ActionKind::Delete,
    ];

    /// The position of this kind in [`ActionKind::ALL`] — the dense table
    /// index the columnar indexes (the LTS analysis index and the runtime
    /// event-log index) key their per-action arrays with.
    #[inline]
    pub fn table_index(self) -> usize {
        match self {
            ActionKind::Collect => 0,
            ActionKind::Create => 1,
            ActionKind::Read => 2,
            ActionKind::Disclose => 3,
            ActionKind::Anon => 4,
            ActionKind::Delete => 5,
        }
    }
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ActionKind::Collect => "collect",
            ActionKind::Create => "create",
            ActionKind::Read => "read",
            ActionKind::Disclose => "disclose",
            ActionKind::Anon => "anon",
            ActionKind::Delete => "delete",
        };
        f.write_str(name)
    }
}

/// The risk measure attached to a transition by the risk analyses.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskAnnotation {
    level: RiskLevel,
    severity: Option<Severity>,
    likelihood: Option<Likelihood>,
    score: Option<f64>,
    note: String,
}

impl RiskAnnotation {
    /// Creates an annotation with just a risk level.
    pub fn level(level: RiskLevel) -> Self {
        RiskAnnotation { level, severity: None, likelihood: None, score: None, note: String::new() }
    }

    /// Creates an annotation from the two risk dimensions plus the combined
    /// level.
    pub fn dimensions(severity: Severity, likelihood: Likelihood, level: RiskLevel) -> Self {
        RiskAnnotation {
            level,
            severity: Some(severity),
            likelihood: Some(likelihood),
            score: None,
            note: String::new(),
        }
    }

    /// Attaches a numeric score (e.g. a pseudonymisation value-risk score).
    pub fn with_score(mut self, score: f64) -> Self {
        self.score = Some(score);
        self
    }

    /// Attaches a free-text note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    /// The combined risk level.
    pub fn risk_level(&self) -> RiskLevel {
        self.level
    }

    /// The impact dimension, if recorded.
    pub fn severity(&self) -> Option<Severity> {
        self.severity
    }

    /// The likelihood dimension, if recorded.
    pub fn likelihood(&self) -> Option<Likelihood> {
        self.likelihood
    }

    /// The numeric score, if recorded.
    pub fn score(&self) -> Option<f64> {
        self.score
    }

    /// The note (may be empty).
    pub fn note(&self) -> &str {
        &self.note
    }
}

impl fmt::Display for RiskAnnotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "risk={}", self.level)?;
        if let (Some(sev), Some(lik)) = (self.severity, self.likelihood) {
            write!(f, " (impact={sev}, likelihood={lik})")?;
        }
        if let Some(score) = self.score {
            write!(f, " score={score:.3}")?;
        }
        if !self.note.is_empty() {
            write!(f, " [{}]", self.note)?;
        }
        Ok(())
    }
}

/// The full label of one transition.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionLabel {
    action: ActionKind,
    fields: BTreeSet<FieldId>,
    schema: Option<SchemaId>,
    actor: ActorId,
    purpose: Option<Purpose>,
    risk: Option<RiskAnnotation>,
}

impl TransitionLabel {
    /// Creates a label with the four mandatory elements.
    pub fn new(
        action: ActionKind,
        actor: impl Into<ActorId>,
        fields: impl IntoIterator<Item = FieldId>,
        schema: Option<SchemaId>,
    ) -> Self {
        TransitionLabel {
            action,
            fields: fields.into_iter().collect(),
            schema,
            actor: actor.into(),
            purpose: None,
            risk: None,
        }
    }

    /// Builder-style: attaches the optional purpose.
    pub fn with_purpose(mut self, purpose: Purpose) -> Self {
        self.purpose = Some(purpose);
        self
    }

    /// Builder-style: attaches the optional risk annotation.
    pub fn with_risk(mut self, risk: RiskAnnotation) -> Self {
        self.risk = Some(risk);
        self
    }

    /// The action.
    pub fn action(&self) -> ActionKind {
        self.action
    }

    /// The fields the action operates on.
    pub fn fields(&self) -> &BTreeSet<FieldId> {
        &self.fields
    }

    /// The schema the fields belong to, if the action involves a datastore.
    pub fn schema(&self) -> Option<&SchemaId> {
        self.schema.as_ref()
    }

    /// The actor performing the action.
    pub fn actor(&self) -> &ActorId {
        &self.actor
    }

    /// The purpose, if declared.
    pub fn purpose(&self) -> Option<&Purpose> {
        self.purpose.as_ref()
    }

    /// The risk annotation, if the risk analysis has attached one.
    pub fn risk(&self) -> Option<&RiskAnnotation> {
        self.risk.as_ref()
    }

    /// Replaces the risk annotation (used by the risk analyses).
    pub fn set_risk(&mut self, risk: RiskAnnotation) {
        self.risk = Some(risk);
    }

    /// Removes the risk annotation.
    pub fn clear_risk(&mut self) {
        self.risk = None;
    }

    /// Returns `true` if the transition involves the given field.
    pub fn involves_field(&self, field: &FieldId) -> bool {
        self.fields.contains(field)
    }
}

impl fmt::Display for TransitionLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fields: Vec<&str> = self.fields.iter().map(FieldId::as_str).collect();
        write!(f, "{}({}, {{{}}}", self.action, self.actor, fields.join(", "))?;
        if let Some(schema) = &self.schema {
            write!(f, ", {schema}")?;
        }
        f.write_str(")")?;
        if let Some(purpose) = &self.purpose {
            write!(f, " for `{purpose}`")?;
        }
        if let Some(risk) = &self.risk {
            write!(f, " {risk}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_kind_display_and_all() {
        assert_eq!(ActionKind::Collect.to_string(), "collect");
        assert_eq!(ActionKind::Anon.to_string(), "anon");
        assert_eq!(ActionKind::ALL.len(), 6);
    }

    #[test]
    fn table_index_matches_the_all_order() {
        for (position, action) in ActionKind::ALL.iter().enumerate() {
            assert_eq!(action.table_index(), position, "{action} misaligned with ALL");
        }
    }

    #[test]
    fn label_mandatory_and_optional_elements() {
        let label = TransitionLabel::new(
            ActionKind::Read,
            "Administrator",
            [FieldId::new("Diagnosis")],
            Some(SchemaId::new("EHR")),
        )
        .with_purpose(Purpose::new("maintenance").unwrap());

        assert_eq!(label.action(), ActionKind::Read);
        assert_eq!(label.actor().as_str(), "Administrator");
        assert_eq!(label.fields().len(), 1);
        assert!(label.involves_field(&FieldId::new("Diagnosis")));
        assert!(!label.involves_field(&FieldId::new("Name")));
        assert_eq!(label.schema().unwrap().as_str(), "EHR");
        assert_eq!(label.purpose().unwrap().as_str(), "maintenance");
        assert!(label.risk().is_none());
    }

    #[test]
    fn risk_annotation_lifecycle() {
        let mut label = TransitionLabel::new(
            ActionKind::Read,
            "Administrator",
            [FieldId::new("Diagnosis")],
            None,
        );
        label.set_risk(RiskAnnotation::dimensions(
            Severity::High,
            Likelihood::Medium,
            RiskLevel::Medium,
        ));
        let risk = label.risk().unwrap();
        assert_eq!(risk.risk_level(), RiskLevel::Medium);
        assert_eq!(risk.severity(), Some(Severity::High));
        assert_eq!(risk.likelihood(), Some(Likelihood::Medium));
        label.clear_risk();
        assert!(label.risk().is_none());
    }

    #[test]
    fn risk_annotation_with_score_and_note() {
        let annotation =
            RiskAnnotation::level(RiskLevel::High).with_score(0.9).with_note("value risk over 90%");
        assert_eq!(annotation.score(), Some(0.9));
        assert_eq!(annotation.note(), "value risk over 90%");
        let text = annotation.to_string();
        assert!(text.contains("risk=High"));
        assert!(text.contains("score=0.900"));
        assert!(text.contains("value risk over 90%"));
    }

    #[test]
    fn label_display_reads_like_the_paper() {
        let label = TransitionLabel::new(
            ActionKind::Collect,
            "Receptionist",
            [FieldId::new("Name"), FieldId::new("DOB")],
            None,
        )
        .with_purpose(Purpose::new("book appointment").unwrap());
        assert_eq!(label.to_string(), "collect(Receptionist, {DOB, Name}) for `book appointment`");

        let label = label.with_risk(RiskAnnotation::level(RiskLevel::Low));
        assert!(label.to_string().contains("risk=Low"));
    }
}
