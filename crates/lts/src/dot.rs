//! Graphviz DOT export of the generated LTS (Fig. 3 and Fig. 4 style).
//!
//! States are drawn as circles labelled `s<N>`; the initial state is drawn
//! with a double border. Transitions carry their label text; risk-transitions
//! (the dotted lines of Fig. 4) are drawn with `style=dashed` and coloured by
//! risk level.

use crate::lts::Lts;
use privacy_model::RiskLevel;
use std::fmt::Write as _;

/// Options controlling the DOT rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotOptions {
    /// Show the full state-variable label of every state (verbose) instead
    /// of the compact `s<N>` identifier. The paper suppresses the state
    /// variables in Fig. 3 for readability, which is the default here too.
    pub show_state_variables: bool,
    /// Graph title.
    pub title: String,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions { show_state_variables: false, title: "privacy LTS".to_owned() }
    }
}

/// Renders an LTS with default options.
pub fn lts_to_dot(lts: &Lts) -> String {
    lts_to_dot_with(lts, &DotOptions::default())
}

/// Renders an LTS with explicit options.
pub fn lts_to_dot_with(lts: &Lts, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph lts {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  label=\"{}\";", escape(&options.title));
    for (id, state) in lts.states() {
        let shape = if id == lts.initial() { "doublecircle" } else { "circle" };
        let label = if options.show_state_variables {
            format!("{}\\n{}", id, escape(&state.short_label(lts.space())))
        } else {
            id.to_string()
        };
        let _ = writeln!(out, "  {} [label=\"{}\", shape={}];", id, label, shape);
    }
    for (_, transition) in lts.transitions() {
        let mut attrs = format!("label=\"{}\"", escape(&transition.label().to_string()));
        if transition.is_risk_transition() {
            attrs.push_str(", style=dashed");
        }
        if let Some(risk) = transition.label().risk() {
            let colour = match risk.risk_level() {
                RiskLevel::Low => "forestgreen",
                RiskLevel::Medium => "orange",
                RiskLevel::High => "red",
            };
            attrs.push_str(&format!(", color={colour}, fontcolor={colour}"));
        }
        let _ = writeln!(out, "  {} -> {} [{}];", transition.from(), transition.to(), attrs);
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{ActionKind, RiskAnnotation, TransitionLabel};
    use crate::space::VarSpace;
    use privacy_model::{ActorId, FieldId};

    fn sample() -> Lts {
        let space = VarSpace::new([ActorId::new("Doctor")], [FieldId::new("Name")]);
        let mut lts = Lts::new(space.clone());
        let s0 = lts.initial();
        let s1 = lts.intern(lts.state(s0).clone().with_has(
            &space,
            &ActorId::new("Doctor"),
            &FieldId::new("Name"),
        ));
        lts.add_transition(
            s0,
            s1,
            TransitionLabel::new(ActionKind::Collect, "Doctor", [FieldId::new("Name")], None),
        );
        let tid = lts.add_risk_transition(
            s1,
            s1,
            TransitionLabel::new(ActionKind::Read, "Doctor", [FieldId::new("Name")], None),
        );
        lts.annotate(tid, RiskAnnotation::level(RiskLevel::High));
        lts
    }

    #[test]
    fn default_rendering_has_nodes_edges_and_styles() {
        let dot = lts_to_dot(&sample());
        assert!(dot.starts_with("digraph lts {"));
        assert!(dot.contains("s0 [label=\"s0\", shape=doublecircle];"));
        assert!(dot.contains("s1 [label=\"s1\", shape=circle];"));
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("collect(Doctor, {Name})"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("color=red"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn verbose_rendering_includes_state_variables() {
        let options = DotOptions { show_state_variables: true, title: "Fig. 3".to_owned() };
        let dot = lts_to_dot_with(&sample(), &options);
        assert!(dot.contains("label=\"Fig. 3\""));
        assert!(dot.contains("has(Doctor,Name)"));
    }
}
