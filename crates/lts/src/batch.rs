//! Deterministic chunked parallel map, shared by the batch analysis APIs.
//!
//! The compliance and risk crates both fan independent work items (policies,
//! user profiles) out over `crossbeam` scoped threads against one immutable
//! LTS + index. [`parallel_map`] is that one pattern: the item list is split
//! into `threads` contiguous chunks, each chunk is mapped on its own scoped
//! thread, and the per-chunk results are concatenated in spawn order — so
//! the output is exactly `items.iter().map(f).collect()` regardless of
//! thread count or scheduling.

/// Maps `f` over `items`, fanned out over `threads` crossbeam scoped
/// threads (`None` = one per CPU). Results come back in item order and are
/// identical to a sequential map — the parallelism only partitions the item
/// list, never the evaluation of a single item.
///
/// # Panics
///
/// Propagates a panic from `f` after all worker threads have been joined.
///
/// # Examples
///
/// ```
/// let squares = privacy_lts::batch::parallel_map(&[1, 2, 3, 4], Some(2), |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R>(items: &[T], threads: Option<usize>, f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = resolve_threads(threads);
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move |_| chunk.iter().map(f).collect::<Vec<_>>()))
            .collect();
        // Joining in spawn order restores item order deterministically.
        let mut results = Vec::with_capacity(items.len());
        for handle in handles {
            results.extend(handle.join().expect("parallel_map worker panicked"));
        }
        results
    })
    .expect("parallel_map scope panicked")
}

/// Resolves an optional worker-thread count to a concrete one: `None` means
/// one per CPU, and the result is always at least 1. The single place the
/// `available_parallelism` default lives — the engine, the batch APIs and
/// the benches all resolve through it.
pub fn resolve_threads(threads: Option<usize>) -> usize {
    threads.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_item_order_for_every_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for threads in [None, Some(1), Some(2), Some(3), Some(8), Some(200)] {
            assert_eq!(parallel_map(&items, threads, |x| x * 2), expected);
        }
    }

    #[test]
    fn empty_and_singleton_inputs_short_circuit() {
        assert!(parallel_map(&[] as &[u8], Some(4), |x| *x).is_empty());
        assert_eq!(parallel_map(&[7], Some(4), |x| x + 1), vec![8]);
    }
}
