//! Compilation of the design artefacts into a flow program over dense
//! indices and bit masks.
//!
//! The extraction rules of Section II-B are entirely static: which privacy
//! variables a flow sets depends only on the flow, the access policy and the
//! variable space — never on the state the flow fires from. The compiler
//! therefore resolves every `ActorId`/`FieldId`/`DatastoreId`/`SchemaId`
//! string exactly once, turning each flow into ready-made `u64` bit masks
//! over the [`PrivacyState`](crate::state::PrivacyState) words and a packed
//! datastore-contents bitset, plus one pre-built, shared
//! [`TransitionLabel`]. Applying a flow during exploration is then a handful
//! of word-wise ORs — no map lookups, no string clones.
//!
//! Datastore contents (`BTreeSet<(DatastoreId, FieldId)>` in the reference
//! implementation) become a bitset over *slots*: the (datastore, field)
//! pairs that any create/anonymise flow can ever store, numbered in
//! lexicographic order so that iterating slot bits reproduces the reference
//! implementation's `BTreeSet` iteration order exactly. Each slot carries
//! its pre-resolved potential readers for
//! [`GeneratorConfig::explore_potential_reads`].

use crate::generate::GeneratorConfig;
use crate::label::{ActionKind, TransitionLabel};
use crate::space::{VarKind, VarSpace};
use privacy_access::{AccessPolicy, Permission};
use privacy_dataflow::{FlowKind, SystemDataFlows};
use privacy_model::{
    ActorId, Catalog, DatastoreId, FieldId, Interner, ModelError, SchemaId, ServiceId,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One flow compiled to its constant effect.
#[derive(Debug, Clone)]
pub(crate) struct CompiledFlow {
    /// Words OR-ed into the privacy-state bits.
    pub(crate) privacy_mask: Box<[u64]>,
    /// Words OR-ed into the datastore-contents bitset.
    pub(crate) store_mask: Box<[u64]>,
    /// Index into [`CompiledModel::labels`].
    pub(crate) label: u32,
}

/// The ordered flows of one service.
#[derive(Debug, Clone)]
pub(crate) struct CompiledService {
    pub(crate) flows: Vec<CompiledFlow>,
}

/// A potential reader of one stored (datastore, field) slot.
#[derive(Debug, Clone)]
pub(crate) struct CompiledReader {
    /// The reader's `has` bit for the slot's field, or `None` when the
    /// reader or field lies outside the variable space (the read then
    /// produces a self-loop, as in the reference implementation).
    pub(crate) has_bit: Option<u32>,
    /// Index into [`CompiledModel::labels`].
    pub(crate) label: u32,
}

/// One (datastore, field) slot of the contents bitset.
#[derive(Debug, Clone)]
pub(crate) struct CompiledSlot {
    /// Pre-resolved readers, in `ActorId` order (matching
    /// `AccessPolicy::actors_with`'s `BTreeSet` iteration).
    pub(crate) readers: Vec<CompiledReader>,
}

/// The compiled flow program the exploration engine runs.
#[derive(Debug, Clone)]
pub(crate) struct CompiledModel {
    /// The variable space states are defined over.
    pub(crate) space: VarSpace,
    /// Number of Boolean privacy variables.
    pub(crate) privacy_len: usize,
    /// Number of `u64` words backing a privacy state.
    pub(crate) privacy_words: usize,
    /// Number of `u64` words backing the datastore-contents bitset.
    pub(crate) store_words: usize,
    /// The selected services' flows, in `ServiceId` order.
    pub(crate) services: Vec<CompiledService>,
    /// The (datastore, field) slots, in lexicographic order.
    pub(crate) slots: Vec<CompiledSlot>,
    /// Interned transition labels; every transition of the generated LTS
    /// shares one of these allocations.
    pub(crate) labels: Vec<Arc<TransitionLabel>>,
}

impl CompiledModel {
    /// Compiles the artefacts for the services selected by `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] if a selected service has no diagram,
    /// and [`ModelError::Invalid`] if a diagram is too large to index (more
    /// than `u16::MAX` flows in one service).
    pub(crate) fn compile(
        catalog: &Catalog,
        system: &SystemDataFlows,
        policy: &AccessPolicy,
        config: &GeneratorConfig,
    ) -> Result<CompiledModel, ModelError> {
        let space = VarSpace::from_catalog(catalog);
        let privacy_len = space.variable_count();
        let privacy_words = privacy_len.div_ceil(64);

        // Select and order the services to explore (ServiceId order, exactly
        // as the reference implementation iterates `system.services()`).
        let services: Vec<&ServiceId> = match &config.services {
            Some(selected) => {
                for service in selected {
                    if system.diagram(service).is_none() {
                        return Err(ModelError::unknown("service diagram", service.as_str()));
                    }
                }
                system.services().filter(|s| selected.contains(*s)).collect()
            }
            None => system.services().collect(),
        };
        let diagrams: Vec<&privacy_dataflow::DataFlowDiagram> =
            services.iter().map(|s| system.diagram(s).expect("checked above")).collect();
        for diagram in &diagrams {
            if diagram.len() > usize::from(u16::MAX) {
                return Err(ModelError::invalid(format!(
                    "service `{}` has {} flows; the compiled engine indexes at most {}",
                    diagram.service(),
                    diagram.len(),
                    u16::MAX
                )));
            }
        }

        let anonymised_stores: BTreeSet<DatastoreId> =
            catalog.datastores().filter(|d| d.is_anonymised()).map(|d| d.id().clone()).collect();

        // Slot discovery: every (datastore, field) pair a create/anonymise
        // flow can store, interned in lexicographic order so slot-index
        // iteration matches the reference `BTreeSet` iteration.
        let unknown_store = DatastoreId::new("<unknown>");
        let mut storable: BTreeSet<(DatastoreId, FieldId)> = BTreeSet::new();
        for diagram in &diagrams {
            for flow in diagram.flows() {
                if matches!(flow.kind(&anonymised_stores), FlowKind::Create | FlowKind::Anonymise) {
                    let store =
                        flow.to().as_datastore().cloned().unwrap_or_else(|| unknown_store.clone());
                    for field in flow.fields() {
                        storable.insert((store.clone(), field.clone()));
                    }
                }
            }
        }
        let slot_index: Interner<(DatastoreId, FieldId)> = storable.into_iter().collect();
        let store_words = slot_index.len().div_ceil(64);

        let mut compiler = Compiler {
            catalog,
            policy,
            space: &space,
            privacy_words,
            store_words,
            slot_index: &slot_index,
            labels: Vec::new(),
        };

        // Compile each selected service's flows.
        let mut compiled_services = Vec::with_capacity(diagrams.len());
        for diagram in &diagrams {
            let flows = diagram
                .flows()
                .iter()
                .map(|flow| compiler.compile_flow(flow, &anonymised_stores))
                .collect();
            compiled_services.push(CompiledService { flows });
        }

        // Compile each slot's potential readers — only consulted when the
        // exploration fires potential reads, so skip the policy resolution
        // and label interning entirely otherwise (a large share of the
        // per-call fixed cost on trivial models).
        let slots = if config.explore_potential_reads {
            slot_index
                .items()
                .iter()
                .map(|(store, field)| compiler.compile_slot(store, field))
                .collect()
        } else {
            slot_index.items().iter().map(|_| CompiledSlot { readers: Vec::new() }).collect()
        };
        let labels = compiler.labels;

        Ok(CompiledModel {
            space,
            privacy_len,
            privacy_words,
            store_words,
            services: compiled_services,
            slots,
            labels,
        })
    }

    /// Number of packed-`u16` progress words needed for `services` counters.
    pub(crate) fn progress_words(&self) -> usize {
        self.services.len().div_ceil(4)
    }

    /// Total `u64` words of one composite-state key:
    /// `[privacy | stored | progress]`.
    pub(crate) fn key_words(&self) -> usize {
        self.privacy_words + self.store_words + self.progress_words()
    }
}

/// Working state of one compilation run.
struct Compiler<'a> {
    catalog: &'a Catalog,
    policy: &'a AccessPolicy,
    space: &'a VarSpace,
    privacy_words: usize,
    store_words: usize,
    slot_index: &'a Interner<(DatastoreId, FieldId)>,
    labels: Vec<Arc<TransitionLabel>>,
}

impl Compiler<'_> {
    /// Interns a label, deduplicating by value.
    fn intern_label(&mut self, label: TransitionLabel) -> u32 {
        if let Some(at) = self.labels.iter().position(|existing| **existing == label) {
            return at as u32;
        }
        self.labels.push(Arc::new(label));
        (self.labels.len() - 1) as u32
    }

    fn schema_of(&self, store: &DatastoreId) -> Option<SchemaId> {
        self.catalog.datastore(store).map(|d| d.schema().clone())
    }

    /// Compiles one flow to its constant masks and label, mirroring the
    /// reference implementation's `apply_flow` case by case.
    fn compile_flow(
        &mut self,
        flow: &privacy_dataflow::Flow,
        anonymised_stores: &BTreeSet<DatastoreId>,
    ) -> CompiledFlow {
        let mut privacy_mask = vec![0u64; self.privacy_words];
        let mut store_mask = vec![0u64; self.store_words];
        let mut set_privacy = |bit: Option<usize>| {
            if let Some(bit) = bit {
                privacy_mask[bit / 64] |= 1u64 << (bit % 64);
            }
        };

        let kind = flow.kind(anonymised_stores);
        let actor = flow.acting_actor().cloned().unwrap_or_else(|| ActorId::new("<unknown>"));

        let (action, schema): (ActionKind, Option<SchemaId>) = match kind {
            FlowKind::Collect | FlowKind::Disclose => {
                if let Some(receiver) = flow.receiving_actor() {
                    for field in flow.fields() {
                        set_privacy(self.space.bit_index(receiver, field, VarKind::Has));
                    }
                }
                let action = if kind == FlowKind::Collect {
                    ActionKind::Collect
                } else {
                    ActionKind::Disclose
                };
                (action, None)
            }
            FlowKind::Create | FlowKind::Anonymise => {
                let store = flow
                    .to()
                    .as_datastore()
                    .cloned()
                    .unwrap_or_else(|| DatastoreId::new("<unknown>"));
                for field in flow.fields() {
                    let slot = self
                        .slot_index
                        .get(&(store.clone(), field.clone()))
                        .expect("slot discovered in the first pass")
                        as usize;
                    store_mask[slot / 64] |= 1u64 << (slot % 64);
                    // Every actor with read access to this field in this
                    // store could now identify it.
                    for reader in self.policy.actors_with(Permission::Read, &store, field) {
                        set_privacy(self.space.bit_index(&reader, field, VarKind::Could));
                    }
                }
                let action =
                    if kind == FlowKind::Anonymise { ActionKind::Anon } else { ActionKind::Create };
                (action, self.schema_of(&store))
            }
            FlowKind::Read => {
                let store = flow
                    .from()
                    .as_datastore()
                    .cloned()
                    .unwrap_or_else(|| DatastoreId::new("<unknown>"));
                if let Some(reader) = flow.receiving_actor() {
                    for field in flow.fields() {
                        if self.policy.can(reader, Permission::Read, &store, field) {
                            set_privacy(self.space.bit_index(reader, field, VarKind::Has));
                        }
                    }
                }
                (ActionKind::Read, self.schema_of(&store))
            }
            _ => (ActionKind::Disclose, None),
        };

        let label = TransitionLabel::new(action, actor, flow.fields().iter().cloned(), schema)
            .with_purpose(flow.purpose().clone());
        CompiledFlow {
            privacy_mask: privacy_mask.into_boxed_slice(),
            store_mask: store_mask.into_boxed_slice(),
            label: self.intern_label(label),
        }
    }

    /// Compiles the potential readers of one stored (datastore, field) slot.
    fn compile_slot(&mut self, store: &DatastoreId, field: &FieldId) -> CompiledSlot {
        let schema = self.schema_of(store);
        let readers = self
            .policy
            .actors_with(Permission::Read, store, field)
            .into_iter()
            .map(|actor| {
                let has_bit =
                    self.space.bit_index(&actor, field, VarKind::Has).map(|bit| bit as u32);
                let label =
                    TransitionLabel::new(ActionKind::Read, actor, [field.clone()], schema.clone());
                CompiledReader { has_bit, label: self.intern_label(label) }
            })
            .collect();
        CompiledSlot { readers }
    }
}
