//! The variable space: which (actor, field) pairs label the states.
//!
//! Section II-B: *"each state must be labelled with `2 × |actors| × |fields|`
//! Boolean state variables"* — one `has` and one `could` variable per
//! (actor, field) pair. The [`VarSpace`] fixes the ordering of actors and
//! fields so that every [`crate::state::PrivacyState`] can be stored as a
//! compact bit set and variables can be addressed by index.

use privacy_model::{ActorId, Catalog, FieldId};
use std::collections::BTreeMap;
use std::fmt;

/// Which of the two per-pair variables is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarKind {
    /// The actor *has identified* the field.
    Has,
    /// The actor *could identify* the field.
    Could,
}

impl fmt::Display for VarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarKind::Has => f.write_str("has"),
            VarKind::Could => f.write_str("could"),
        }
    }
}

/// The ordered space of state variables for one system model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarSpace {
    actors: Vec<ActorId>,
    fields: Vec<FieldId>,
    actor_index: BTreeMap<ActorId, usize>,
    field_index: BTreeMap<FieldId, usize>,
}

impl VarSpace {
    /// Creates a variable space from explicit actor and field orderings.
    ///
    /// Duplicates are collapsed (first occurrence wins).
    pub fn new(
        actors: impl IntoIterator<Item = ActorId>,
        fields: impl IntoIterator<Item = FieldId>,
    ) -> Self {
        let mut actor_list = Vec::new();
        let mut actor_index = BTreeMap::new();
        for actor in actors {
            if !actor_index.contains_key(&actor) {
                actor_index.insert(actor.clone(), actor_list.len());
                actor_list.push(actor);
            }
        }
        let mut field_list = Vec::new();
        let mut field_index = BTreeMap::new();
        for field in fields {
            if !field_index.contains_key(&field) {
                field_index.insert(field.clone(), field_list.len());
                field_list.push(field);
            }
        }
        VarSpace { actors: actor_list, fields: field_list, actor_index, field_index }
    }

    /// Creates the variable space of a catalog: every identifying actor
    /// (i.e. every actor that is not the data subject) crossed with every
    /// registered field.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        VarSpace::new(
            catalog.identifying_actors().map(|a| a.id().clone()),
            catalog.fields().map(|f| f.id().clone()),
        )
    }

    /// A stable fingerprint of the space layout: the ordered actor and field
    /// vocabularies (and therefore the bit assignment of every state
    /// variable). Two spaces with equal fingerprints lay out
    /// [`crate::state::PrivacyState`] words identically, which is what a
    /// persisted monitor snapshot must re-validate before its word rows can
    /// be rehydrated. FxHash is deterministic (no per-process seed), so the
    /// fingerprint is comparable across process restarts.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = crate::hash::FxHasher::default();
        self.actors.len().hash(&mut hasher);
        for actor in &self.actors {
            actor.hash(&mut hasher);
        }
        self.fields.len().hash(&mut hasher);
        for field in &self.fields {
            field.hash(&mut hasher);
        }
        hasher.finish()
    }

    /// The actors, in index order.
    pub fn actors(&self) -> &[ActorId] {
        &self.actors
    }

    /// The fields, in index order.
    pub fn fields(&self) -> &[FieldId] {
        &self.fields
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Total number of Boolean state variables: `2 × actors × fields`.
    pub fn variable_count(&self) -> usize {
        2 * self.actors.len() * self.fields.len()
    }

    /// The number of distinct privacy states this space can express
    /// (`2^variable_count`), as an `f64` because it overflows integers
    /// quickly — the paper quotes `2^60` for the healthcare example.
    pub fn theoretical_state_count(&self) -> f64 {
        2f64.powi(self.variable_count() as i32)
    }

    /// The index of an actor, if it is part of the space.
    pub fn actor_index(&self, actor: &ActorId) -> Option<usize> {
        self.actor_index.get(actor).copied()
    }

    /// The index of a field, if it is part of the space.
    pub fn field_index(&self, field: &FieldId) -> Option<usize> {
        self.field_index.get(field).copied()
    }

    /// The bit index of the (actor, field, kind) variable, if both actor and
    /// field are part of the space.
    ///
    /// Layout: variables are grouped by actor, then field, with the `has`
    /// bit immediately followed by the `could` bit.
    pub fn bit_index(&self, actor: &ActorId, field: &FieldId, kind: VarKind) -> Option<usize> {
        self.bit_at(self.actor_index(actor)?, self.field_index(field)?, kind)
    }

    /// The bit index of the (actor, field, kind) variable addressed by
    /// **positional** actor/field indices (the dense indices
    /// [`VarSpace::actor_index`] / [`VarSpace::field_index`] hand out), or
    /// `None` if either position is out of range. This is the allocation-free
    /// point lookup used by the analysis index and the runtime monitor once
    /// identifiers have been resolved.
    #[inline]
    pub fn bit_at(&self, actor: usize, field: usize, kind: VarKind) -> Option<usize> {
        if actor >= self.actors.len() || field >= self.fields.len() {
            return None;
        }
        let base = 2 * (actor * self.fields.len() + field);
        Some(match kind {
            VarKind::Has => base,
            VarKind::Could => base + 1,
        })
    }

    /// The (actor, field, kind) triple addressed by a bit index.
    ///
    /// Returns `None` if the index is out of range.
    pub fn variable_at(&self, bit: usize) -> Option<(&ActorId, &FieldId, VarKind)> {
        if bit >= self.variable_count() {
            return None;
        }
        let kind = if bit.is_multiple_of(2) { VarKind::Has } else { VarKind::Could };
        let pair = bit / 2;
        let actor = &self.actors[pair / self.fields.len()];
        let field = &self.fields[pair % self.fields.len()];
        Some((actor, field, kind))
    }

    /// Iterates over every (actor, field) pair in bit order.
    pub fn pairs(&self) -> impl Iterator<Item = (&ActorId, &FieldId)> {
        self.actors
            .iter()
            .flat_map(move |actor| self.fields.iter().map(move |field| (actor, field)))
    }
}

impl fmt::Display for VarSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "variable space: {} actors x {} fields = {} state variables",
            self.actors.len(),
            self.fields.len(),
            self.variable_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::{Actor, DataField};

    fn space() -> VarSpace {
        VarSpace::new(
            [ActorId::new("Doctor"), ActorId::new("Nurse")],
            [FieldId::new("Name"), FieldId::new("Diagnosis"), FieldId::new("Treatment")],
        )
    }

    #[test]
    fn counts_follow_the_paper_formula() {
        let space = space();
        assert_eq!(space.actor_count(), 2);
        assert_eq!(space.field_count(), 3);
        assert_eq!(space.variable_count(), 12);
        assert_eq!(space.theoretical_state_count(), 4096.0);
    }

    #[test]
    fn healthcare_scale_matches_two_to_the_sixty() {
        let space = VarSpace::new(
            (0..5).map(|i| ActorId::new(format!("a{i}"))),
            (0..6).map(|i| FieldId::new(format!("f{i}"))),
        );
        assert_eq!(space.variable_count(), 60);
        assert_eq!(space.theoretical_state_count(), 2f64.powi(60));
    }

    #[test]
    fn duplicates_are_collapsed() {
        let space = VarSpace::new(
            [ActorId::new("A"), ActorId::new("A")],
            [FieldId::new("f"), FieldId::new("f")],
        );
        assert_eq!(space.actor_count(), 1);
        assert_eq!(space.field_count(), 1);
    }

    #[test]
    fn bit_index_round_trips_through_variable_at() {
        let space = space();
        for actor in space.actors().to_vec() {
            for field in space.fields().to_vec() {
                for kind in [VarKind::Has, VarKind::Could] {
                    let bit = space.bit_index(&actor, &field, kind).unwrap();
                    let (a, f, k) = space.variable_at(bit).unwrap();
                    assert_eq!((a, f, k), (&actor, &field, kind));
                }
            }
        }
        assert!(space.variable_at(space.variable_count()).is_none());
    }

    #[test]
    fn unknown_actor_or_field_has_no_index() {
        let space = space();
        assert!(space.actor_index(&ActorId::new("Ghost")).is_none());
        assert!(space.field_index(&FieldId::new("Ghost")).is_none());
        assert!(space
            .bit_index(&ActorId::new("Ghost"), &FieldId::new("Name"), VarKind::Has)
            .is_none());
    }

    #[test]
    fn bit_indices_are_unique_and_dense() {
        let space = space();
        let mut seen = vec![false; space.variable_count()];
        for (actor, field) in space.pairs().map(|(a, f)| (a.clone(), f.clone())).collect::<Vec<_>>()
        {
            for kind in [VarKind::Has, VarKind::Could] {
                let bit = space.bit_index(&actor, &field, kind).unwrap();
                assert!(!seen[bit], "bit {bit} assigned twice");
                seen[bit] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn from_catalog_uses_identifying_actors_and_all_fields() {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::data_subject("Patient")).unwrap();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        let space = VarSpace::from_catalog(&catalog);
        assert_eq!(space.actor_count(), 1);
        assert_eq!(space.field_count(), 2);
        assert_eq!(space.variable_count(), catalog.state_variable_count());
    }

    #[test]
    fn display_mentions_the_variable_count() {
        assert_eq!(space().to_string(), "variable space: 2 actors x 3 fields = 12 state variables");
        assert_eq!(VarKind::Has.to_string(), "has");
        assert_eq!(VarKind::Could.to_string(), "could");
    }
}
