//! The parallel frontier exploration engine.
//!
//! Exploration runs over *composite-state keys*: each key is one flat
//! `Box<[u64]>` laid out as `[privacy words | stored words | packed u16
//! progress counters]`, so hashing, equality and successor computation are
//! all straight word operations. A breadth-first search processed one
//! frontier generation at a time:
//!
//! 1. **Expand (parallel).** The frontier is chunked over `crossbeam` scoped
//!    threads; each worker applies the compiled flow masks
//!    ([`CompiledModel`]) to its nodes and emits successor records. Workers
//!    consult the sharded visited set ([`ShardedSet`]) read-only to tag
//!    successors that are certainly old, which lets the merge skip their
//!    membership insert.
//! 2. **Merge (sequential, deterministic).** Successors are folded into the
//!    [`Lts`] in frontier order — the exact order the single-threaded
//!    reference implementation would produce — so state numbering,
//!    transition order and the `max_states` failure point are identical
//!    run-to-run and thread-count-to-thread-count, and differential tests
//!    can require the optimised engine's LTS to equal the reference's.
//!
//! **Small-model heuristic.** Thread spawns and the sharded set's per-shard
//! locks only pay for themselves once a frontier generation is large enough
//! to split. Exploration therefore starts in a *sequential phase* — plain
//! [`FxHashSet`] visited set, no locks, no spawns — and is promoted to the
//! sharded/parallel design the first time a frontier reaches
//! [`PARALLEL_THRESHOLD`] (and more than one worker thread is configured).
//! Models that never grow a large frontier (the trivial rows of
//! `BENCH_lts.json`) never pay the parallel machinery's overhead. Both
//! phases expand and merge in identical order, so the produced LTS is the
//! same whichever phase handles a generation.
//!
//! The `max_states` bound is enforced when a composite state is *inserted*
//! into the visited set, so the frontier can never outgrow the bound.

use crate::compile::CompiledModel;
use crate::generate::GeneratorConfig;
use crate::hash::{FxHashMap, FxHashSet, ShardedSet};
use crate::lts::{Lts, StateId};
use crate::state::PrivacyState;
use privacy_model::ModelError;

/// Frontiers below this size are expanded inline: spawning threads costs
/// more than the expansion itself. It doubles as the promotion threshold of
/// the sequential phase: until a frontier reaches it, the exploration also
/// skips the sharded visited set entirely.
const PARALLEL_THRESHOLD: usize = 64;

/// One frontier node: its packed key and its interned privacy state.
struct Node {
    key: Box<[u64]>,
    state: StateId,
}

/// One discovered successor, produced by the (possibly parallel) expansion.
struct Succ {
    key: Box<[u64]>,
    /// Index into [`CompiledModel::labels`].
    label: u32,
    /// `false` when the expansion already saw the key in the visited set;
    /// the merge then skips the membership insert entirely.
    maybe_new: bool,
}

/// Mutable exploration state shared by the sequential and parallel phases.
struct Exploration {
    lts: Lts,
    /// Privacy-word prefix → interned state id, under the fast hasher; the
    /// `Lts` keeps its own (SipHash) index consistent via `intern`.
    state_ids: FxHashMap<Box<[u64]>, StateId>,
    /// (from, to, label) triples already added. Compiled label indices are
    /// deduplicated by value, so this is exactly the duplicate-transition
    /// check `Lts::add_transition` would otherwise perform by scanning each
    /// hub state's outgoing list (quadratic in out-degree).
    seen_transitions: FxHashSet<(u64, u32)>,
    composite_states: usize,
}

/// Runs the exploration, producing the LTS.
pub(crate) fn explore(
    compiled: &CompiledModel,
    config: &GeneratorConfig,
) -> Result<Lts, ModelError> {
    let threads = crate::batch::resolve_threads(config.threads);

    let lts = Lts::new(compiled.space.clone());
    let key_words = compiled.key_words();

    let initial_key: Box<[u64]> = vec![0u64; key_words].into_boxed_slice();
    let mut visited: FxHashSet<Box<[u64]>> = FxHashSet::default();
    visited.insert(initial_key.clone());

    let mut state_ids: FxHashMap<Box<[u64]>, StateId> = FxHashMap::default();
    state_ids.insert(initial_key[..compiled.privacy_words].into(), lts.initial());

    let mut exploration =
        Exploration { lts, state_ids, seen_transitions: FxHashSet::default(), composite_states: 1 };
    bound_check(exploration.composite_states, config.max_states)?;

    let mut frontier = vec![Node { key: initial_key, state: exploration.lts.initial() }];

    // Sequential phase: plain visited set, no locks, no thread spawns.
    while !frontier.is_empty() {
        if threads > 1 && frontier.len() >= PARALLEL_THRESHOLD.max(threads) {
            // The frontier is now worth splitting: migrate the visited set
            // into its sharded form and hand over to the parallel phase.
            let shared: ShardedSet<Box<[u64]>> = ShardedSet::new(threads * 4);
            for key in visited.drain() {
                shared.insert(key);
            }
            return explore_parallel(compiled, config, threads, exploration, frontier, shared);
        }

        let mut next_frontier = Vec::new();
        for node in &frontier {
            let succs = expand(compiled, config, |key| visited.contains(key), node);
            merge(
                compiled,
                config,
                &mut exploration,
                node.state,
                succs,
                &mut |key| visited.insert(key),
                &mut next_frontier,
            )?;
        }
        frontier = next_frontier;
    }

    Ok(exploration.lts)
}

/// The parallel phase: chunked expansion over scoped threads against the
/// sharded visited set, followed by the same deterministic sequential merge.
fn explore_parallel(
    compiled: &CompiledModel,
    config: &GeneratorConfig,
    threads: usize,
    mut exploration: Exploration,
    mut frontier: Vec<Node>,
    visited: ShardedSet<Box<[u64]>>,
) -> Result<Lts, ModelError> {
    while !frontier.is_empty() {
        // Phase 1: expand the frontier, in parallel when it is big enough.
        let expansions: Vec<Vec<Succ>> = if frontier.len() >= PARALLEL_THRESHOLD.max(threads) {
            let chunk_size = frontier.len().div_ceil(threads);
            let visited = &visited;
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = frontier
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            chunk
                                .iter()
                                .map(|node| {
                                    expand(
                                        compiled,
                                        config,
                                        |key| visited.contains_borrowed(key),
                                        node,
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                // Joining in spawn order keeps the concatenation aligned
                // with the frontier regardless of thread scheduling.
                let mut all = Vec::with_capacity(frontier.len());
                for handle in handles {
                    all.extend(handle.join().expect("expansion worker panicked"));
                }
                all
            })
            .expect("expansion scope panicked")
        } else {
            frontier
                .iter()
                .map(|node| expand(compiled, config, |key| visited.contains_borrowed(key), node))
                .collect()
        };

        // Phase 2: deterministic merge in frontier order.
        let mut next_frontier = Vec::new();
        for (node, succs) in frontier.iter().zip(expansions) {
            merge(
                compiled,
                config,
                &mut exploration,
                node.state,
                succs,
                &mut |key| visited.insert(key),
                &mut next_frontier,
            )?;
        }
        frontier = next_frontier;
    }

    Ok(exploration.lts)
}

/// Folds one node's successor records into the LTS, in discovery order —
/// shared verbatim by both phases so they stay behaviourally identical.
fn merge(
    compiled: &CompiledModel,
    config: &GeneratorConfig,
    exploration: &mut Exploration,
    from: StateId,
    succs: Vec<Succ>,
    insert_visited: &mut impl FnMut(Box<[u64]>) -> bool,
    next_frontier: &mut Vec<Node>,
) -> Result<(), ModelError> {
    for succ in succs {
        let privacy = &succ.key[..compiled.privacy_words];
        let to_id = match exploration.state_ids.get(privacy) {
            Some(&id) => id,
            None => {
                let state = PrivacyState::from_raw_words(privacy.to_vec(), compiled.privacy_len);
                let id = exploration.lts.intern(state);
                exploration.state_ids.insert(privacy.into(), id);
                id
            }
        };
        let endpoints = ((from.0 as u64) << 32) | to_id.0 as u64;
        if exploration.seen_transitions.insert((endpoints, succ.label)) {
            let label = compiled.labels[succ.label as usize].clone();
            exploration.lts.add_transition_shared_unchecked(from, to_id, label);
        }

        if succ.maybe_new && insert_visited(succ.key.clone()) {
            exploration.composite_states += 1;
            bound_check(exploration.composite_states, config.max_states)?;
            next_frontier.push(Node { key: succ.key, state: to_id });
        }
    }
    Ok(())
}

/// Computes the successor records of one frontier node. `visited` is the
/// membership probe of whichever visited-set representation the current
/// phase uses (plain set or sharded set) — a generic parameter so the probe
/// inlines into this hot loop instead of going through dynamic dispatch.
fn expand(
    compiled: &CompiledModel,
    config: &GeneratorConfig,
    visited: impl Fn(&[u64]) -> bool,
    node: &Node,
) -> Vec<Succ> {
    let pw = compiled.privacy_words;
    let sw = compiled.store_words;
    let mut succs = Vec::new();

    // Service flows: fire the next flow of every enabled service.
    let fire = |succs: &mut Vec<Succ>, service_index: usize, progress: usize| {
        let flow = &compiled.services[service_index].flows[progress];
        let mut key = node.key.clone();
        for (dst, src) in key[..pw].iter_mut().zip(flow.privacy_mask.iter()) {
            *dst |= *src;
        }
        for (dst, src) in key[pw..pw + sw].iter_mut().zip(flow.store_mask.iter()) {
            *dst |= *src;
        }
        set_progress(&mut key[pw + sw..], service_index, (progress + 1) as u16);
        let maybe_new = !visited(&key);
        succs.push(Succ { key, label: flow.label, maybe_new });
    };

    let progress_of =
        |service_index: usize| get_progress(&node.key[pw + sw..], service_index) as usize;

    if config.interleave_services {
        for service_index in 0..compiled.services.len() {
            let progress = progress_of(service_index);
            if progress < compiled.services[service_index].flows.len() {
                fire(&mut succs, service_index, progress);
            }
        }
    } else {
        // Sequential execution: only the first unfinished service fires.
        if let Some(service_index) = (0..compiled.services.len())
            .find(|&i| progress_of(i) < compiled.services[i].flows.len())
        {
            fire(&mut succs, service_index, progress_of(service_index));
        }
    }

    // Potential reads: any actor the policy allows to read data present in a
    // datastore may perform an (unscheduled) read. Slot-index order equals
    // the reference implementation's lexicographic (store, field) order.
    if config.explore_potential_reads {
        for (word_index, mut word) in node.key[pw..pw + sw].iter().copied().enumerate() {
            while word != 0 {
                let slot = word_index * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                for reader in &compiled.slots[slot].readers {
                    match reader.has_bit {
                        Some(bit) => {
                            let (w, mask) = (bit as usize / 64, 1u64 << (bit % 64));
                            if node.key[w] & mask != 0 {
                                continue; // The reader already identified the field.
                            }
                            let mut key = node.key.clone();
                            key[w] |= mask;
                            let maybe_new = !visited(&key);
                            succs.push(Succ { key, label: reader.label, maybe_new });
                        }
                        None => {
                            // Reader or field outside the variable space: the
                            // reference implementation emits a self-loop.
                            succs.push(Succ {
                                key: node.key.clone(),
                                label: reader.label,
                                maybe_new: false,
                            });
                        }
                    }
                }
            }
        }
    }

    succs
}

/// Reads the packed `u16` progress counter of one service.
#[inline]
fn get_progress(progress_words: &[u64], service_index: usize) -> u16 {
    let shift = (service_index % 4) * 16;
    ((progress_words[service_index / 4] >> shift) & 0xffff) as u16
}

/// Writes the packed `u16` progress counter of one service.
#[inline]
fn set_progress(progress_words: &mut [u64], service_index: usize, value: u16) {
    let shift = (service_index % 4) * 16;
    let word = &mut progress_words[service_index / 4];
    *word = (*word & !(0xffffu64 << shift)) | (u64::from(value) << shift);
}

/// Fails once the number of composite states passes the configured bound.
fn bound_check(composite_states: usize, max_states: usize) -> Result<(), ModelError> {
    if composite_states > max_states {
        return Err(ModelError::invalid(format!(
            "lts generation exceeded the configured bound of {max_states} composite states"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_counters_pack_four_per_word() {
        let mut words = vec![0u64; 2];
        for (i, value) in [(0usize, 7u16), (1, 65535), (3, 1), (4, 9), (7, 12345)] {
            set_progress(&mut words, i, value);
        }
        assert_eq!(get_progress(&words, 0), 7);
        assert_eq!(get_progress(&words, 1), 65535);
        assert_eq!(get_progress(&words, 2), 0);
        assert_eq!(get_progress(&words, 3), 1);
        assert_eq!(get_progress(&words, 4), 9);
        assert_eq!(get_progress(&words, 7), 12345);

        // Overwriting clears the old value first.
        set_progress(&mut words, 1, 2);
        assert_eq!(get_progress(&words, 1), 2);
        assert_eq!(get_progress(&words, 0), 7);
    }

    #[test]
    fn bound_check_triggers_strictly_above_the_bound() {
        assert!(bound_check(5, 5).is_ok());
        let err = bound_check(6, 5).unwrap_err();
        assert!(err.to_string().contains("bound of 5"));
    }
}
