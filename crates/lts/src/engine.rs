//! The parallel frontier exploration engine.
//!
//! Exploration runs over *composite-state keys*: each key is one flat
//! `Box<[u64]>` laid out as `[privacy words | stored words | packed u16
//! progress counters]`, so hashing, equality and successor computation are
//! all straight word operations. A breadth-first search processed one
//! frontier generation at a time:
//!
//! 1. **Expand (parallel).** The frontier is chunked over `crossbeam` scoped
//!    threads; each worker applies the compiled flow masks
//!    ([`CompiledModel`]) to its nodes and emits successor records. Workers
//!    consult the sharded visited set ([`ShardedSet`]) read-only to tag
//!    successors that are certainly old, which lets the merge skip their
//!    membership insert.
//! 2. **Merge (sequential, deterministic).** Successors are folded into the
//!    [`Lts`] in frontier order — the exact order the single-threaded
//!    reference implementation would produce — so state numbering,
//!    transition order and the `max_states` failure point are identical
//!    run-to-run and thread-count-to-thread-count, and differential tests
//!    can require the optimised engine's LTS to equal the reference's.
//!
//! The `max_states` bound is enforced when a composite state is *inserted*
//! into the visited set, so the frontier can never outgrow the bound.

use crate::compile::CompiledModel;
use crate::generate::GeneratorConfig;
use crate::hash::{FxHashMap, FxHashSet, ShardedSet};
use crate::lts::{Lts, StateId};
use crate::state::PrivacyState;
use privacy_model::ModelError;

/// Frontiers below this size are expanded inline: spawning threads costs
/// more than the expansion itself.
const PARALLEL_THRESHOLD: usize = 64;

/// One frontier node: its packed key and its interned privacy state.
struct Node {
    key: Box<[u64]>,
    state: StateId,
}

/// One discovered successor, produced by the (possibly parallel) expansion.
struct Succ {
    key: Box<[u64]>,
    /// Index into [`CompiledModel::labels`].
    label: u32,
    /// `false` when the expansion already saw the key in the visited set;
    /// the merge then skips the membership insert entirely.
    maybe_new: bool,
}

/// Runs the exploration, producing the LTS.
pub(crate) fn explore(
    compiled: &CompiledModel,
    config: &GeneratorConfig,
) -> Result<Lts, ModelError> {
    let threads = config
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1);

    let mut lts = Lts::new(compiled.space.clone());
    let key_words = compiled.key_words();

    let initial_key: Box<[u64]> = vec![0u64; key_words].into_boxed_slice();
    // With the current two-phase loop (parallel read-only expand, sequential
    // merge) a plain set behind `&`/`&mut` borrows would also be sound; the
    // sharded set is kept so a future parallel merge can insert per shard
    // without restructuring the engine.
    let visited: ShardedSet<Box<[u64]>> = ShardedSet::new(threads * 4);
    visited.insert(initial_key.clone());
    let mut composite_states = 1usize;
    bound_check(composite_states, config.max_states)?;

    // Privacy-word prefix → interned state id, under the fast hasher; the
    // `Lts` keeps its own (SipHash) index consistent via `intern`.
    let mut state_ids: FxHashMap<Box<[u64]>, StateId> = FxHashMap::default();
    state_ids.insert(initial_key[..compiled.privacy_words].into(), lts.initial());

    // (from, to, label) triples already added. Compiled label indices are
    // deduplicated by value, so this is exactly the duplicate-transition
    // check `Lts::add_transition` would otherwise perform by scanning each
    // hub state's outgoing list (quadratic in out-degree).
    let mut seen_transitions: FxHashSet<(u64, u32)> = FxHashSet::default();

    let mut frontier = vec![Node { key: initial_key, state: lts.initial() }];

    while !frontier.is_empty() {
        // Phase 1: expand the frontier, in parallel when it is big enough.
        let expansions: Vec<Vec<Succ>> =
            if threads > 1 && frontier.len() >= PARALLEL_THRESHOLD.max(threads) {
                let chunk_size = frontier.len().div_ceil(threads);
                let visited = &visited;
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = frontier
                        .chunks(chunk_size)
                        .map(|chunk| {
                            scope.spawn(move |_| {
                                chunk
                                    .iter()
                                    .map(|node| expand(compiled, config, visited, node))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    // Joining in spawn order keeps the concatenation aligned
                    // with the frontier regardless of thread scheduling.
                    let mut all = Vec::with_capacity(frontier.len());
                    for handle in handles {
                        all.extend(handle.join().expect("expansion worker panicked"));
                    }
                    all
                })
                .expect("expansion scope panicked")
            } else {
                frontier.iter().map(|node| expand(compiled, config, &visited, node)).collect()
            };

        // Phase 2: deterministic merge in frontier order.
        let mut next_frontier = Vec::new();
        for (node, succs) in frontier.iter().zip(expansions) {
            for succ in succs {
                let privacy = &succ.key[..compiled.privacy_words];
                let to_id = match state_ids.get(privacy) {
                    Some(&id) => id,
                    None => {
                        let state =
                            PrivacyState::from_raw_words(privacy.to_vec(), compiled.privacy_len);
                        let id = lts.intern(state);
                        state_ids.insert(privacy.into(), id);
                        id
                    }
                };
                let endpoints = ((node.state.0 as u64) << 32) | to_id.0 as u64;
                if seen_transitions.insert((endpoints, succ.label)) {
                    let label = compiled.labels[succ.label as usize].clone();
                    lts.add_transition_shared_unchecked(node.state, to_id, label);
                }

                if succ.maybe_new && visited.insert(succ.key.clone()) {
                    composite_states += 1;
                    bound_check(composite_states, config.max_states)?;
                    next_frontier.push(Node { key: succ.key, state: to_id });
                }
            }
        }
        frontier = next_frontier;
    }

    Ok(lts)
}

/// Computes the successor records of one frontier node.
fn expand(
    compiled: &CompiledModel,
    config: &GeneratorConfig,
    visited: &ShardedSet<Box<[u64]>>,
    node: &Node,
) -> Vec<Succ> {
    let pw = compiled.privacy_words;
    let sw = compiled.store_words;
    let mut succs = Vec::new();

    // Service flows: fire the next flow of every enabled service.
    let fire = |succs: &mut Vec<Succ>, service_index: usize, progress: usize| {
        let flow = &compiled.services[service_index].flows[progress];
        let mut key = node.key.clone();
        for (dst, src) in key[..pw].iter_mut().zip(flow.privacy_mask.iter()) {
            *dst |= *src;
        }
        for (dst, src) in key[pw..pw + sw].iter_mut().zip(flow.store_mask.iter()) {
            *dst |= *src;
        }
        set_progress(&mut key[pw + sw..], service_index, (progress + 1) as u16);
        let maybe_new = !visited.contains(&key);
        succs.push(Succ { key, label: flow.label, maybe_new });
    };

    let progress_of =
        |service_index: usize| get_progress(&node.key[pw + sw..], service_index) as usize;

    if config.interleave_services {
        for service_index in 0..compiled.services.len() {
            let progress = progress_of(service_index);
            if progress < compiled.services[service_index].flows.len() {
                fire(&mut succs, service_index, progress);
            }
        }
    } else {
        // Sequential execution: only the first unfinished service fires.
        if let Some(service_index) = (0..compiled.services.len())
            .find(|&i| progress_of(i) < compiled.services[i].flows.len())
        {
            fire(&mut succs, service_index, progress_of(service_index));
        }
    }

    // Potential reads: any actor the policy allows to read data present in a
    // datastore may perform an (unscheduled) read. Slot-index order equals
    // the reference implementation's lexicographic (store, field) order.
    if config.explore_potential_reads {
        for (word_index, mut word) in node.key[pw..pw + sw].iter().copied().enumerate() {
            while word != 0 {
                let slot = word_index * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                for reader in &compiled.slots[slot].readers {
                    match reader.has_bit {
                        Some(bit) => {
                            let (w, mask) = (bit as usize / 64, 1u64 << (bit % 64));
                            if node.key[w] & mask != 0 {
                                continue; // The reader already identified the field.
                            }
                            let mut key = node.key.clone();
                            key[w] |= mask;
                            let maybe_new = !visited.contains(&key);
                            succs.push(Succ { key, label: reader.label, maybe_new });
                        }
                        None => {
                            // Reader or field outside the variable space: the
                            // reference implementation emits a self-loop.
                            succs.push(Succ {
                                key: node.key.clone(),
                                label: reader.label,
                                maybe_new: false,
                            });
                        }
                    }
                }
            }
        }
    }

    succs
}

/// Reads the packed `u16` progress counter of one service.
#[inline]
fn get_progress(progress_words: &[u64], service_index: usize) -> u16 {
    let shift = (service_index % 4) * 16;
    ((progress_words[service_index / 4] >> shift) & 0xffff) as u16
}

/// Writes the packed `u16` progress counter of one service.
#[inline]
fn set_progress(progress_words: &mut [u64], service_index: usize, value: u16) {
    let shift = (service_index % 4) * 16;
    let word = &mut progress_words[service_index / 4];
    *word = (*word & !(0xffffu64 << shift)) | (u64::from(value) << shift);
}

/// Fails once the number of composite states passes the configured bound.
fn bound_check(composite_states: usize, max_states: usize) -> Result<(), ModelError> {
    if composite_states > max_states {
        return Err(ModelError::invalid(format!(
            "lts generation exceeded the configured bound of {max_states} composite states"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_counters_pack_four_per_word() {
        let mut words = vec![0u64; 2];
        for (i, value) in [(0usize, 7u16), (1, 65535), (3, 1), (4, 9), (7, 12345)] {
            set_progress(&mut words, i, value);
        }
        assert_eq!(get_progress(&words, 0), 7);
        assert_eq!(get_progress(&words, 1), 65535);
        assert_eq!(get_progress(&words, 2), 0);
        assert_eq!(get_progress(&words, 3), 1);
        assert_eq!(get_progress(&words, 4), 9);
        assert_eq!(get_progress(&words, 7), 12345);

        // Overwriting clears the old value first.
        set_progress(&mut words, 1, 2);
        assert_eq!(get_progress(&words, 1), 2);
        assert_eq!(get_progress(&words, 0), 7);
    }

    #[test]
    fn bound_check_triggers_strictly_above_the_bound() {
        assert!(bound_check(5, 5).is_ok());
        let err = bound_check(6, 5).unwrap_err();
        assert!(err.to_string().contains("bound of 5"));
    }
}
