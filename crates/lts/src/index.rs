//! The columnar analysis index: a one-pass compilation of an [`Lts`] into
//! dense arrays that turn the risk and compliance analyses from repeated
//! full scans of the transition relation into index probes.
//!
//! The checkers in `privacy-compliance` and `privacy-risk` originally
//! answered every question — *which transitions read this field?*, *in which
//! reachable states could this actor identify this datum?* — by walking all
//! transitions (or all reachable states) once **per policy statement** or
//! per (actor, field) pair, comparing string-keyed labels each time. On the
//! healthcare case study that is 1.4M label comparisons per statement.
//!
//! [`LtsIndex::build`] walks the LTS exactly once and materialises:
//!
//! * **Columns** — per transition: the action kind, the interned actor, the
//!   interned purpose and a packed `u64` bitset of the interned fields the
//!   label carries (identifier interning reuses
//!   [`privacy_model::intern::Interner`], the same dense-index machinery the
//!   generation engine compiles flows with).
//! * **Posting lists** — ascending transition-id lists per action kind, per
//!   actor, per field and per (actor, action kind) pair, so "all reads by
//!   the Administrator touching `Diagnosis`" is a probe plus a bitset test
//!   instead of a scan.
//! * **Action field cover** — per action kind, the union bitset of fields
//!   any transition of that kind touches (the right-to-erasure probe).
//! * **CSR adjacency** — the state → outgoing-transition relation flattened
//!   into two dense arrays (offsets + transition ids).
//! * **Reachability + state-bit posting lists** — the breadth-first
//!   reachable order (identical to [`Lts::reachable`]) and, per Boolean
//!   state variable of the [`VarSpace`], the list of reachable states (in
//!   that same order) in which the variable is true. "Every reachable state
//!   where the Researcher *could identify* `Diagnosis`" becomes a slice
//!   lookup.
//!
//! The index is a snapshot: it describes the LTS at build time and is not
//! updated when the LTS is mutated afterwards (the disclosure analysis
//! exploits exactly this — it matches the scan path, which also snapshots
//! `reachable()` before annotating).

use crate::label::ActionKind;
use crate::lts::{Lts, StateId, TransitionId};
use crate::space::{VarKind, VarSpace};
use privacy_model::{ActorId, FieldId, Interner, Purpose};

/// Number of distinct [`ActionKind`]s (the width of the per-action tables).
const ACTIONS: usize = ActionKind::ALL.len();

/// Sentinel in the purpose column for "no purpose declared".
const NO_PURPOSE: u32 = u32::MAX;

/// An empty posting list, returned for identifiers the index never saw.
const EMPTY_STATES: &[StateId] = &[];
const EMPTY_TRANSITIONS: &[u32] = &[];

/// The dense table index of an action kind: its position in
/// [`ActionKind::ALL`] — [`LtsIndex::action_of`] resolves the column back
/// through that array; the `action_index_matches_action_kind_all_order` test
/// pins the alignment.
#[inline]
fn action_index(action: ActionKind) -> usize {
    action.table_index()
}

/// Transition count below which the sharded column/posting pass runs on the
/// calling thread: with fewer transitions per shard the spawn/merge overhead
/// outweighs the scan itself.
const PARALLEL_BUILD_MIN_TRANSITIONS_PER_SHARD: usize = 65_536;

/// The resolved columns of one distinct (`Arc`-interned) label allocation.
struct LabelCols {
    action: u8,
    actor: u32,
    purpose: u32,
    fields: Vec<u32>,
}

/// The result of one shard's first pass over its transition range: the
/// distinct label allocations in first-occurrence order (with a transition
/// that carries each) and the per-transition label-pointer column.
struct RangeScan {
    distinct: Vec<(usize, TransitionId)>,
    ptr_col: Vec<usize>,
}

/// The columns and posting lists one shard produced for its transition
/// range. Shards cover contiguous ascending ranges, so concatenating in
/// shard order reproduces the sequential single-pass output exactly.
struct RangeColumns {
    action_col: Vec<u8>,
    actor_col: Vec<u32>,
    purpose_col: Vec<u32>,
    field_words: Vec<u64>,
    by_action: Vec<Vec<u32>>,
    by_actor: Vec<Vec<u32>>,
    by_field: Vec<Vec<u32>>,
    by_actor_action: Vec<Vec<u32>>,
    action_field_cover: Vec<Vec<u64>>,
}

/// The columnar analysis index over one [`Lts`] snapshot.
///
/// # Examples
///
/// ```
/// use privacy_lts::{ActionKind, Lts, LtsIndex, PrivacyState, TransitionLabel, VarSpace};
/// use privacy_model::{ActorId, FieldId};
///
/// let space = VarSpace::new([ActorId::new("Doctor")], [FieldId::new("Diagnosis")]);
/// let mut lts = Lts::new(space.clone());
/// let s0 = lts.initial();
/// let s1 = lts.intern(PrivacyState::absolute(&space).with_has(
///     &space,
///     &ActorId::new("Doctor"),
///     &FieldId::new("Diagnosis"),
/// ));
/// lts.add_transition(
///     s0,
///     s1,
///     TransitionLabel::new(ActionKind::Read, "Doctor", [FieldId::new("Diagnosis")], None),
/// );
///
/// let index = LtsIndex::build(&lts);
/// let doctor = ActorId::new("Doctor");
/// let diagnosis = FieldId::new("Diagnosis");
/// assert!(index.can_actor_identify(&doctor, &diagnosis));
/// assert_eq!(index.transitions_of_kind(ActionKind::Read).len(), 1);
/// assert_eq!(index.states_where_has(&doctor, &diagnosis), &[s1]);
/// ```
#[derive(Debug, Clone)]
pub struct LtsIndex {
    transition_count: usize,
    /// The variable space of the indexed LTS (owns the state-bit layout).
    space: VarSpace,
    actors: Interner<ActorId>,
    fields: Interner<FieldId>,
    purposes: Interner<Purpose>,
    /// Per transition: `action_index` of its action kind.
    action_col: Vec<u8>,
    /// Per transition: interned actor index.
    actor_col: Vec<u32>,
    /// Per transition: interned purpose index, or [`NO_PURPOSE`].
    purpose_col: Vec<u32>,
    /// `u64` words per transition in [`LtsIndex::field_words`].
    words_per_transition: usize,
    /// Packed field bitsets, `words_per_transition` words per transition.
    field_words: Vec<u64>,
    /// Posting lists: ascending transition ids per action kind.
    by_action: Vec<Vec<u32>>,
    /// Posting lists: ascending transition ids per interned actor.
    by_actor: Vec<Vec<u32>>,
    /// Posting lists: ascending transition ids per interned field.
    by_field: Vec<Vec<u32>>,
    /// Posting lists per (actor, action kind), laid out `actor * ACTIONS + kind`.
    by_actor_action: Vec<Vec<u32>>,
    /// Per action kind: the union field bitset its transitions touch.
    action_field_cover: Vec<Vec<u64>>,
    /// CSR offsets into [`LtsIndex::csr_transitions`], one entry per state
    /// plus the trailing end offset.
    csr_offsets: Vec<u32>,
    /// The outgoing transition ids of every state, concatenated.
    csr_transitions: Vec<u32>,
    /// Reachable states, in the breadth-first order of [`Lts::reachable`].
    reachable: Vec<StateId>,
    /// `u64` words per state in [`LtsIndex::state_words`].
    words_per_state: usize,
    /// Every state's packed variable assignment, copied out of the LTS so
    /// the lazy per-variable lists can be materialised without it.
    state_words: Vec<u64>,
    /// Per Boolean state variable (bit index of the [`VarSpace`]): how many
    /// reachable states have it true. Emptiness probes
    /// ([`LtsIndex::can_actor_identify`]) read only this.
    bit_counts: Vec<u32>,
    /// Per Boolean state variable: the reachable states in which it is true,
    /// in reachable (BFS) order — materialised lazily on first request,
    /// since most analyses probe only a fraction of the variables.
    bit_lists: Vec<std::sync::OnceLock<Vec<StateId>>>,
}

impl LtsIndex {
    /// Builds the index from one pass over the LTS (plus one breadth-first
    /// traversal for reachability). The column/posting pass is sharded over
    /// worker threads when the LTS is large enough to amortise the fan-out —
    /// the result is identical for every thread count (see
    /// [`LtsIndex::build_with_threads`]).
    pub fn build(lts: &Lts) -> LtsIndex {
        LtsIndex::build_with_threads(lts, None)
    }

    /// Builds the index with the column/posting pass sharded over `threads`
    /// worker threads (`None` = one per CPU).
    ///
    /// The transition range is split into contiguous chunks, each shard
    /// scans its chunk independently, and the per-shard columns and posting
    /// lists are concatenated in shard order — so every column, posting
    /// list, interner and bitset is byte-for-byte identical to the
    /// single-threaded build regardless of thread count (pinned by the
    /// `sharded_index_build_matches_sequential_build_on_random_models`
    /// property test). Small LTSs are built on the calling thread.
    pub fn build_with_threads(lts: &Lts, threads: Option<usize>) -> LtsIndex {
        let space = lts.space();
        let transition_count = lts.transition_count();
        // An explicit thread count is honoured as-is (the differential tests
        // force sharding on small LTSs); `None` shards only when every shard
        // gets enough transitions to amortise the spawn/merge overhead.
        let shards = match threads {
            Some(threads) => threads.clamp(1, transition_count.max(1)),
            None => crate::batch::resolve_threads(None)
                .min(transition_count / PARALLEL_BUILD_MIN_TRANSITIONS_PER_SHARD)
                .max(1),
        };

        // Contiguous transition ranges, one per shard.
        let chunk = transition_count.div_ceil(shards).max(1);
        let ranges: Vec<(usize, usize)> = (0..shards)
            .map(|s| ((s * chunk).min(transition_count), ((s + 1) * chunk).min(transition_count)))
            .collect();

        // Phase 1 (sharded): labels are `Arc`-interned by the generation
        // engine, so a handful of distinct allocations cover millions of
        // transitions. Each shard records its distinct label pointers in
        // first-occurrence order plus the per-transition pointer column.
        let scans: Vec<RangeScan> = crate::batch::parallel_map(&ranges, Some(shards), |&range| {
            let (start, end) = range;
            let mut seen: crate::hash::FxHashSet<usize> = crate::hash::FxHashSet::default();
            let mut distinct = Vec::new();
            let mut ptr_col = Vec::with_capacity(end - start);
            for tx in start..end {
                let id = TransitionId(tx);
                let ptr = lts.transition(id).label_ptr() as usize;
                if seen.insert(ptr) {
                    distinct.push((ptr, id));
                }
                ptr_col.push(ptr);
            }
            RangeScan { distinct, ptr_col }
        });

        // Interning merge (sequential): the variable space first (so space
        // queries resolve even for actors/fields no transition mentions),
        // then the distinct labels in shard order. A label's first shard is
        // the shard of its globally first transition, and within a shard the
        // distinct list is in transition order — so this is exactly the
        // global first-occurrence order the single-pass build assigns.
        let mut actors: Interner<ActorId> = space.actors().iter().cloned().collect();
        let mut fields: Interner<FieldId> = space.fields().iter().cloned().collect();
        let mut purposes: Interner<Purpose> = Interner::new();
        let mut label_cols: crate::hash::FxHashMap<usize, LabelCols> =
            crate::hash::FxHashMap::default();
        for scan in &scans {
            for &(ptr, id) in &scan.distinct {
                label_cols.entry(ptr).or_insert_with(|| {
                    let label = lts.transition(id).label();
                    let actor = match actors.get(label.actor()) {
                        Some(actor) => actor,
                        None => actors.intern(label.actor().clone()),
                    };
                    let purpose = match label.purpose() {
                        Some(purpose) => match purposes.get(purpose) {
                            Some(purpose) => purpose,
                            None => purposes.intern(purpose.clone()),
                        },
                        None => NO_PURPOSE,
                    };
                    let field_ids = label
                        .fields()
                        .iter()
                        .map(|field| match fields.get(field) {
                            Some(field) => field,
                            None => fields.intern(field.clone()),
                        })
                        .collect();
                    LabelCols {
                        action: action_index(label.action()) as u8,
                        actor,
                        purpose,
                        fields: field_ids,
                    }
                });
            }
        }

        // Phase 2 (sharded): with the interners complete, every shard emits
        // its columns, packed field bitsets and posting lists from its
        // pointer column alone.
        let words_per_transition = fields.len().div_ceil(64).max(1);
        let (actor_slots, field_slots) = (actors.len(), fields.len());
        let inputs: Vec<(usize, &[usize])> = ranges
            .iter()
            .zip(&scans)
            .map(|(&(start, _), scan)| (start, scan.ptr_col.as_slice()))
            .collect();
        let columns: Vec<RangeColumns> =
            crate::batch::parallel_map(&inputs, Some(shards), |&(start, ptr_col)| {
                let mut out = RangeColumns {
                    action_col: Vec::with_capacity(ptr_col.len()),
                    actor_col: Vec::with_capacity(ptr_col.len()),
                    purpose_col: Vec::with_capacity(ptr_col.len()),
                    field_words: vec![0u64; ptr_col.len() * words_per_transition],
                    by_action: vec![Vec::new(); ACTIONS],
                    by_actor: vec![Vec::new(); actor_slots],
                    by_field: vec![Vec::new(); field_slots],
                    by_actor_action: vec![Vec::new(); actor_slots * ACTIONS],
                    action_field_cover: vec![vec![0u64; words_per_transition]; ACTIONS],
                };
                for (offset, ptr) in ptr_col.iter().enumerate() {
                    let tx = (start + offset) as u32;
                    let cols = &label_cols[ptr];
                    out.action_col.push(cols.action);
                    out.actor_col.push(cols.actor);
                    out.purpose_col.push(cols.purpose);
                    out.by_action[cols.action as usize].push(tx);
                    out.by_actor[cols.actor as usize].push(tx);
                    out.by_actor_action[cols.actor as usize * ACTIONS + cols.action as usize]
                        .push(tx);
                    for &field in &cols.fields {
                        let (word, mask) = (field as usize / 64, 1u64 << (field % 64));
                        out.by_field[field as usize].push(tx);
                        out.field_words[offset * words_per_transition + word] |= mask;
                        out.action_field_cover[cols.action as usize][word] |= mask;
                    }
                }
                out
            });

        // Deterministic concat-merge: ranges are contiguous and ascending,
        // so appending per-shard columns and postings in shard order yields
        // the ascending transition-id order the probes rely on.
        let mut action_col = Vec::with_capacity(transition_count);
        let mut actor_col = Vec::with_capacity(transition_count);
        let mut purpose_col = Vec::with_capacity(transition_count);
        let mut field_words = Vec::with_capacity(transition_count * words_per_transition);
        let mut by_action: Vec<Vec<u32>> = vec![Vec::new(); ACTIONS];
        let mut by_actor: Vec<Vec<u32>> = vec![Vec::new(); actor_slots];
        let mut by_field: Vec<Vec<u32>> = vec![Vec::new(); field_slots];
        let mut by_actor_action: Vec<Vec<u32>> = vec![Vec::new(); actor_slots * ACTIONS];
        let mut action_field_cover = vec![vec![0u64; words_per_transition]; ACTIONS];
        for shard in columns {
            action_col.extend(shard.action_col);
            actor_col.extend(shard.actor_col);
            purpose_col.extend(shard.purpose_col);
            field_words.extend(shard.field_words);
            for (merged, local) in by_action.iter_mut().zip(shard.by_action) {
                merged.extend(local);
            }
            for (merged, local) in by_actor.iter_mut().zip(shard.by_actor) {
                merged.extend(local);
            }
            for (merged, local) in by_field.iter_mut().zip(shard.by_field) {
                merged.extend(local);
            }
            for (merged, local) in by_actor_action.iter_mut().zip(shard.by_actor_action) {
                merged.extend(local);
            }
            for (merged, local) in action_field_cover.iter_mut().zip(shard.action_field_cover) {
                for (dst, src) in merged.iter_mut().zip(local) {
                    *dst |= src;
                }
            }
        }

        // CSR adjacency: state -> outgoing transition ids, flattened.
        let state_count = lts.state_count();
        let mut csr_offsets = Vec::with_capacity(state_count + 1);
        let mut csr_transitions = Vec::with_capacity(transition_count);
        csr_offsets.push(0u32);
        for state in 0..state_count {
            for tid in lts.outgoing_ids(StateId(state)) {
                csr_transitions.push(tid.0 as u32);
            }
            csr_offsets.push(csr_transitions.len() as u32);
        }

        // Copy every state's packed variable words so the lazy per-variable
        // lists can be materialised from the index alone.
        let variable_count = space.variable_count();
        let words_per_state = variable_count.div_ceil(64).max(1);
        let mut state_words = vec![0u64; state_count * words_per_state];
        for (id, state) in lts.states() {
            let start = id.0 * words_per_state;
            state_words[start..start + state.words().len()].copy_from_slice(state.words());
        }

        // Breadth-first reachability over the CSR, in exactly the order
        // `Lts::reachable` produces, counting per-variable truth along the
        // way (the full per-variable state lists are built lazily).
        let mut bit_counts = vec![0u32; variable_count];
        let mut reachable = Vec::new();
        let mut visited = vec![false; state_count];
        let mut queue = std::collections::VecDeque::new();
        visited[lts.initial().0] = true;
        queue.push_back(lts.initial());
        while let Some(current) = queue.pop_front() {
            reachable.push(current);
            let start = current.0 * words_per_state;
            for (word_index, mut word) in
                state_words[start..start + words_per_state].iter().copied().enumerate()
            {
                while word != 0 {
                    let bit = word_index * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    if bit < variable_count {
                        bit_counts[bit] += 1;
                    }
                }
            }
            let (start, end) =
                (csr_offsets[current.0] as usize, csr_offsets[current.0 + 1] as usize);
            for &tx in &csr_transitions[start..end] {
                let next = lts.transition(TransitionId(tx as usize)).to();
                if !visited[next.0] {
                    visited[next.0] = true;
                    queue.push_back(next);
                }
            }
        }
        let bit_lists = (0..variable_count).map(|_| std::sync::OnceLock::new()).collect();

        LtsIndex {
            transition_count,
            space: space.clone(),
            actors,
            fields,
            purposes,
            action_col,
            actor_col,
            purpose_col,
            words_per_transition,
            field_words,
            by_action,
            by_actor,
            by_field,
            by_actor_action,
            action_field_cover,
            csr_offsets,
            csr_transitions,
            reachable,
            words_per_state,
            state_words,
            bit_counts,
            bit_lists,
        }
    }

    /// Number of transitions the index covers (the LTS's transition count at
    /// build time).
    pub fn transition_count(&self) -> usize {
        self.transition_count
    }

    /// A stable fingerprint of everything a persisted artefact keyed on this
    /// index depends on: the [`VarSpace`] layout (bit assignment of the
    /// state variables) plus the interned actor and field vocabularies (the
    /// dense indices events resolve through). A monitor snapshot taken
    /// against one index must only be resumed against an index with the same
    /// fingerprint — `resume_from` in `privacy-runtime` enforces exactly
    /// that. Deterministic across processes (FxHash has no random seed).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = crate::hash::FxHasher::default();
        self.space.fingerprint().hash(&mut hasher);
        self.actors.len().hash(&mut hasher);
        for actor in self.actors.items() {
            actor.hash(&mut hasher);
        }
        self.fields.len().hash(&mut hasher);
        for field in self.fields.items() {
            field.hash(&mut hasher);
        }
        hasher.finish()
    }

    /// The interned index of an actor, if any transition or space entry
    /// mentions it.
    pub fn actor_index(&self, actor: &ActorId) -> Option<u32> {
        self.actors.get(actor)
    }

    /// The interned index of a field, if any transition or space entry
    /// mentions it.
    pub fn field_index(&self, field: &FieldId) -> Option<u32> {
        self.fields.get(field)
    }

    /// The interned actors, in index order.
    pub fn actors(&self) -> &[ActorId] {
        self.actors.items()
    }

    /// The interned fields, in index order.
    pub fn fields(&self) -> &[FieldId] {
        self.fields.items()
    }

    /// The action kind of a transition.
    pub fn action_of(&self, transition: u32) -> ActionKind {
        ActionKind::ALL[self.action_col[transition as usize] as usize]
    }

    /// The actor of a transition.
    pub fn actor_of(&self, transition: u32) -> &ActorId {
        self.actors
            .resolve(self.actor_col[transition as usize])
            .expect("actor column indices always resolve")
    }

    /// The interned actor index of a transition.
    pub fn actor_index_of(&self, transition: u32) -> u32 {
        self.actor_col[transition as usize]
    }

    /// The purpose of a transition, if its label declares one.
    pub fn purpose_of(&self, transition: u32) -> Option<&Purpose> {
        match self.purpose_col[transition as usize] {
            NO_PURPOSE => None,
            purpose => self.purposes.resolve(purpose),
        }
    }

    /// The interned purpose index of a value, if any transition declares it.
    pub fn purpose_index(&self, purpose: &Purpose) -> Option<u32> {
        self.purposes.get(purpose)
    }

    /// The interned purpose index of a transition, or `None`.
    pub fn purpose_index_of(&self, transition: u32) -> Option<u32> {
        match self.purpose_col[transition as usize] {
            NO_PURPOSE => None,
            purpose => Some(purpose),
        }
    }

    /// Ascending transition ids of all transitions with the given action.
    pub fn transitions_of_kind(&self, action: ActionKind) -> &[u32] {
        &self.by_action[action_index(action)]
    }

    /// Ascending transition ids of all transitions by the given actor.
    pub fn transitions_by_actor(&self, actor: &ActorId) -> &[u32] {
        match self.actors.get(actor) {
            Some(actor) => &self.by_actor[actor as usize],
            None => EMPTY_TRANSITIONS,
        }
    }

    /// Ascending transition ids of the given actor's transitions of the
    /// given action kind — e.g. every `read` by the Administrator.
    pub fn transitions_by_actor_of_kind(&self, actor: &ActorId, action: ActionKind) -> &[u32] {
        match self.actors.get(actor) {
            Some(actor) => &self.by_actor_action[actor as usize * ACTIONS + action_index(action)],
            None => EMPTY_TRANSITIONS,
        }
    }

    /// Ascending transition ids of all transitions whose label involves the
    /// given field.
    pub fn transitions_involving_field(&self, field: &FieldId) -> &[u32] {
        match self.fields.get(field) {
            Some(field) => &self.by_field[field as usize],
            None => EMPTY_TRANSITIONS,
        }
    }

    /// Returns `true` if the transition's label involves the interned field.
    pub fn involves_field(&self, transition: u32, field: u32) -> bool {
        let word =
            self.field_words[transition as usize * self.words_per_transition + field as usize / 64];
        word & (1u64 << (field % 64)) != 0
    }

    /// Returns `true` if the transition's label involves at least one field
    /// of the mask (as produced by [`LtsIndex::field_mask`]).
    pub fn involves_any(&self, transition: u32, mask: &[u64]) -> bool {
        let start = transition as usize * self.words_per_transition;
        self.field_words[start..start + self.words_per_transition]
            .iter()
            .zip(mask)
            .any(|(w, m)| w & m != 0)
    }

    /// Returns `true` if the transition's label carries at least one field.
    pub fn has_fields(&self, transition: u32) -> bool {
        let start = transition as usize * self.words_per_transition;
        self.field_words[start..start + self.words_per_transition].iter().any(|w| *w != 0)
    }

    /// Packs a set of fields into a bitset aligned with the per-transition
    /// field columns. Fields the index never saw are ignored (no transition
    /// can involve them).
    pub fn field_mask<'a>(&self, fields: impl IntoIterator<Item = &'a FieldId>) -> Vec<u64> {
        let mut mask = vec![0u64; self.words_per_transition];
        for field in fields {
            if let Some(field) = self.fields.get(field) {
                mask[field as usize / 64] |= 1u64 << (field % 64);
            }
        }
        mask
    }

    /// Returns `true` if some transition of the given action kind involves
    /// the field — the right-to-erasure probe (`kind = Delete`).
    pub fn kind_covers_field(&self, action: ActionKind, field: &FieldId) -> bool {
        match self.fields.get(field) {
            Some(field) => {
                self.action_field_cover[action_index(action)][field as usize / 64]
                    & (1u64 << (field % 64))
                    != 0
            }
            None => false,
        }
    }

    /// The outgoing transition ids of a state (CSR probe).
    pub fn outgoing_transitions(&self, state: StateId) -> &[u32] {
        let (start, end) =
            (self.csr_offsets[state.0] as usize, self.csr_offsets[state.0 + 1] as usize);
        &self.csr_transitions[start..end]
    }

    /// The reachable states in the breadth-first order of
    /// [`Lts::reachable`].
    pub fn reachable(&self) -> &[StateId] {
        &self.reachable
    }

    /// The reachable states (in BFS order) in which `actor` **has
    /// identified** `field`.
    pub fn states_where_has(&self, actor: &ActorId, field: &FieldId) -> &[StateId] {
        self.states_of_variable(actor, field, VarKind::Has)
    }

    /// The reachable states (in BFS order) in which `actor` **could
    /// identify** `field`.
    pub fn states_where_could(&self, actor: &ActorId, field: &FieldId) -> &[StateId] {
        self.states_of_variable(actor, field, VarKind::Could)
    }

    /// The reachable states (in BFS order) in which the given state variable
    /// is true. Empty for (actor, field) pairs outside the variable space.
    /// The list is materialised on first request and memoised (most
    /// analyses probe only a fraction of the variables); emptiness is
    /// answered from the eagerly-built counts without materialising.
    pub fn states_of_variable(
        &self,
        actor: &ActorId,
        field: &FieldId,
        kind: VarKind,
    ) -> &[StateId] {
        match self.space_bit(actor, field, kind) {
            Some(bit) => {
                let count = self.bit_counts[bit] as usize;
                if count == 0 {
                    return EMPTY_STATES;
                }
                self.bit_lists[bit].get_or_init(|| {
                    let mut states = Vec::with_capacity(count);
                    states.extend(
                        self.reachable.iter().copied().filter(|state| self.state_bit(*state, bit)),
                    );
                    states
                })
            }
            None => EMPTY_STATES,
        }
    }

    /// How many reachable states have the given state variable true.
    pub fn count_states_of_variable(
        &self,
        actor: &ActorId,
        field: &FieldId,
        kind: VarKind,
    ) -> usize {
        self.space_bit(actor, field, kind).map_or(0, |bit| self.bit_counts[bit] as usize)
    }

    /// Returns `true` if some reachable state lets `actor` identify `field`
    /// (`has ∨ could`) — the [`crate::query::LtsQuery::can_actor_identify`]
    /// probe. Answered from the per-variable counts in O(1).
    pub fn can_actor_identify(&self, actor: &ActorId, field: &FieldId) -> bool {
        self.count_states_of_variable(actor, field, VarKind::Has) > 0
            || self.count_states_of_variable(actor, field, VarKind::Could) > 0
    }

    /// The packed state-variable bit of the `(actor, field, kind)` triple,
    /// addressed by **interned** indices — the point lookup the runtime
    /// monitor resolves events with. Interning seeds the variable space
    /// first, so an interned index below the space's actor/field count *is*
    /// the space index (`interned_ids_align_with_space_indices` pins this);
    /// indices outside the space (label-only vocabulary) resolve to `None`.
    #[inline]
    pub fn bit_index_of(&self, actor: u32, field: u32, kind: VarKind) -> Option<usize> {
        self.space.bit_at(actor as usize, field as usize, kind)
    }

    /// [`LtsIndex::can_actor_identify`] by interned indices: `true` if some
    /// reachable state lets the actor identify the field (`has ∨ could`).
    /// O(1) from the per-variable counts; `false` outside the space.
    pub fn can_actor_identify_indices(&self, actor: u32, field: u32) -> bool {
        self.bit_index_of(actor, field, VarKind::Has)
            .is_some_and(|bit| self.bit_counts[bit] > 0 || self.bit_counts[bit + 1] > 0)
    }

    #[inline]
    fn state_bit(&self, state: StateId, bit: usize) -> bool {
        (self.state_words[state.0 * self.words_per_state + bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// The variable space of the indexed LTS.
    pub fn space(&self) -> &VarSpace {
        &self.space
    }

    fn space_bit(&self, actor: &ActorId, field: &FieldId, kind: VarKind) -> Option<usize> {
        self.space.bit_index(actor, field, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::TransitionLabel;
    use crate::state::PrivacyState;
    use privacy_model::Purpose;

    fn doctor() -> ActorId {
        ActorId::new("Doctor")
    }

    fn admin() -> ActorId {
        ActorId::new("Admin")
    }

    fn name() -> FieldId {
        FieldId::new("Name")
    }

    fn diagnosis() -> FieldId {
        FieldId::new("Diagnosis")
    }

    /// s0 --collect(Doctor,{Name})--> s1 --create(Doctor,{Diagnosis})--> s2
    /// --read(Admin,{Diagnosis})--> s3, plus an unreachable state s4.
    fn sample_lts() -> Lts {
        let space = VarSpace::new([doctor(), admin()], [name(), diagnosis()]);
        let mut lts = Lts::new(space.clone());
        let s0 = lts.initial();
        let s1 = lts.intern(PrivacyState::absolute(&space).with_has(&space, &doctor(), &name()));
        let s2 = lts.intern(lts.state(s1).clone().with_could(&space, &admin(), &diagnosis()));
        let s3 = lts.intern(lts.state(s2).clone().with_has(&space, &admin(), &diagnosis()));
        lts.add_transition(
            s0,
            s1,
            TransitionLabel::new(ActionKind::Collect, doctor(), [name()], None)
                .with_purpose(Purpose::new("intake").unwrap()),
        );
        lts.add_transition(
            s1,
            s2,
            TransitionLabel::new(ActionKind::Create, doctor(), [diagnosis()], None),
        );
        lts.add_transition(
            s2,
            s3,
            TransitionLabel::new(ActionKind::Read, admin(), [diagnosis()], None),
        );
        // An unreachable state: its bits must not appear in the postings.
        lts.intern(PrivacyState::absolute(&space).with_has(&space, &admin(), &name()));
        lts
    }

    #[test]
    fn action_index_matches_action_kind_all_order() {
        for (position, action) in ActionKind::ALL.iter().enumerate() {
            assert_eq!(action_index(*action), position, "{action} misaligned with ALL");
        }
        assert_eq!(ACTIONS, ActionKind::ALL.len());
    }

    #[test]
    fn posting_lists_are_ascending_and_complete() {
        let lts = sample_lts();
        let index = LtsIndex::build(&lts);
        assert_eq!(index.transition_count(), 3);
        assert_eq!(index.transitions_of_kind(ActionKind::Read), &[2]);
        assert_eq!(index.transitions_of_kind(ActionKind::Delete), EMPTY_TRANSITIONS);
        assert_eq!(index.transitions_by_actor(&doctor()), &[0, 1]);
        assert_eq!(index.transitions_by_actor(&ActorId::new("Ghost")), EMPTY_TRANSITIONS);
        assert_eq!(index.transitions_by_actor_of_kind(&doctor(), ActionKind::Create), &[1]);
        assert_eq!(index.transitions_involving_field(&diagnosis()), &[1, 2]);
        assert_eq!(index.transitions_involving_field(&FieldId::new("Ghost")), EMPTY_TRANSITIONS);
    }

    #[test]
    fn columns_resolve_actions_actors_and_purposes() {
        let lts = sample_lts();
        let index = LtsIndex::build(&lts);
        assert_eq!(index.action_of(0), ActionKind::Collect);
        assert_eq!(index.action_of(2), ActionKind::Read);
        assert_eq!(index.actor_of(2), &admin());
        assert_eq!(index.purpose_of(0), Some(&Purpose::new("intake").unwrap()));
        assert_eq!(index.purpose_of(1), None);
        assert_eq!(
            index.purpose_index_of(0),
            index.purpose_index(&Purpose::new("intake").unwrap())
        );
        assert_eq!(index.purpose_index_of(1), None);
    }

    #[test]
    fn field_bitsets_answer_involvement() {
        let lts = sample_lts();
        let index = LtsIndex::build(&lts);
        let diagnosis_idx = index.field_index(&diagnosis()).unwrap();
        assert!(index.involves_field(1, diagnosis_idx));
        assert!(!index.involves_field(0, diagnosis_idx));
        assert!(index.has_fields(0));
        let mask = index.field_mask([&diagnosis(), &FieldId::new("Ghost")]);
        assert!(index.involves_any(2, &mask));
        assert!(!index.involves_any(0, &mask));
        let empty_mask = index.field_mask([] as [&FieldId; 0]);
        assert!(!index.involves_any(0, &empty_mask));
    }

    #[test]
    fn erasure_cover_probe_matches_delete_transitions() {
        let mut lts = sample_lts();
        let index = LtsIndex::build(&lts);
        assert!(!index.kind_covers_field(ActionKind::Delete, &diagnosis()));
        assert!(index.kind_covers_field(ActionKind::Read, &diagnosis()));
        let s0 = lts.initial();
        lts.add_transition(
            s0,
            s0,
            TransitionLabel::new(ActionKind::Delete, doctor(), [diagnosis()], None),
        );
        let index = LtsIndex::build(&lts);
        assert!(index.kind_covers_field(ActionKind::Delete, &diagnosis()));
        assert!(!index.kind_covers_field(ActionKind::Delete, &name()));
    }

    #[test]
    fn csr_adjacency_matches_outgoing() {
        let lts = sample_lts();
        let index = LtsIndex::build(&lts);
        for (id, _) in lts.states() {
            let expected: Vec<u32> = lts.outgoing(id).map(|(tid, _)| tid.0 as u32).collect();
            assert_eq!(index.outgoing_transitions(id), expected.as_slice());
        }
    }

    #[test]
    fn reachability_and_state_bit_postings_match_direct_queries() {
        let lts = sample_lts();
        let index = LtsIndex::build(&lts);
        assert_eq!(index.reachable(), lts.reachable().as_slice());
        // The unreachable s4 state must not appear anywhere.
        assert_eq!(index.reachable().len(), 4);

        let space = lts.space();
        for actor in space.actors() {
            for field in space.fields() {
                let has: Vec<StateId> = lts
                    .reachable()
                    .into_iter()
                    .filter(|id| lts.state(*id).has(space, actor, field))
                    .collect();
                let could: Vec<StateId> = lts
                    .reachable()
                    .into_iter()
                    .filter(|id| lts.state(*id).could(space, actor, field))
                    .collect();
                assert_eq!(index.states_where_has(actor, field), has.as_slice());
                assert_eq!(index.states_where_could(actor, field), could.as_slice());
                assert_eq!(
                    index.can_actor_identify(actor, field),
                    !has.is_empty() || !could.is_empty()
                );
            }
        }
        // Unknown pairs resolve to empty, never panic.
        assert!(index.states_where_has(&ActorId::new("Ghost"), &name()).is_empty());
        assert!(!index.can_actor_identify(&ActorId::new("Ghost"), &name()));
    }

    #[test]
    fn interned_ids_align_with_space_indices() {
        let lts = sample_lts();
        let index = LtsIndex::build(&lts);
        let space = lts.space();
        for actor in space.actors() {
            assert_eq!(index.actor_index(actor).map(|i| i as usize), space.actor_index(actor));
        }
        for field in space.fields() {
            assert_eq!(index.field_index(field).map(|i| i as usize), space.field_index(field));
        }
    }

    #[test]
    fn point_probes_match_name_based_probes() {
        let lts = sample_lts();
        let index = LtsIndex::build(&lts);
        let space = lts.space();
        for actor in space.actors() {
            for field in space.fields() {
                let a = index.actor_index(actor).unwrap();
                let f = index.field_index(field).unwrap();
                for kind in [VarKind::Has, VarKind::Could] {
                    assert_eq!(index.bit_index_of(a, f, kind), space.bit_index(actor, field, kind));
                }
                assert_eq!(
                    index.can_actor_identify_indices(a, f),
                    index.can_actor_identify(actor, field)
                );
            }
        }
        // Indices outside the space never resolve to a bit.
        let out = space.actor_count() as u32;
        assert_eq!(index.bit_index_of(out, 0, VarKind::Has), None);
        assert!(!index.can_actor_identify_indices(out, 0));
    }

    #[test]
    fn fingerprints_are_stable_and_vocabulary_sensitive() {
        let lts = sample_lts();
        let index = LtsIndex::build(&lts);
        // Rebuilding (at any shard count) reproduces the fingerprint.
        assert_eq!(index.fingerprint(), LtsIndex::build(&lts).fingerprint());
        assert_eq!(index.fingerprint(), LtsIndex::build_with_threads(&lts, Some(3)).fingerprint());
        // A space with fewer actors fingerprints differently, as does one
        // with the same vocabulary in a different order (the bit layout
        // changes even though the sets are equal).
        let smaller = VarSpace::new([doctor()], [name(), diagnosis()]);
        let reordered = VarSpace::new([admin(), doctor()], [name(), diagnosis()]);
        assert_ne!(lts.space().fingerprint(), smaller.fingerprint());
        assert_ne!(lts.space().fingerprint(), reordered.fingerprint());
    }

    // The sharded-build == sequential-build equivalence is pinned over
    // random models (and forced shard counts) by
    // `sharded_index_build_matches_sequential_build_on_random_models` in
    // `tests/differential.rs`, which owns the full-surface index-equality
    // checker.
}
