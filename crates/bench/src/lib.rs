//! # privacy-bench
//!
//! Benchmark harness for the reproduction: one Criterion bench per table and
//! figure of the paper's evaluation (Section IV), plus scaling/ablation
//! benches, plus the `experiments` binary that regenerates every table and
//! figure as text (the rows recorded in `EXPERIMENTS.md`).
//!
//! Shared fixtures live here so the benches and the binary use identical
//! workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use privacy_access::{AccessControlList, AccessPolicy, Grant};
use privacy_core::PrivacySystem;
use privacy_dataflow::DiagramBuilder;
use privacy_model::{
    Actor, ActorId, Catalog, DataField, DataSchema, DatastoreDecl, FieldId, ModelError, ServiceDecl,
};
use std::time::{Duration, Instant};

/// Times `f` by running it repeatedly until `target` wall time has
/// accumulated (at least once after the warm-up), returning the mean
/// duration per run and the warm-up result. Shared by the `lts_scaling` and
/// `analysis_scaling` bench binaries so their measurement semantics cannot
/// drift apart.
pub fn time_runs<R>(target: Duration, mut f: impl FnMut() -> R) -> (f64, R) {
    let result = f(); // Warm-up run, also the correctness artefact.
    let started = Instant::now();
    let mut runs = 0u32;
    loop {
        let _ = std::hint::black_box(f());
        runs += 1;
        if started.elapsed() >= target {
            break;
        }
    }
    (started.elapsed().as_secs_f64() / f64::from(runs), result)
}

/// Builds a synthetic system with `actors` actors, `fields` fields and one
/// service whose diagram collects, stores and reads every field — used by the
/// scaling / ablation benches to measure how LTS generation and risk analysis
/// grow with model size.
///
/// # Errors
///
/// Returns a [`ModelError`] only if the synthetic construction itself is
/// inconsistent (a bug in the generator).
pub fn scaled_system(actors: usize, fields: usize) -> Result<PrivacySystem, ModelError> {
    let actor_ids: Vec<ActorId> = (0..actors).map(|i| ActorId::new(format!("actor-{i}"))).collect();
    let field_ids: Vec<FieldId> = (0..fields).map(|i| FieldId::new(format!("field-{i}"))).collect();

    let mut catalog = Catalog::new();
    for actor in &actor_ids {
        catalog.add_actor(Actor::role(actor.clone()))?;
    }
    for field in &field_ids {
        catalog.add_field(DataField::sensitive(field.clone()))?;
    }
    catalog.add_schema(DataSchema::new("Schema", field_ids.clone()))?;
    catalog.add_datastore(DatastoreDecl::new("Store", "Schema"))?;
    catalog.add_service(ServiceDecl::new("Service", actor_ids.clone()))?;

    let mut acl = AccessControlList::new();
    for actor in &actor_ids {
        acl.grant(Grant::read_write_all(actor.clone(), "Store"));
    }
    let policy = AccessPolicy::from_parts(acl, Default::default());

    let collector = actor_ids[0].clone();
    let mut builder = DiagramBuilder::new("Service")
        .collect(collector.clone(), field_ids.clone(), "intake", 1)?
        .create(collector.clone(), "Store", field_ids.clone(), "persist", 2)?;
    for (order, actor) in (3..).zip(actor_ids.iter().skip(1)) {
        builder = builder.read(actor.clone(), "Store", field_ids.clone(), "process", order)?;
    }

    let mut system_builder = PrivacySystem::builder();
    *system_builder.catalog_mut() = catalog;
    *system_builder.policy_mut() = policy;
    system_builder.add_diagram(builder.build())?;
    system_builder.build()
}

/// Builds a synthetic system with `actors` actors, `fields` fields and
/// `services` services. Fields are shared; each service is driven by its own
/// collector actor (round-robin) and collects, stores and reads every field
/// through a shared datastore, so interleaved exploration grows with the
/// service count — used by the LTS scaling benchmark (`lts_scaling`) to
/// measure generation throughput along the actors×fields×services axes.
///
/// # Errors
///
/// Returns a [`ModelError`] only if the synthetic construction itself is
/// inconsistent (a bug in the generator).
pub fn scaled_multi_service_system(
    actors: usize,
    fields: usize,
    services: usize,
) -> Result<PrivacySystem, ModelError> {
    let actors = actors.max(1);
    let services = services.max(1);
    let actor_ids: Vec<ActorId> = (0..actors).map(|i| ActorId::new(format!("actor-{i}"))).collect();
    let field_ids: Vec<FieldId> = (0..fields).map(|i| FieldId::new(format!("field-{i}"))).collect();

    let mut catalog = Catalog::new();
    for actor in &actor_ids {
        catalog.add_actor(Actor::role(actor.clone()))?;
    }
    for field in &field_ids {
        catalog.add_field(DataField::sensitive(field.clone()))?;
    }
    catalog.add_schema(DataSchema::new("Schema", field_ids.clone()))?;
    catalog.add_datastore(DatastoreDecl::new("Store", "Schema"))?;

    let mut acl = AccessControlList::new();
    for actor in &actor_ids {
        acl.grant(Grant::read_write_all(actor.clone(), "Store"));
    }
    let policy = AccessPolicy::from_parts(acl, Default::default());

    let mut system_builder = PrivacySystem::builder();
    for s in 0..services {
        let service = format!("service-{s}");
        let collector = actor_ids[s % actor_ids.len()].clone();
        let reader = actor_ids[(s + 1) % actor_ids.len()].clone();
        catalog.add_service(ServiceDecl::new(service.clone(), actor_ids.clone()))?;
        let builder = DiagramBuilder::new(service)
            .collect(collector.clone(), field_ids.clone(), "intake", 1)?
            .create(collector, "Store", field_ids.clone(), "persist", 2)?
            .read(reader, "Store", field_ids.clone(), "process", 3)?;
        system_builder.add_diagram(builder.build())?;
    }
    *system_builder.catalog_mut() = catalog;
    *system_builder.policy_mut() = policy;
    system_builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_service_systems_scale_with_the_service_count() {
        let one = scaled_multi_service_system(3, 4, 1).unwrap();
        let three = scaled_multi_service_system(3, 4, 3).unwrap();
        assert!(one.validate().unwrap().is_ok());
        assert!(three.validate().unwrap().is_ok());
        assert_eq!(three.dataflows().len(), 3);
        let lts_one = one.generate_lts().unwrap();
        let lts_three = three.generate_lts().unwrap();
        assert!(lts_three.transition_count() > lts_one.transition_count());
    }

    #[test]
    fn scaled_systems_are_valid_and_scale_in_the_expected_dimensions() {
        let small = scaled_system(2, 2).unwrap();
        assert!(small.validate().unwrap().is_ok());
        assert_eq!(small.catalog().state_variable_count(), 8);

        let larger = scaled_system(5, 6).unwrap();
        assert_eq!(larger.catalog().state_variable_count(), 60);
        assert_eq!(larger.dataflows().flow_count(), 2 + 4);

        let lts_small = small.generate_lts().unwrap();
        let lts_larger = larger.generate_lts().unwrap();
        assert!(lts_larger.transition_count() > lts_small.transition_count());
    }
}
