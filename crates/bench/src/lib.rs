//! # privacy-bench
//!
//! Benchmark harness for the reproduction: one Criterion bench per table and
//! figure of the paper's evaluation (Section IV), plus scaling/ablation
//! benches, plus the `experiments` binary that regenerates every table and
//! figure as text (the rows recorded in `EXPERIMENTS.md`).
//!
//! Shared fixtures live here so the benches and the binary use identical
//! workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use privacy_access::{AccessControlList, AccessPolicy, Grant};
use privacy_core::PrivacySystem;
use privacy_dataflow::DiagramBuilder;
use privacy_model::{
    Actor, ActorId, Catalog, DataField, DataSchema, DatastoreDecl, FieldId, ModelError, ServiceDecl,
};

/// Builds a synthetic system with `actors` actors, `fields` fields and one
/// service whose diagram collects, stores and reads every field — used by the
/// scaling / ablation benches to measure how LTS generation and risk analysis
/// grow with model size.
///
/// # Errors
///
/// Returns a [`ModelError`] only if the synthetic construction itself is
/// inconsistent (a bug in the generator).
pub fn scaled_system(actors: usize, fields: usize) -> Result<PrivacySystem, ModelError> {
    let actor_ids: Vec<ActorId> = (0..actors).map(|i| ActorId::new(format!("actor-{i}"))).collect();
    let field_ids: Vec<FieldId> = (0..fields).map(|i| FieldId::new(format!("field-{i}"))).collect();

    let mut catalog = Catalog::new();
    for actor in &actor_ids {
        catalog.add_actor(Actor::role(actor.clone()))?;
    }
    for field in &field_ids {
        catalog.add_field(DataField::sensitive(field.clone()))?;
    }
    catalog.add_schema(DataSchema::new("Schema", field_ids.clone()))?;
    catalog.add_datastore(DatastoreDecl::new("Store", "Schema"))?;
    catalog.add_service(ServiceDecl::new("Service", actor_ids.clone()))?;

    let mut acl = AccessControlList::new();
    for actor in &actor_ids {
        acl.grant(Grant::read_write_all(actor.clone(), "Store"));
    }
    let policy = AccessPolicy::from_parts(acl, Default::default());

    let collector = actor_ids[0].clone();
    let mut builder = DiagramBuilder::new("Service")
        .collect(collector.clone(), field_ids.clone(), "intake", 1)?
        .create(collector.clone(), "Store", field_ids.clone(), "persist", 2)?;
    for (order, actor) in (3..).zip(actor_ids.iter().skip(1)) {
        builder = builder.read(actor.clone(), "Store", field_ids.clone(), "process", order)?;
    }

    let mut system_builder = PrivacySystem::builder();
    *system_builder.catalog_mut() = catalog;
    *system_builder.policy_mut() = policy;
    system_builder.add_diagram(builder.build())?;
    system_builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_systems_are_valid_and_scale_in_the_expected_dimensions() {
        let small = scaled_system(2, 2).unwrap();
        assert!(small.validate().unwrap().is_ok());
        assert_eq!(small.catalog().state_variable_count(), 8);

        let larger = scaled_system(5, 6).unwrap();
        assert_eq!(larger.catalog().state_variable_count(), 60);
        assert_eq!(larger.dataflows().flow_count(), 2 + 4);

        let lts_small = small.generate_lts().unwrap();
        let lts_larger = larger.generate_lts().unwrap();
        assert!(lts_larger.transition_count() > lts_small.transition_count());
    }
}
