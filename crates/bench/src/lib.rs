//! # privacy-bench
//!
//! Benchmark harness for the reproduction: one Criterion bench per table and
//! figure of the paper's evaluation (Section IV), plus scaling/ablation
//! benches, plus the `experiments` binary that regenerates every table and
//! figure as text (the rows recorded in `EXPERIMENTS.md`).
//!
//! Shared fixtures live here so the benches and the binary use identical
//! workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use privacy_access::{AccessControlList, AccessPolicy, Grant};
use privacy_core::PrivacySystem;
use privacy_dataflow::DiagramBuilder;
use privacy_model::{
    Actor, ActorId, Catalog, DataField, DataSchema, DatastoreDecl, FieldId, ModelError, ServiceDecl,
};
use std::path::Path;
use std::time::{Duration, Instant};

/// The benchmark baselines checked into the repository root. The scaling
/// bench binaries default their `--out` to one of these names; re-recording
/// a baseline is a deliberate act, so [`write_report`] refuses to overwrite
/// an existing file with one of these names unless the caller passed
/// `--force-baseline`.
pub const CHECKED_IN_BASELINES: &[&str] = &[
    "BENCH_lts.json",
    "BENCH_analysis.json",
    "BENCH_runtime.json",
    "BENCH_recovery.json",
    "BENCH_ingest.json",
    "BENCH_distributed.json",
];

/// Writes one bench JSON report to `out`: the single output path every bench
/// binary routes through. Creates missing parent directories (so CI can
/// collect reports under a scratch directory) and refuses to silently
/// overwrite a checked-in baseline — a bench invoked with a default `--out`
/// in a dirty working tree must not clobber the recorded numbers.
///
/// A baseline written with `--force-baseline` is stamped with a
/// `"forced_baseline": true` field as its first key — the provenance marker
/// `scripts/repo_lint.sh` checks in CI, so a checked-in baseline that was
/// hand-edited or clobbered by some other write path is caught at review
/// time, not discovered as an inexplicable regression floor later.
///
/// # Errors
///
/// Returns a human-readable message when the destination is an existing
/// checked-in baseline and `force_baseline` is false, or when the
/// filesystem refuses the directory creation or write.
pub fn write_report(out: &str, contents: &str, force_baseline: bool) -> Result<(), String> {
    let path = Path::new(out);
    let is_baseline = path
        .file_name()
        .and_then(|name| name.to_str())
        .is_some_and(|name| CHECKED_IN_BASELINES.contains(&name));
    if is_baseline && path.exists() && !force_baseline {
        return Err(format!(
            "`{out}` is a checked-in baseline; pass --force-baseline to re-record it (or use an \
             --out name like BENCH_*_ci.json)"
        ));
    }
    let contents = if is_baseline && force_baseline {
        match contents.strip_prefix("{\n") {
            Some(rest) => format!("{{\n  \"forced_baseline\": true,\n{rest}"),
            None => {
                return Err(format!(
                    "`{out}` is a checked-in baseline but the report does not open with a `{{` \
                     line to stamp the provenance marker into"
                ));
            }
        }
    } else {
        contents.to_owned()
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|error| format!("creating {}: {error}", parent.display()))?;
        }
    }
    std::fs::write(path, contents).map_err(|error| format!("writing {out}: {error}"))
}

/// Times `f` by running it repeatedly until `target` wall time has
/// accumulated (at least once after the warm-up), returning the mean
/// duration per run and the warm-up result. Shared by the `lts_scaling` and
/// `analysis_scaling` bench binaries so their measurement semantics cannot
/// drift apart.
pub fn time_runs<R>(target: Duration, mut f: impl FnMut() -> R) -> (f64, R) {
    let result = f(); // Warm-up run, also the correctness artefact.
    let started = Instant::now();
    let mut runs = 0u32;
    loop {
        let _ = std::hint::black_box(f());
        runs += 1;
        if started.elapsed() >= target {
            break;
        }
    }
    (started.elapsed().as_secs_f64() / f64::from(runs), result)
}

/// Builds a synthetic system with `actors` actors, `fields` fields and one
/// service whose diagram collects, stores and reads every field — used by the
/// scaling / ablation benches to measure how LTS generation and risk analysis
/// grow with model size.
///
/// # Errors
///
/// Returns a [`ModelError`] only if the synthetic construction itself is
/// inconsistent (a bug in the generator).
pub fn scaled_system(actors: usize, fields: usize) -> Result<PrivacySystem, ModelError> {
    let actor_ids: Vec<ActorId> = (0..actors).map(|i| ActorId::new(format!("actor-{i}"))).collect();
    let field_ids: Vec<FieldId> = (0..fields).map(|i| FieldId::new(format!("field-{i}"))).collect();

    let mut catalog = Catalog::new();
    for actor in &actor_ids {
        catalog.add_actor(Actor::role(actor.clone()))?;
    }
    for field in &field_ids {
        catalog.add_field(DataField::sensitive(field.clone()))?;
    }
    catalog.add_schema(DataSchema::new("Schema", field_ids.clone()))?;
    catalog.add_datastore(DatastoreDecl::new("Store", "Schema"))?;
    catalog.add_service(ServiceDecl::new("Service", actor_ids.clone()))?;

    let mut acl = AccessControlList::new();
    for actor in &actor_ids {
        acl.grant(Grant::read_write_all(actor.clone(), "Store"));
    }
    let policy = AccessPolicy::from_parts(acl, Default::default());

    let collector = actor_ids[0].clone();
    let mut builder = DiagramBuilder::new("Service")
        .collect(collector.clone(), field_ids.clone(), "intake", 1)?
        .create(collector.clone(), "Store", field_ids.clone(), "persist", 2)?;
    for (order, actor) in (3..).zip(actor_ids.iter().skip(1)) {
        builder = builder.read(actor.clone(), "Store", field_ids.clone(), "process", order)?;
    }

    let mut system_builder = PrivacySystem::builder();
    *system_builder.catalog_mut() = catalog;
    *system_builder.policy_mut() = policy;
    system_builder.add_diagram(builder.build())?;
    system_builder.build()
}

/// Builds a synthetic system with `actors` actors, `fields` fields and
/// `services` services. Fields are shared; each service is driven by its own
/// collector actor (round-robin) and collects, stores and reads every field
/// through a shared datastore, so interleaved exploration grows with the
/// service count — used by the LTS scaling benchmark (`lts_scaling`) to
/// measure generation throughput along the actors×fields×services axes.
///
/// # Errors
///
/// Returns a [`ModelError`] only if the synthetic construction itself is
/// inconsistent (a bug in the generator).
pub fn scaled_multi_service_system(
    actors: usize,
    fields: usize,
    services: usize,
) -> Result<PrivacySystem, ModelError> {
    let actors = actors.max(1);
    let services = services.max(1);
    let actor_ids: Vec<ActorId> = (0..actors).map(|i| ActorId::new(format!("actor-{i}"))).collect();
    let field_ids: Vec<FieldId> = (0..fields).map(|i| FieldId::new(format!("field-{i}"))).collect();

    let mut catalog = Catalog::new();
    for actor in &actor_ids {
        catalog.add_actor(Actor::role(actor.clone()))?;
    }
    for field in &field_ids {
        catalog.add_field(DataField::sensitive(field.clone()))?;
    }
    catalog.add_schema(DataSchema::new("Schema", field_ids.clone()))?;
    catalog.add_datastore(DatastoreDecl::new("Store", "Schema"))?;

    let mut acl = AccessControlList::new();
    for actor in &actor_ids {
        acl.grant(Grant::read_write_all(actor.clone(), "Store"));
    }
    let policy = AccessPolicy::from_parts(acl, Default::default());

    let mut system_builder = PrivacySystem::builder();
    for s in 0..services {
        let service = format!("service-{s}");
        let collector = actor_ids[s % actor_ids.len()].clone();
        let reader = actor_ids[(s + 1) % actor_ids.len()].clone();
        catalog.add_service(ServiceDecl::new(service.clone(), actor_ids.clone()))?;
        let builder = DiagramBuilder::new(service)
            .collect(collector.clone(), field_ids.clone(), "intake", 1)?
            .create(collector, "Store", field_ids.clone(), "persist", 2)?
            .read(reader, "Store", field_ids.clone(), "process", 3)?;
        system_builder.add_diagram(builder.build())?;
    }
    *system_builder.catalog_mut() = catalog;
    *system_builder.policy_mut() = policy;
    system_builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_report_creates_parents_and_protects_baselines() {
        let dir = std::env::temp_dir().join(format!("privacy-bench-out-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        // Parent directories are created on demand.
        let nested = dir.join("reports").join("BENCH_demo_ci.json");
        write_report(nested.to_str().unwrap(), "{}\n", false).unwrap();
        assert_eq!(std::fs::read_to_string(&nested).unwrap(), "{}\n");

        // A checked-in baseline name may be written fresh, but an existing
        // one is protected from a silent overwrite…
        let baseline = dir.join("BENCH_lts.json");
        let baseline_str = baseline.to_str().unwrap().to_owned();
        write_report(&baseline_str, "first\n", false).unwrap();
        assert!(write_report(&baseline_str, "second\n", false).is_err());
        assert_eq!(std::fs::read_to_string(&baseline).unwrap(), "first\n");

        // …unless the caller explicitly re-records it, in which case the
        // provenance marker is stamped in as the first key. Non-JSON
        // contents cannot carry the marker and are rejected outright.
        write_report(&baseline_str, "{\n  \"quick\": false\n}\n", true).unwrap();
        assert_eq!(
            std::fs::read_to_string(&baseline).unwrap(),
            "{\n  \"forced_baseline\": true,\n  \"quick\": false\n}\n"
        );
        assert!(write_report(&baseline_str, "not json\n", true).is_err());

        // Non-baseline names are never stamped, forced or not.
        let scratch = dir.join("BENCH_demo_ci.json");
        write_report(scratch.to_str().unwrap(), "{\n}\n", true).unwrap();
        assert_eq!(std::fs::read_to_string(&scratch).unwrap(), "{\n}\n");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_service_systems_scale_with_the_service_count() {
        let one = scaled_multi_service_system(3, 4, 1).unwrap();
        let three = scaled_multi_service_system(3, 4, 3).unwrap();
        assert!(one.validate().unwrap().is_ok());
        assert!(three.validate().unwrap().is_ok());
        assert_eq!(three.dataflows().len(), 3);
        let lts_one = one.generate_lts().unwrap();
        let lts_three = three.generate_lts().unwrap();
        assert!(lts_three.transition_count() > lts_one.transition_count());
    }

    #[test]
    fn scaled_systems_are_valid_and_scale_in_the_expected_dimensions() {
        let small = scaled_system(2, 2).unwrap();
        assert!(small.validate().unwrap().is_ok());
        assert_eq!(small.catalog().state_variable_count(), 8);

        let larger = scaled_system(5, 6).unwrap();
        assert_eq!(larger.catalog().state_variable_count(), 60);
        assert_eq!(larger.dataflows().flow_count(), 2 + 4);

        let lts_small = small.generate_lts().unwrap();
        let lts_larger = larger.generate_lts().unwrap();
        assert!(lts_larger.transition_count() > lts_small.transition_count());
    }
}
