//! The runtime scaling benchmark: index-backed sharded event ingestion
//! against the retained scan-path monitor, recorded as `BENCH_runtime.json`.
//!
//! PR 3 made the *design-time* analyses probe a columnar index; this
//! benchmark tracks the paper's operation-time deliverable — "monitor the
//! privacy risks during the lifetime of the service" — over the same shared
//! machinery. Per scenario it generates the LTS once, builds one
//! [`LtsIndex`], replays a `privacy-synth` workload through the service
//! engine to obtain a realistic event stream, then measures:
//!
//! * **Scan monitor throughput** — [`RuntimeMonitor::observe_all`] over the
//!   stream: per event, a state clone plus a sweep of every (actor, field)
//!   pair with string-keyed lookups.
//! * **Indexed monitor throughput** — [`IndexedMonitor::ingest_batch`] over
//!   the same stream, swept over ingestion thread counts: events resolve
//!   once through the index interners, per-user state shards by `UserId`
//!   hash, and only the bits an event touches are inspected. (On a
//!   single-core recorder the sweep measures fan-out overhead, not scaling —
//!   `threads_available` in the JSON says which regime a baseline was
//!   recorded in.)
//! * **Log audit** — the multi-statement runtime policy checked via
//!   `check_log_scan` (per-statement full scans) against `check_log` (one
//!   `EventLogIndex` build plus posting-list probes).
//!
//! Every scenario first cross-checks that the indexed monitor's alert
//! stream equals the scan monitor's (at every swept thread count) and that
//! the indexed audit report equals the scan report, so the benchmark
//! doubles as a coarse differential test.
//!
//! ```text
//! runtime_scaling [--quick] [--min-speedup X] [--min-t1-speedup Y]
//!                 [--out PATH] [--threads N]
//! ```
//!
//! `--quick` is the CI smoke configuration (shorter streams, shorter
//! measurement targets). `--min-speedup X` exits non-zero if any guarded
//! row's best sharded ingestion speedup falls below `X`;
//! `--min-t1-speedup Y` (default 1.0) guards the single-thread indexed
//! speedup the same way. See `docs/PERFORMANCE.md`.

use privacy_bench::{time_runs, write_report};
use privacy_compliance::{
    check_log, check_log_scan, ActorMatcher, FieldMatcher, PrivacyPolicy, Statement,
};
use privacy_core::{casestudy, PrivacySystem};
use privacy_lts::{ActionKind, LtsIndex};
use privacy_model::{ActorId, Catalog, FieldId, ModelError, Record, ServiceId, UserProfile};
use privacy_runtime::{Event, IndexedMonitor, RuntimeMonitor, ServiceEngine};
use privacy_synth::{
    random_model, random_profiles, random_workload, ModelGeneratorConfig, ProfileGeneratorConfig,
    WorkloadConfig,
};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// One benchmark scenario.
struct Scenario {
    name: String,
    users: usize,
    requests: usize,
    system: PrivacySystem,
}

/// One (threads, events/sec) sample of the ingestion sweep.
struct IngestSample {
    threads: usize,
    events_per_sec: f64,
}

/// One measured row of the report.
struct Row {
    scenario: Scenario,
    events: usize,
    space_variables: usize,
    alerts: usize,
    scan_events_per_sec: f64,
    indexed: Vec<IngestSample>,
    audit_statements: usize,
    audit_scan_secs: f64,
    audit_probe_secs: f64,
}

/// Streams below this length time per-batch setup, not ingestion
/// throughput; the regression guard skips them.
const GUARD_MIN_EVENTS: usize = 1_000;

impl Row {
    fn speedup_at(&self, threads: usize) -> Option<f64> {
        self.indexed
            .iter()
            .find(|sample| sample.threads == threads)
            .map(|sample| sample.events_per_sec / self.scan_events_per_sec)
    }

    /// The best sharded ingestion speedup over the scan monitor.
    fn best_speedup(&self) -> f64 {
        self.indexed
            .iter()
            .map(|sample| sample.events_per_sec / self.scan_events_per_sec)
            .fold(0.0, f64::max)
    }

    /// The single-thread indexed speedup (the "≥ 1× at t=1" criterion).
    fn t1_speedup(&self) -> f64 {
        self.speedup_at(1).unwrap_or(0.0)
    }

    fn audit_speedup(&self) -> f64 {
        self.audit_scan_secs / self.audit_probe_secs
    }

    fn guarded(&self) -> bool {
        self.events >= GUARD_MIN_EVENTS
    }
}

struct Options {
    quick: bool,
    min_speedup: f64,
    min_t1_speedup: f64,
    out: String,
    threads: Option<usize>,
    force_baseline: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        min_speedup: 0.0,
        min_t1_speedup: 1.0,
        out: "BENCH_runtime.json".to_owned(),
        threads: None,
        force_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--min-speedup" => {
                let value = args.next().ok_or("--min-speedup needs a value")?;
                options.min_speedup =
                    value.parse().map_err(|_| format!("bad --min-speedup value `{value}`"))?;
            }
            "--min-t1-speedup" => {
                let value = args.next().ok_or("--min-t1-speedup needs a value")?;
                options.min_t1_speedup =
                    value.parse().map_err(|_| format!("bad --min-t1-speedup value `{value}`"))?;
            }
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--force-baseline" => options.force_baseline = true,
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("bad --threads value `{value}`"))?);
            }
            other => return Err(format!("unknown argument `{other}` (see docs/PERFORMANCE.md)")),
        }
    }
    Ok(options)
}

/// The benchmark scenarios: the paper's healthcare model (the acceptance
/// row) and a wider synthetic model whose larger variable space makes the
/// scan monitor's per-event pair sweep proportionally more expensive.
fn scenarios(quick: bool) -> Result<Vec<Scenario>, ModelError> {
    let mut scenarios = Vec::new();
    scenarios.push(Scenario {
        name: "healthcare".to_owned(),
        users: if quick { 128 } else { 256 },
        requests: if quick { 1_500 } else { 6_000 },
        system: casestudy::healthcare()?,
    });

    let config = ModelGeneratorConfig {
        actors: 8,
        fields: 10,
        datastores: 3,
        services: 3,
        flows_per_service: 6,
        grant_probability: 0.5,
        seed: 11,
        ..ModelGeneratorConfig::default()
    };
    let (catalog, dataflows, policy) = random_model(&config)?;
    scenarios.push(Scenario {
        name: "synth_8a_10f_3s".to_owned(),
        users: if quick { 64 } else { 128 },
        requests: if quick { 1_000 } else { 4_000 },
        system: PrivacySystem::new(catalog, dataflows, policy),
    });
    Ok(scenarios)
}

/// A seeded user population over the catalog's services and fields.
fn population(catalog: &Catalog, count: usize) -> Vec<UserProfile> {
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    random_profiles(&ProfileGeneratorConfig {
        count,
        seed: 13,
        services,
        consent_probability: 0.5,
        fields,
        sensitivity_probability: 0.6,
    })
}

/// Replays a seeded workload through the service engine and returns the
/// resulting event stream.
fn event_stream(scenario: &Scenario, users: &[UserProfile]) -> Vec<Event> {
    let catalog = scenario.system.catalog();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let services: Vec<(ServiceId, f64)> =
        catalog.services().map(|s| (s.id().clone(), 1.0)).collect();
    let mut engine = ServiceEngine::new(
        catalog.clone(),
        scenario.system.dataflows().clone(),
        scenario.system.policy().clone(),
    );
    let workload = random_workload(&WorkloadConfig {
        length: scenario.requests,
        seed: 17,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services,
    });
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    engine.log().events().to_vec()
}

/// A multi-statement runtime hygiene policy over the catalog's vocabulary,
/// mirroring the `analysis_scaling` policy shape for the log audit.
fn audit_policy(catalog: &Catalog) -> PrivacyPolicy {
    let actors: Vec<ActorId> = catalog.identifying_actors().map(|a| a.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let mut policy = PrivacyPolicy::new("runtime-scaling hygiene policy");
    for (i, actor) in actors.iter().enumerate() {
        policy.add_statement(Statement::forbid(
            format!("NO-DELETE-{i}"),
            format!("{actor} never deletes records"),
            ActorMatcher::only([actor.clone()]),
            Some(ActionKind::Delete),
            FieldMatcher::Any,
        ));
    }
    policy.add_statement(Statement::forbid(
        "NO-AUDITOR",
        "the external auditor never acts",
        ActorMatcher::only([ActorId::new("ExternalAuditor")]),
        None,
        FieldMatcher::Any,
    ));
    policy.add_statement(Statement::require_erasure(
        "ERASE-ALL",
        "every processed field must be erasable",
        FieldMatcher::Any,
    ));
    for (i, field) in fields.iter().enumerate() {
        policy.add_statement(Statement::require_erasure(
            format!("ERASE-{i}"),
            format!("{field} must be erasable on request"),
            FieldMatcher::only([field.clone()]),
        ));
        policy.add_statement(Statement::max_exposure(
            format!("EXPOSE-{i}"),
            format!("at most two actors may observe {field}"),
            field.clone(),
            2,
        ));
        policy.add_statement(Statement::service_limit(
            format!("SERVICE-{i}"),
            format!("{field} stays in the declared services"),
            FieldMatcher::only([field.clone()]),
            services.iter().cloned(),
        ));
    }
    policy
}

/// The ingestion thread counts swept: a fixed 1/2/4 ladder (so the recorded
/// baseline always carries multi-thread rows, even when recorded on a small
/// container) plus the machine's full parallelism.
fn thread_counts(options: &Options) -> Vec<usize> {
    match options.threads {
        Some(threads) => {
            if threads == 1 {
                vec![1]
            } else {
                vec![1, threads]
            }
        }
        None => {
            let available = privacy_lts::batch::resolve_threads(None);
            let mut counts = vec![1, 2, 4];
            if !counts.contains(&available) {
                counts.push(available);
            }
            counts.sort_unstable();
            counts
        }
    }
}

fn run(options: &Options) -> Result<Vec<Row>, String> {
    let target =
        if options.quick { Duration::from_millis(200) } else { Duration::from_millis(700) };
    let counts = thread_counts(options);
    let mut rows = Vec::new();

    for scenario in scenarios(options.quick).map_err(|e| format!("building scenarios: {e}"))? {
        let lts = scenario
            .system
            .generate_lts()
            .map_err(|e| format!("{}: generation failed: {e}", scenario.name))?;
        let index = Arc::new(LtsIndex::build(&lts));
        let catalog = scenario.system.catalog();
        let policy = scenario.system.policy();
        let users = population(catalog, scenario.users);
        let events = event_stream(&scenario, &users);
        let log = {
            let mut log = privacy_runtime::EventLog::new();
            log.extend(events.iter().cloned());
            log
        };
        let audit = audit_policy(catalog);

        // Prototype monitors with every user registered; each timed run
        // clones the prototype so state evolution starts fresh.
        let mut scan_proto = RuntimeMonitor::new(catalog.clone(), policy.clone());
        let mut indexed_proto =
            IndexedMonitor::new(catalog.clone(), policy.clone(), Arc::clone(&index));
        for user in &users {
            scan_proto.register_user(user);
            indexed_proto.register_user(user);
        }

        // Differential check before timing anything: a speedup over a
        // different alert stream would be meaningless.
        let mut scan_check = scan_proto.clone();
        let scan_alerts = scan_check.observe_all(&events);
        for &threads in &counts {
            let mut indexed_check = indexed_proto.clone().with_threads(Some(threads));
            let indexed_alerts = indexed_check.ingest_batch(&events);
            if indexed_alerts != scan_alerts {
                return Err(format!(
                    "{}: indexed (t={threads}) and scan alert streams disagree",
                    scenario.name
                ));
            }
        }
        if check_log(&log, &audit) != check_log_scan(&log, &audit) {
            return Err(format!("{}: indexed and scan audit reports disagree", scenario.name));
        }

        // Scan monitor throughput.
        let (scan_secs, _) = time_runs(target, || {
            let mut monitor = scan_proto.clone();
            monitor.observe_all(&events).len()
        });

        // Indexed monitor throughput, swept over ingestion thread counts.
        let indexed = counts
            .iter()
            .map(|&threads| {
                let proto = indexed_proto.clone().with_threads(Some(threads));
                let (secs, _) = time_runs(target, || {
                    let mut monitor = proto.clone();
                    monitor.ingest_batch(&events).len()
                });
                IngestSample { threads, events_per_sec: events.len() as f64 / secs }
            })
            .collect();

        // Log audit: per-statement full scans vs one index build + probes.
        let (audit_scan_secs, _) = time_runs(target, || check_log_scan(&log, &audit));
        let (audit_probe_secs, _) = time_runs(target, || check_log(&log, &audit));

        let row = Row {
            events: events.len(),
            space_variables: index.space().variable_count(),
            alerts: scan_alerts.len(),
            scan_events_per_sec: events.len() as f64 / scan_secs,
            indexed,
            audit_statements: audit.len(),
            audit_scan_secs,
            audit_probe_secs,
            scenario,
        };
        eprintln!(
            "{:<20} {:>6} events {:>4} users {:>3} vars | scan {:>9.0} ev/s | indexed t1 \
             {:>9.0} ev/s ({:>5.2}x) best {:>5.2}x | audit {:>5.2}x | {} alerts",
            row.scenario.name,
            row.events,
            row.scenario.users,
            row.space_variables,
            row.scan_events_per_sec,
            row.indexed.first().map_or(0.0, |s| s.events_per_sec),
            row.t1_speedup(),
            row.best_speedup(),
            row.audit_speedup(),
            row.alerts,
        );
        rows.push(row);
    }
    Ok(rows)
}

fn render_sweep(samples: &[IngestSample], scan_events_per_sec: f64) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"threads\": {}, \"events_per_sec\": {:.0}, \"speedup\": {:.3}}}",
                s.threads,
                s.events_per_sec,
                s.events_per_sec / scan_events_per_sec
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn json_report(options: &Options, rows: &[Row]) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let threads_available =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let min_best = rows
        .iter()
        .filter(|row| row.guarded())
        .map(Row::best_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_t1 =
        rows.iter().filter(|row| row.guarded()).map(Row::t1_speedup).fold(f64::INFINITY, f64::min);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"runtime_scaling\",");
    let _ = writeln!(out, "  \"quick\": {},", options.quick);
    let _ = writeln!(out, "  \"threads_available\": {threads_available},");
    let _ = writeln!(out, "  \"generated_unix\": {unix_secs},");
    let _ = writeln!(out, "  \"guard_min_events\": {GUARD_MIN_EVENTS},");
    let _ = writeln!(
        out,
        "  \"min_best_speedup_observed\": {:.3},",
        if min_best.is_finite() { min_best } else { 0.0 }
    );
    let _ = writeln!(
        out,
        "  \"min_t1_speedup_observed\": {:.3},",
        if min_t1.is_finite() { min_t1 } else { 0.0 }
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"users\": {}, \"events\": {}, \"space_variables\": {}, \
             \"alerts\": {}, \"scan_events_per_sec\": {:.0}, \"indexed\": {}, \
             \"t1_speedup\": {:.3}, \"best_speedup\": {:.3}, \
             \"audit_statements\": {}, \"audit_scan_ms\": {:.3}, \"audit_probe_ms\": {:.3}, \
             \"audit_speedup\": {:.3}, \"guarded\": {}",
            row.scenario.name,
            row.scenario.users,
            row.events,
            row.space_variables,
            row.alerts,
            row.scan_events_per_sec,
            render_sweep(&row.indexed, row.scan_events_per_sec),
            row.t1_speedup(),
            row.best_speedup(),
            row.audit_statements,
            row.audit_scan_secs * 1e3,
            row.audit_probe_secs * 1e3,
            row.audit_speedup(),
            row.guarded()
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("runtime_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let rows = match run(&options) {
        Ok(rows) => rows,
        Err(message) => {
            eprintln!("runtime_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let report = json_report(&options, &rows);
    if let Err(message) = write_report(&options.out, &report, options.force_baseline) {
        eprintln!("runtime_scaling: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!("runtime_scaling: wrote {}", options.out);

    let guarded: Vec<&Row> = rows.iter().filter(|row| row.guarded()).collect();
    let enforcing = options.min_speedup > 0.0 || options.min_t1_speedup > 0.0;
    if enforcing && guarded.is_empty() {
        eprintln!(
            "runtime_scaling: regression guard failed: no stream reaches {GUARD_MIN_EVENTS} \
             events, so the speedup floors cannot be enforced"
        );
        return ExitCode::FAILURE;
    }
    for row in &guarded {
        if options.min_speedup > 0.0 && row.best_speedup() < options.min_speedup {
            eprintln!(
                "runtime_scaling: regression guard failed: `{}` best sharded ingestion speedup \
                 {:.2}x is below the required {:.2}x",
                row.scenario.name,
                row.best_speedup(),
                options.min_speedup
            );
            return ExitCode::FAILURE;
        }
        // The t1 floor (default 1.0: indexed must never lose to the scan
        // monitor) is enforced independently of --min-speedup.
        if options.min_t1_speedup > 0.0 && row.t1_speedup() < options.min_t1_speedup {
            eprintln!(
                "runtime_scaling: regression guard failed: `{}` single-thread indexed speedup \
                 {:.2}x is below the required {:.2}x",
                row.scenario.name,
                row.t1_speedup(),
                options.min_t1_speedup
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
