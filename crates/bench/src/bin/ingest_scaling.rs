//! The ingestion benchmark: wire-format parsing throughput into the
//! indexed monitor, recorded as `BENCH_ingest.json`.
//!
//! The `privacy-ingest` crate is the front door between real logs and the
//! runtime monitors; this bench tracks what it costs. Per scenario it
//! replays a seeded `privacy-synth` workload through the service engine to
//! obtain the reference event stream, renders that stream in each wire
//! format (JSON lines, logfmt, CSV, and gzip-wrapped JSON), then measures
//! `ingest_bytes` throughput — bytes → lines → records → resolved events —
//! in events/sec and MB/sec.
//!
//! Correctness gates run before any timing:
//!
//! * **round-trip** — the parsed event list must equal the rendered one,
//!   byte-for-byte in every column, for every format;
//! * **alert equivalence** — an [`IndexedMonitor`] fed the parsed events
//!   must produce exactly the alert stream of one fed the originals.
//!
//! A throughput number over a lossy parse would be meaningless, so a gate
//! failure aborts the bench with a non-zero exit.
//!
//! The healthcare scenario additionally gets a **tail-mode** row: the same
//! corpus consumed live through the `PipelineRunner` (poll → assemble →
//! parse → bounded queue → monitor), reporting steady-state events/sec
//! over a fully written log plus p50/p99 event-to-alert latency under a
//! paced writer. Both live runs are gated on alert equivalence too.
//!
//! ```text
//! ingest_scaling [--quick] [--min-json-events-per-sec X] [--out PATH]
//!                [--force-baseline]
//! ```
//!
//! `--quick` is the CI smoke configuration. `--min-json-events-per-sec X`
//! exits non-zero if the healthcare JSON row falls below `X` events/sec
//! (CI pins 50000). See `docs/PERFORMANCE.md`.

use privacy_bench::{time_runs, write_report};
use privacy_core::{casestudy, PrivacySystem};
use privacy_ingest::{
    gzip_compress_stored, ingest_bytes, FieldMapping, FollowConfig, IngestOptions, LiveSource,
};
use privacy_lts::LtsIndex;
use privacy_mde::pipeline::{IndexedSink, PipelineConfig, PipelineProgress, PipelineRunner};
use privacy_model::{Catalog, FieldId, ModelError, Record, ServiceId, UserProfile};
use privacy_runtime::{Alert, Event, IndexedMonitor, ServiceEngine};
use privacy_synth::{
    random_model, random_profiles, random_workload, render_events, LogFormat, ModelGeneratorConfig,
    ProfileGeneratorConfig, WorkloadConfig,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One benchmark scenario.
struct Scenario {
    name: String,
    users: usize,
    requests: usize,
    system: PrivacySystem,
}

/// One measured (scenario, wire format) row.
struct Row {
    scenario: String,
    format: &'static str,
    events: usize,
    bytes: usize,
    events_per_sec: f64,
    mbytes_per_sec: f64,
    alerts: usize,
}

struct Options {
    quick: bool,
    min_json_events_per_sec: f64,
    out: String,
    force_baseline: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        min_json_events_per_sec: 0.0,
        out: "BENCH_ingest.json".to_owned(),
        force_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--min-json-events-per-sec" => {
                let value = args.next().ok_or("--min-json-events-per-sec needs a value")?;
                options.min_json_events_per_sec = value
                    .parse()
                    .map_err(|_| format!("bad --min-json-events-per-sec value `{value}`"))?;
            }
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--force-baseline" => options.force_baseline = true,
            other => return Err(format!("unknown argument `{other}` (see docs/PERFORMANCE.md)")),
        }
    }
    Ok(options)
}

/// The benchmark scenarios: the paper's healthcare model (the acceptance
/// row) and a wider synthetic model with a larger vocabulary per line.
fn scenarios(quick: bool) -> Result<Vec<Scenario>, ModelError> {
    let mut scenarios = Vec::new();
    scenarios.push(Scenario {
        name: "healthcare".to_owned(),
        users: if quick { 128 } else { 256 },
        requests: if quick { 1_500 } else { 6_000 },
        system: casestudy::healthcare()?,
    });

    let config = ModelGeneratorConfig {
        actors: 8,
        fields: 10,
        datastores: 3,
        services: 3,
        flows_per_service: 6,
        grant_probability: 0.5,
        seed: 11,
        ..ModelGeneratorConfig::default()
    };
    let (catalog, dataflows, policy) = random_model(&config)?;
    scenarios.push(Scenario {
        name: "synth_8a_10f_3s".to_owned(),
        users: if quick { 64 } else { 128 },
        requests: if quick { 1_000 } else { 4_000 },
        system: PrivacySystem::new(catalog, dataflows, policy),
    });
    Ok(scenarios)
}

/// A seeded user population over the catalog's services and fields.
fn population(catalog: &Catalog, count: usize) -> Vec<UserProfile> {
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    random_profiles(&ProfileGeneratorConfig {
        count,
        seed: 13,
        services,
        consent_probability: 0.5,
        fields,
        sensitivity_probability: 0.6,
    })
}

/// Replays a seeded workload through the service engine and returns the
/// resulting event stream (the same construction as `runtime_scaling`).
fn event_stream(scenario: &Scenario, users: &[UserProfile]) -> Vec<Event> {
    let catalog = scenario.system.catalog();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let services: Vec<(ServiceId, f64)> =
        catalog.services().map(|s| (s.id().clone(), 1.0)).collect();
    let mut engine = ServiceEngine::new(
        catalog.clone(),
        scenario.system.dataflows().clone(),
        scenario.system.policy().clone(),
    );
    let workload = random_workload(&WorkloadConfig {
        length: scenario.requests,
        seed: 17,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services,
    });
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    engine.log().events().to_vec()
}

/// The wire encodings measured per scenario.
fn encodings(events: &[Event]) -> Vec<(&'static str, Vec<u8>)> {
    let json = render_events(events, LogFormat::Json);
    vec![
        ("json", json.clone().into_bytes()),
        ("logfmt", render_events(events, LogFormat::Logfmt).into_bytes()),
        ("csv", render_events(events, LogFormat::Csv).into_bytes()),
        ("json.gz", gzip_compress_stored(json.as_bytes())),
    ]
}

/// The live tail row: the whole `PipelineRunner` path (poll → assemble →
/// parse → bounded queue → monitor) measured in tail mode.
struct LiveRow {
    events: usize,
    events_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    alerts: usize,
}

/// Pipeline tuning for the live rows: a tight poll so the tail, not the
/// poll interval, dominates; no checkpoint/dead-letter IO in the
/// measured path (the corpus is gated clean before timing).
fn live_config(mapping: &FieldMapping) -> PipelineConfig {
    let mut config = PipelineConfig::new(mapping.clone());
    config.follow =
        FollowConfig { poll_interval: Duration::from_millis(1), ..FollowConfig::default() };
    config
}

/// Spins until `counter` reaches `target` (1 ms polls, 60 s cap).
fn wait_counter(counter: &AtomicU64, target: u64, what: &str) -> Result<(), String> {
    let started = Instant::now();
    while counter.load(Ordering::Relaxed) < target {
        if started.elapsed() > Duration::from_secs(60) {
            return Err(format!(
                "live: pipeline saw {} of {target} {what} within 60s",
                counter.load(Ordering::Relaxed)
            ));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    Ok(())
}

/// Tails `log` with a fresh clone of the gated monitor while `writer`
/// feeds it, then drains gracefully once every event has been resolved.
/// Returns the alert stream and the arrival instant of each alert.
fn tail_once(
    proto: &IndexedMonitor,
    services: &[ServiceId],
    mapping: &FieldMapping,
    log: &Path,
    total_events: u64,
    writer: impl FnOnce(&PipelineProgress) -> Result<(), String> + Send,
) -> Result<(Vec<Alert>, Vec<Instant>), String> {
    let runner = PipelineRunner::new(live_config(mapping));
    let progress = runner.progress();
    let stop = runner.stop_handle();
    let mut sink = IndexedSink::new(proto.clone(), services.to_vec(), false);
    std::thread::scope(|scope| {
        let pipeline = scope.spawn(|| {
            let source = LiveSource::tail(log, live_config(mapping).follow);
            let mut arrivals = Vec::new();
            let outcome = runner.run(source, &mut sink, |_| arrivals.push(Instant::now()));
            (outcome, arrivals)
        });
        // Feed the tail, wait for the monitor to catch up, then request a
        // graceful drain. The stop flag must be raised even when the
        // writer fails, or the scope would join a tail that never ends.
        let fed = writer(&progress)
            .and_then(|()| wait_counter(&progress.ingested, total_events, "ingested events"));
        stop.store(true, Ordering::Relaxed);
        let (outcome, arrivals) = pipeline.join().expect("pipeline thread");
        fed?;
        let report = outcome.map_err(|error| format!("live: pipeline failed: {error}"))?;
        Ok((report.alerts, arrivals))
    })
}

/// Sorted rendered alerts, for order-insensitive equivalence checks.
fn rendered(alerts: &[Alert]) -> Vec<String> {
    let mut rendered: Vec<String> = alerts.iter().map(ToString::to_string).collect();
    rendered.sort();
    rendered
}

/// Nearest-rank percentile over an ascending sample, in milliseconds.
fn percentile_ms(ascending: &[Duration], p: f64) -> f64 {
    if ascending.is_empty() {
        return 0.0;
    }
    let index = ((ascending.len() as f64 - 1.0) * p).round() as usize;
    ascending[index.min(ascending.len() - 1)].as_secs_f64() * 1e3
}

/// Measures the tail-mode pipeline on the healthcare corpus: steady-state
/// events/sec draining a fully written log, then a paced writer run for
/// per-alert event-to-alert latency. Both runs are gated on producing
/// exactly the direct monitor's alert stream.
fn live_tail(
    events: &[Event],
    proto: &IndexedMonitor,
    services: &[ServiceId],
    mapping: &FieldMapping,
    quick: bool,
) -> Result<LiveRow, String> {
    let stream = render_events(events, LogFormat::Json);
    let lines: Vec<&str> = stream.lines().collect();
    if lines.len() != events.len() {
        return Err(format!("live: {} lines rendered for {} events", lines.len(), events.len()));
    }

    // The oracle: one whole-stream batch through a clone of the gated
    // monitor (the pipeline's drain adds nothing — its sink reports each
    // alert exactly once).
    let expected = proto.clone().ingest_batch(events);
    let expected_rendered = rendered(&expected);

    let dir = std::env::temp_dir().join(format!("ingest-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("live: creating {}: {e}", dir.display()))?;
    let total = events.len() as u64;

    // Steady state: the log is fully written before the tail starts, so
    // throughput is the pipeline's capacity, not the writer's pace.
    let steady_log = dir.join("steady.jsonl");
    std::fs::write(&steady_log, stream.as_bytes()).map_err(|e| format!("live: {e}"))?;
    let started = Instant::now();
    let (steady_alerts, _) = tail_once(proto, services, mapping, &steady_log, total, |_| Ok(()))?;
    let steady_secs = started.elapsed().as_secs_f64();
    if rendered(&steady_alerts) != expected_rendered {
        return Err("live/steady: alert stream diverged from direct ingestion".to_owned());
    }

    // Latency: pace the writer well below capacity and timestamp each
    // appended chunk; an alert's latency is its arrival minus the write
    // instant of the line (= event) that raised it, matched by sequence.
    let paced_log = dir.join("paced.jsonl");
    std::fs::write(&paced_log, b"").map_err(|e| format!("live: {e}"))?;
    let chunk = if quick { 32 } else { 64 };
    let write_instants: std::sync::Mutex<Vec<Instant>> = std::sync::Mutex::new(Vec::new());
    let (paced_alerts, arrivals) = tail_once(proto, services, mapping, &paced_log, total, |_| {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&paced_log)
            .map_err(|e| format!("live: opening {}: {e}", paced_log.display()))?;
        let mut instants = write_instants.lock().map_err(|_| "live: poisoned lock")?;
        for batch in lines.chunks(chunk) {
            let mut block = batch.join("\n");
            block.push('\n');
            let now = Instant::now();
            instants.extend(std::iter::repeat_n(now, batch.len()));
            file.write_all(block.as_bytes()).map_err(|e| format!("live: append: {e}"))?;
            file.flush().map_err(|e| format!("live: flush: {e}"))?;
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    })?;
    if rendered(&paced_alerts) != expected_rendered {
        return Err("live/paced: alert stream diverged from direct ingestion".to_owned());
    }
    if arrivals.len() != paced_alerts.len() {
        return Err(format!(
            "live/paced: {} arrival instants for {} alerts",
            arrivals.len(),
            paced_alerts.len()
        ));
    }

    // Event sequence → line index (the render is 1:1 and the round-trip
    // gate pins that parsed events keep their sequence column).
    let by_sequence: BTreeMap<u64, usize> =
        events.iter().enumerate().map(|(index, event)| (event.sequence(), index)).collect();
    let instants = write_instants.into_inner().map_err(|_| "live: poisoned lock")?;
    let mut latencies = Vec::with_capacity(arrivals.len());
    for (alert, arrival) in paced_alerts.iter().zip(&arrivals) {
        let index = *by_sequence
            .get(&alert.sequence())
            .ok_or_else(|| format!("live: alert for unknown sequence {}", alert.sequence()))?;
        latencies.push(arrival.saturating_duration_since(instants[index]));
    }
    latencies.sort();

    let _ = std::fs::remove_dir_all(&dir);
    Ok(LiveRow {
        events: events.len(),
        events_per_sec: events.len() as f64 / steady_secs,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        alerts: expected.len(),
    })
}

fn run(options: &Options) -> Result<(Vec<Row>, Option<LiveRow>), String> {
    let target =
        if options.quick { Duration::from_millis(200) } else { Duration::from_millis(700) };
    let mapping = FieldMapping::canonical();
    let ingest_options = IngestOptions::default();
    let mut rows = Vec::new();
    let mut live = None;

    for scenario in scenarios(options.quick).map_err(|e| format!("building scenarios: {e}"))? {
        let users = population(scenario.system.catalog(), scenario.users);
        let events = event_stream(&scenario, &users);

        // Alert-equivalence gate: one monitor per side, identical streams
        // in, identical alerts out. The LTS/index build is shared.
        let lts = scenario
            .system
            .generate_lts()
            .map_err(|e| format!("{}: generation failed: {e}", scenario.name))?;
        let index = Arc::new(LtsIndex::build(&lts));
        let mut proto = IndexedMonitor::new(
            scenario.system.catalog().clone(),
            scenario.system.policy().clone(),
            Arc::clone(&index),
        );
        for user in &users {
            proto.register_user(user);
        }
        let direct_alerts = proto.clone().ingest_batch(&events);

        for (format, bytes) in encodings(&events) {
            // Round-trip gate before timing.
            let report = ingest_bytes(&bytes, &mapping, &ingest_options)
                .map_err(|e| format!("{}/{format}: ingest failed: {e}", scenario.name))?;
            if report.events != events {
                return Err(format!(
                    "{}/{format}: parsed events differ from the rendered stream",
                    scenario.name
                ));
            }
            let parsed_alerts = proto.clone().ingest_batch(&report.events);
            if parsed_alerts != direct_alerts {
                return Err(format!(
                    "{}/{format}: alert stream from parsed events differs from direct ingestion",
                    scenario.name
                ));
            }

            let (secs, timed_report) = time_runs(target, || {
                ingest_bytes(&bytes, &mapping, &ingest_options).expect("gated ingest succeeds")
            });
            let row = Row {
                scenario: scenario.name.clone(),
                format,
                events: timed_report.events.len(),
                bytes: bytes.len(),
                events_per_sec: events.len() as f64 / secs,
                mbytes_per_sec: bytes.len() as f64 / secs / 1e6,
                alerts: direct_alerts.len(),
            };
            eprintln!(
                "{:<20} {:>8} {:>6} events {:>9} bytes | {:>10.0} ev/s {:>7.1} MB/s",
                row.scenario,
                row.format,
                row.events,
                row.bytes,
                row.events_per_sec,
                row.mbytes_per_sec,
            );
            rows.push(row);
        }

        // The acceptance scenario also gets a tail-mode row: the same
        // corpus consumed live through the `PipelineRunner`.
        if scenario.name == "healthcare" {
            let services: Vec<ServiceId> =
                scenario.system.catalog().services().map(|s| s.id().clone()).collect();
            let row = live_tail(&events, &proto, &services, &mapping, options.quick)?;
            eprintln!(
                "{:<20} {:>8} {:>6} events | {:>10.0} ev/s steady | {:>6.1} ms p50 {:>6.1} ms \
                 p99 event-to-alert",
                "healthcare", "tail", row.events, row.events_per_sec, row.p50_ms, row.p99_ms,
            );
            live = Some(row);
        }
    }
    Ok((rows, live))
}

fn json_report(options: &Options, rows: &[Row], live: Option<&LiveRow>) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"ingest_scaling\",");
    let _ = writeln!(out, "  \"quick\": {},", options.quick);
    let _ = writeln!(out, "  \"generated_unix\": {unix_secs},");
    let _ = writeln!(
        out,
        "  \"guarded_row\": \"healthcare/json\", \"min_json_events_per_sec\": {:.0},",
        options.min_json_events_per_sec
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"scenario\": \"{}\", \"format\": \"{}\", \"events\": {}, \"bytes\": {}, \
             \"events_per_sec\": {:.0}, \"mbytes_per_sec\": {:.2}, \"alerts\": {}",
            row.scenario,
            row.format,
            row.events,
            row.bytes,
            row.events_per_sec,
            row.mbytes_per_sec,
            row.alerts,
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]");
    if let Some(live) = live {
        out.push_str(",\n  \"live\": {");
        let _ = write!(
            out,
            "\"scenario\": \"healthcare\", \"mode\": \"tail\", \"format\": \"json\", \
             \"events\": {}, \"events_per_sec\": {:.0}, \"event_to_alert_p50_ms\": {:.2}, \
             \"event_to_alert_p99_ms\": {:.2}, \"alerts\": {}",
            live.events, live.events_per_sec, live.p50_ms, live.p99_ms, live.alerts,
        );
        out.push('}');
    }
    out.push_str("\n}\n");
    out
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("ingest_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let (rows, live) = match run(&options) {
        Ok(results) => results,
        Err(message) => {
            eprintln!("ingest_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let report = json_report(&options, &rows, live.as_ref());
    if let Err(message) = write_report(&options.out, &report, options.force_baseline) {
        eprintln!("ingest_scaling: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!("ingest_scaling: wrote {}", options.out);

    if options.min_json_events_per_sec > 0.0 {
        let guarded = rows.iter().find(|row| row.scenario == "healthcare" && row.format == "json");
        match guarded {
            Some(row) if row.events_per_sec >= options.min_json_events_per_sec => {
                eprintln!(
                    "ingest_scaling: guard ok: healthcare/json {:.0} ev/s >= {:.0}",
                    row.events_per_sec, options.min_json_events_per_sec
                );
            }
            Some(row) => {
                eprintln!(
                    "ingest_scaling: regression guard failed: healthcare/json {:.0} ev/s < {:.0}",
                    row.events_per_sec, options.min_json_events_per_sec
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("ingest_scaling: regression guard failed: no healthcare/json row");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
