//! The ingestion benchmark: wire-format parsing throughput into the
//! indexed monitor, recorded as `BENCH_ingest.json`.
//!
//! The `privacy-ingest` crate is the front door between real logs and the
//! runtime monitors; this bench tracks what it costs. Per scenario it
//! replays a seeded `privacy-synth` workload through the service engine to
//! obtain the reference event stream, renders that stream in each wire
//! format (JSON lines, logfmt, CSV, and gzip-wrapped JSON), then measures
//! `ingest_bytes` throughput — bytes → lines → records → resolved events —
//! in events/sec and MB/sec.
//!
//! Correctness gates run before any timing:
//!
//! * **round-trip** — the parsed event list must equal the rendered one,
//!   byte-for-byte in every column, for every format;
//! * **alert equivalence** — an [`IndexedMonitor`] fed the parsed events
//!   must produce exactly the alert stream of one fed the originals.
//!
//! A throughput number over a lossy parse would be meaningless, so a gate
//! failure aborts the bench with a non-zero exit.
//!
//! ```text
//! ingest_scaling [--quick] [--min-json-events-per-sec X] [--out PATH]
//!                [--force-baseline]
//! ```
//!
//! `--quick` is the CI smoke configuration. `--min-json-events-per-sec X`
//! exits non-zero if the healthcare JSON row falls below `X` events/sec
//! (CI pins 50000). See `docs/PERFORMANCE.md`.

use privacy_bench::{time_runs, write_report};
use privacy_core::{casestudy, PrivacySystem};
use privacy_ingest::{gzip_compress_stored, ingest_bytes, FieldMapping, IngestOptions};
use privacy_lts::LtsIndex;
use privacy_model::{Catalog, FieldId, ModelError, Record, ServiceId, UserProfile};
use privacy_runtime::{Event, IndexedMonitor, ServiceEngine};
use privacy_synth::{
    random_model, random_profiles, random_workload, render_events, LogFormat, ModelGeneratorConfig,
    ProfileGeneratorConfig, WorkloadConfig,
};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// One benchmark scenario.
struct Scenario {
    name: String,
    users: usize,
    requests: usize,
    system: PrivacySystem,
}

/// One measured (scenario, wire format) row.
struct Row {
    scenario: String,
    format: &'static str,
    events: usize,
    bytes: usize,
    events_per_sec: f64,
    mbytes_per_sec: f64,
    alerts: usize,
}

struct Options {
    quick: bool,
    min_json_events_per_sec: f64,
    out: String,
    force_baseline: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        min_json_events_per_sec: 0.0,
        out: "BENCH_ingest.json".to_owned(),
        force_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--min-json-events-per-sec" => {
                let value = args.next().ok_or("--min-json-events-per-sec needs a value")?;
                options.min_json_events_per_sec = value
                    .parse()
                    .map_err(|_| format!("bad --min-json-events-per-sec value `{value}`"))?;
            }
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--force-baseline" => options.force_baseline = true,
            other => return Err(format!("unknown argument `{other}` (see docs/PERFORMANCE.md)")),
        }
    }
    Ok(options)
}

/// The benchmark scenarios: the paper's healthcare model (the acceptance
/// row) and a wider synthetic model with a larger vocabulary per line.
fn scenarios(quick: bool) -> Result<Vec<Scenario>, ModelError> {
    let mut scenarios = Vec::new();
    scenarios.push(Scenario {
        name: "healthcare".to_owned(),
        users: if quick { 128 } else { 256 },
        requests: if quick { 1_500 } else { 6_000 },
        system: casestudy::healthcare()?,
    });

    let config = ModelGeneratorConfig {
        actors: 8,
        fields: 10,
        datastores: 3,
        services: 3,
        flows_per_service: 6,
        grant_probability: 0.5,
        seed: 11,
        ..ModelGeneratorConfig::default()
    };
    let (catalog, dataflows, policy) = random_model(&config)?;
    scenarios.push(Scenario {
        name: "synth_8a_10f_3s".to_owned(),
        users: if quick { 64 } else { 128 },
        requests: if quick { 1_000 } else { 4_000 },
        system: PrivacySystem::new(catalog, dataflows, policy),
    });
    Ok(scenarios)
}

/// A seeded user population over the catalog's services and fields.
fn population(catalog: &Catalog, count: usize) -> Vec<UserProfile> {
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    random_profiles(&ProfileGeneratorConfig {
        count,
        seed: 13,
        services,
        consent_probability: 0.5,
        fields,
        sensitivity_probability: 0.6,
    })
}

/// Replays a seeded workload through the service engine and returns the
/// resulting event stream (the same construction as `runtime_scaling`).
fn event_stream(scenario: &Scenario, users: &[UserProfile]) -> Vec<Event> {
    let catalog = scenario.system.catalog();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let services: Vec<(ServiceId, f64)> =
        catalog.services().map(|s| (s.id().clone(), 1.0)).collect();
    let mut engine = ServiceEngine::new(
        catalog.clone(),
        scenario.system.dataflows().clone(),
        scenario.system.policy().clone(),
    );
    let workload = random_workload(&WorkloadConfig {
        length: scenario.requests,
        seed: 17,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services,
    });
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    engine.log().events().to_vec()
}

/// The wire encodings measured per scenario.
fn encodings(events: &[Event]) -> Vec<(&'static str, Vec<u8>)> {
    let json = render_events(events, LogFormat::Json);
    vec![
        ("json", json.clone().into_bytes()),
        ("logfmt", render_events(events, LogFormat::Logfmt).into_bytes()),
        ("csv", render_events(events, LogFormat::Csv).into_bytes()),
        ("json.gz", gzip_compress_stored(json.as_bytes())),
    ]
}

fn run(options: &Options) -> Result<Vec<Row>, String> {
    let target =
        if options.quick { Duration::from_millis(200) } else { Duration::from_millis(700) };
    let mapping = FieldMapping::canonical();
    let ingest_options = IngestOptions::default();
    let mut rows = Vec::new();

    for scenario in scenarios(options.quick).map_err(|e| format!("building scenarios: {e}"))? {
        let users = population(scenario.system.catalog(), scenario.users);
        let events = event_stream(&scenario, &users);

        // Alert-equivalence gate: one monitor per side, identical streams
        // in, identical alerts out. The LTS/index build is shared.
        let lts = scenario
            .system
            .generate_lts()
            .map_err(|e| format!("{}: generation failed: {e}", scenario.name))?;
        let index = Arc::new(LtsIndex::build(&lts));
        let mut proto = IndexedMonitor::new(
            scenario.system.catalog().clone(),
            scenario.system.policy().clone(),
            Arc::clone(&index),
        );
        for user in &users {
            proto.register_user(user);
        }
        let direct_alerts = proto.clone().ingest_batch(&events);

        for (format, bytes) in encodings(&events) {
            // Round-trip gate before timing.
            let report = ingest_bytes(&bytes, &mapping, &ingest_options)
                .map_err(|e| format!("{}/{format}: ingest failed: {e}", scenario.name))?;
            if report.events != events {
                return Err(format!(
                    "{}/{format}: parsed events differ from the rendered stream",
                    scenario.name
                ));
            }
            let parsed_alerts = proto.clone().ingest_batch(&report.events);
            if parsed_alerts != direct_alerts {
                return Err(format!(
                    "{}/{format}: alert stream from parsed events differs from direct ingestion",
                    scenario.name
                ));
            }

            let (secs, timed_report) = time_runs(target, || {
                ingest_bytes(&bytes, &mapping, &ingest_options).expect("gated ingest succeeds")
            });
            let row = Row {
                scenario: scenario.name.clone(),
                format,
                events: timed_report.events.len(),
                bytes: bytes.len(),
                events_per_sec: events.len() as f64 / secs,
                mbytes_per_sec: bytes.len() as f64 / secs / 1e6,
                alerts: direct_alerts.len(),
            };
            eprintln!(
                "{:<20} {:>8} {:>6} events {:>9} bytes | {:>10.0} ev/s {:>7.1} MB/s",
                row.scenario,
                row.format,
                row.events,
                row.bytes,
                row.events_per_sec,
                row.mbytes_per_sec,
            );
            rows.push(row);
        }
    }
    Ok(rows)
}

fn json_report(options: &Options, rows: &[Row]) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"ingest_scaling\",");
    let _ = writeln!(out, "  \"quick\": {},", options.quick);
    let _ = writeln!(out, "  \"generated_unix\": {unix_secs},");
    let _ = writeln!(
        out,
        "  \"guarded_row\": \"healthcare/json\", \"min_json_events_per_sec\": {:.0},",
        options.min_json_events_per_sec
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"scenario\": \"{}\", \"format\": \"{}\", \"events\": {}, \"bytes\": {}, \
             \"events_per_sec\": {:.0}, \"mbytes_per_sec\": {:.2}, \"alerts\": {}",
            row.scenario,
            row.format,
            row.events,
            row.bytes,
            row.events_per_sec,
            row.mbytes_per_sec,
            row.alerts,
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("ingest_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let rows = match run(&options) {
        Ok(rows) => rows,
        Err(message) => {
            eprintln!("ingest_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let report = json_report(&options, &rows);
    if let Err(message) = write_report(&options.out, &report, options.force_baseline) {
        eprintln!("ingest_scaling: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!("ingest_scaling: wrote {}", options.out);

    if options.min_json_events_per_sec > 0.0 {
        let guarded = rows.iter().find(|row| row.scenario == "healthcare" && row.format == "json");
        match guarded {
            Some(row) if row.events_per_sec >= options.min_json_events_per_sec => {
                eprintln!(
                    "ingest_scaling: guard ok: healthcare/json {:.0} ev/s >= {:.0}",
                    row.events_per_sec, options.min_json_events_per_sec
                );
            }
            Some(row) => {
                eprintln!(
                    "ingest_scaling: regression guard failed: healthcare/json {:.0} ev/s < {:.0}",
                    row.events_per_sec, options.min_json_events_per_sec
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("ingest_scaling: regression guard failed: no healthcare/json row");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
