//! The LTS generation scaling benchmark: optimised compiled-flow engine vs
//! the retained reference implementation, recorded as `BENCH_lts.json`.
//!
//! Rows sweep the actors × fields × services axes over three model sources:
//! the structured `scaled_system` / `scaled_multi_service_system` fixtures,
//! seeded random `privacy-synth` models, and the paper's healthcare case
//! study with `explore_potential_reads` enabled. Every row first checks that
//! both implementations generate the *identical* LTS (the benchmark doubles
//! as a coarse differential test), then times each and reports states/sec
//! and the speedup.
//!
//! ```text
//! lts_scaling [--quick] [--min-speedup X] [--min-row-speedup X] [--out PATH]
//!             [--threads N] [--thread-sweep A,B,C]
//! ```
//!
//! `--quick` runs a reduced sweep with shorter measurement targets (the CI
//! smoke configuration). `--min-speedup X` exits non-zero if any *guarded*
//! row's speedup falls below `X`; `--min-row-speedup X` (default 0.9) is the
//! broader floor applied to **every** row, guarded or not — the engine's
//! sequential small-model phase must keep even trivial rows from regressing
//! below ~1x the reference. `--thread-sweep A,B,C` re-times the engine at
//! each listed worker-thread count per scenario (the reference is timed
//! once), recording one row per count so the baseline captures multi-core
//! scaling. See `docs/PERFORMANCE.md` for how to read the output.

use privacy_bench::{scaled_multi_service_system, scaled_system, write_report};
use privacy_core::{casestudy, PrivacySystem};
use privacy_lts::{generate_lts_reference, GeneratorConfig, Lts};
use privacy_model::{Catalog, ModelError};
use privacy_synth::{random_model, ModelGeneratorConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

/// One benchmark scenario.
struct Scenario {
    name: String,
    actors: usize,
    fields: usize,
    services: usize,
    potential_reads: bool,
    system: PrivacySystem,
}

/// One measured row of the report (one scenario at one thread count).
struct Row {
    name: String,
    actors: usize,
    fields: usize,
    services: usize,
    potential_reads: bool,
    /// The engine's worker-thread count for this row.
    threads: usize,
    states: usize,
    transitions: usize,
    reference_secs: f64,
    engine_secs: f64,
}

/// Rows below this state count time the fixed per-call setup (compilation,
/// allocation), not generation throughput; the regression guard skips them.
const GUARD_MIN_STATES: usize = 100;

impl Row {
    fn reference_states_per_sec(&self) -> f64 {
        self.states as f64 / self.reference_secs
    }

    fn engine_states_per_sec(&self) -> f64 {
        self.states as f64 / self.engine_secs
    }

    fn speedup(&self) -> f64 {
        self.reference_secs / self.engine_secs
    }

    /// Whether the row is large enough to measure throughput rather than
    /// per-call overhead.
    fn guarded(&self) -> bool {
        self.states >= GUARD_MIN_STATES
    }
}

struct Options {
    quick: bool,
    min_speedup: f64,
    /// Floor applied to every row (guarded or not): the engine must never
    /// fall below this fraction of the reference's throughput.
    min_row_speedup: f64,
    out: String,
    threads: Option<usize>,
    /// Worker-thread counts to re-time the engine at, one row per count.
    thread_sweep: Option<Vec<usize>>,
    force_baseline: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        min_speedup: 0.0,
        min_row_speedup: 0.9,
        out: "BENCH_lts.json".to_owned(),
        threads: None,
        thread_sweep: None,
        force_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--min-speedup" => {
                let value = args.next().ok_or("--min-speedup needs a value")?;
                options.min_speedup =
                    value.parse().map_err(|_| format!("bad --min-speedup value `{value}`"))?;
            }
            "--min-row-speedup" => {
                let value = args.next().ok_or("--min-row-speedup needs a value")?;
                options.min_row_speedup =
                    value.parse().map_err(|_| format!("bad --min-row-speedup value `{value}`"))?;
            }
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--force-baseline" => options.force_baseline = true,
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("bad --threads value `{value}`"))?);
            }
            "--thread-sweep" => {
                let value = args.next().ok_or("--thread-sweep needs a comma-separated list")?;
                let counts: Result<Vec<usize>, _> =
                    value.split(',').map(str::parse::<usize>).collect();
                let counts = counts.map_err(|_| format!("bad --thread-sweep value `{value}`"))?;
                if counts.is_empty() || counts.contains(&0) {
                    return Err(format!("bad --thread-sweep value `{value}`"));
                }
                options.thread_sweep = Some(counts);
            }
            other => return Err(format!("unknown argument `{other}` (see docs/PERFORMANCE.md)")),
        }
    }
    Ok(options)
}

/// The benchmark scenarios, from the structured fixtures, the random synth
/// models and the healthcare case study.
fn scenarios(quick: bool) -> Result<Vec<Scenario>, ModelError> {
    let mut scenarios = Vec::new();

    let single_service: &[(usize, usize)] =
        if quick { &[(4, 8)] } else { &[(2, 4), (4, 8), (6, 12), (8, 16)] };
    for &(actors, fields) in single_service {
        scenarios.push(Scenario {
            name: format!("scaled_{actors}a_{fields}f_1s"),
            actors,
            fields,
            services: 1,
            potential_reads: false,
            system: scaled_system(actors, fields)?,
        });
    }

    let multi_service: &[(usize, usize, usize)] =
        if quick { &[(4, 6, 2)] } else { &[(4, 6, 2), (4, 6, 3), (6, 8, 3)] };
    for &(actors, fields, services) in multi_service {
        scenarios.push(Scenario {
            name: format!("scaled_{actors}a_{fields}f_{services}s"),
            actors,
            fields,
            services,
            potential_reads: false,
            system: scaled_multi_service_system(actors, fields, services)?,
        });
    }

    // Potential reads on a mid-sized structured model. Every actor can read
    // every field here, so this scales as a has-bit hypercube: (actors-1) ×
    // fields free bits. (4, 5) gives 2^15 ≈ 33k states — healthcare scale;
    // much beyond that the exploration degenerates into a memory-latency
    // benchmark on every implementation (see docs/PERFORMANCE.md).
    let (actors, fields) = if quick { (3, 4) } else { (4, 5) };
    scenarios.push(Scenario {
        name: format!("scaled_{actors}a_{fields}f_1s_potential_reads"),
        actors,
        fields,
        services: 1,
        potential_reads: true,
        system: scaled_system(actors, fields)?,
    });

    // Seeded random models from privacy-synth.
    let seeds: &[u64] = if quick { &[1] } else { &[1, 2] };
    for &seed in seeds {
        let config = ModelGeneratorConfig {
            actors: 5,
            fields: 6,
            datastores: 2,
            services: 3,
            flows_per_service: 5,
            grant_probability: 0.4,
            seed,
            ..ModelGeneratorConfig::default()
        };
        let (catalog, dataflows, policy) = random_model(&config)?;
        scenarios.push(Scenario {
            name: format!("synth_random_seed{seed}"),
            actors: config.actors,
            fields: config.fields,
            services: config.services,
            potential_reads: false,
            system: PrivacySystem::new(catalog, dataflows, policy),
        });
    }

    // The paper's healthcare case study. With potential reads (the
    // acceptance scenario, 138k states) the reference path alone needs tens
    // of seconds per generation, which no measurement target can shorten —
    // the quick sweep therefore benches the declared flows only and leaves
    // the full potential-read row to the recorded full-mode baseline.
    let healthcare = casestudy::healthcare()?;
    scenarios.push(Scenario {
        name: if quick { "healthcare" } else { "healthcare_potential_reads" }.to_owned(),
        actors: count_identifying_actors(healthcare.catalog()),
        fields: healthcare.catalog().field_count(),
        services: 2,
        potential_reads: !quick,
        system: healthcare,
    });

    Ok(scenarios)
}

fn count_identifying_actors(catalog: &Catalog) -> usize {
    catalog.identifying_actors().count()
}

/// Times `generate` via the shared [`privacy_bench::time_runs`] loop,
/// returning the mean duration and the warm-up result. A generation error is
/// deterministic (same model, same config); the timing loop cannot observe
/// per-run results, so a failing generator is re-run for up to `target`
/// before the warm-up's error propagates — wasteful but bounded, and the
/// benchmark aborts on it anyway.
fn time_generation(
    target: Duration,
    generate: impl Fn() -> Result<Lts, ModelError>,
) -> Result<(f64, Lts), ModelError> {
    let (secs, lts) = privacy_bench::time_runs(target, &generate);
    Ok((secs, lts?))
}

fn run(options: &Options) -> Result<Vec<Row>, String> {
    let target =
        if options.quick { Duration::from_millis(200) } else { Duration::from_millis(1000) };
    let default_threads = options.threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let sweep = options.thread_sweep.clone().unwrap_or_else(|| vec![default_threads]);

    let mut rows = Vec::new();
    for scenario in scenarios(options.quick).map_err(|e| format!("building scenarios: {e}"))? {
        let mut config = GeneratorConfig::default().with_max_states(5_000_000);
        config.explore_potential_reads = scenario.potential_reads;
        let system = &scenario.system;

        // The reference is single-threaded: time it once per scenario and
        // share the measurement across the thread sweep.
        let (reference_secs, reference_lts) = time_generation(target, || {
            generate_lts_reference(system.catalog(), system.dataflows(), system.policy(), &config)
        })
        .map_err(|e| format!("{}: reference failed: {e}", scenario.name))?;

        for &threads in &sweep {
            config.threads = Some(threads);
            // Trivial rows run in microseconds, where one scheduler hiccup
            // can drop a deterministic workload below the per-row floor:
            // re-measure up to twice before letting a row stand below it.
            let mut attempt = 0;
            let (engine_secs, engine_lts) = loop {
                let (engine_secs, engine_lts) =
                    time_generation(target, || system.generate_lts_with(&config))
                        .map_err(|e| format!("{}: engine failed: {e}", scenario.name))?;
                if reference_secs / engine_secs >= options.min_row_speedup || attempt >= 2 {
                    break (engine_secs, engine_lts);
                }
                attempt += 1;
            };

            // The benchmark is also a differential check: a speedup over a
            // *different* LTS would be meaningless.
            if engine_lts != reference_lts {
                return Err(format!(
                    "{}: engine (threads={threads}) and reference disagree ({} vs {})",
                    scenario.name,
                    engine_lts.stats(),
                    reference_lts.stats()
                ));
            }

            let name = if sweep.len() > 1 {
                format!("{}_t{threads}", scenario.name)
            } else {
                scenario.name.clone()
            };
            let row = Row {
                name,
                actors: scenario.actors,
                fields: scenario.fields,
                services: scenario.services,
                potential_reads: scenario.potential_reads,
                threads,
                states: engine_lts.state_count(),
                transitions: engine_lts.transition_count(),
                reference_secs,
                engine_secs,
            };
            eprintln!(
                "{:<40} {:>8} states {:>8} transitions | reference {:>10.1}/s | engine {:>12.1}/s | speedup {:>6.2}x",
                row.name,
                row.states,
                row.transitions,
                row.reference_states_per_sec(),
                row.engine_states_per_sec(),
                row.speedup()
            );
            rows.push(row);
        }
    }
    Ok(rows)
}

/// Minimum speedup over the guarded (throughput-scale) rows; 0.0 when no
/// row is guarded (rendered finitely in the JSON — the guard in `main`
/// refuses to pass vacuously instead).
fn min_guarded_speedup(rows: &[Row]) -> f64 {
    rows.iter().filter(|row| row.guarded()).map(Row::speedup).reduce(f64::min).unwrap_or(0.0)
}

fn json_report(options: &Options, rows: &[Row], min_speedup: f64) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let threads = options.threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"lts_scaling\",");
    let _ = writeln!(out, "  \"quick\": {},", options.quick);
    let _ = writeln!(out, "  \"threads\": {threads},");
    let sweep = options.thread_sweep.clone().unwrap_or_else(|| vec![threads]);
    let sweep: Vec<String> = sweep.iter().map(usize::to_string).collect();
    let _ = writeln!(out, "  \"thread_sweep\": [{}],", sweep.join(", "));
    let _ = writeln!(out, "  \"min_row_speedup\": {},", options.min_row_speedup);
    let _ = writeln!(out, "  \"generated_unix\": {unix_secs},");
    let _ = writeln!(out, "  \"guard_min_states\": {GUARD_MIN_STATES},");
    let _ = writeln!(out, "  \"min_speedup_observed\": {min_speedup:.3},");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"actors\": {}, \"fields\": {}, \"services\": {}, \
             \"potential_reads\": {}, \"threads\": {}, \"states\": {}, \"transitions\": {}, \
             \"reference_ms\": {:.3}, \"engine_ms\": {:.3}, \
             \"reference_states_per_sec\": {:.1}, \"engine_states_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \"guarded\": {}",
            row.name,
            row.actors,
            row.fields,
            row.services,
            row.potential_reads,
            row.threads,
            row.states,
            row.transitions,
            row.reference_secs * 1e3,
            row.engine_secs * 1e3,
            row.reference_states_per_sec(),
            row.engine_states_per_sec(),
            row.speedup(),
            row.guarded()
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("lts_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let rows = match run(&options) {
        Ok(rows) => rows,
        Err(message) => {
            eprintln!("lts_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let min_observed = min_guarded_speedup(&rows);
    let report = json_report(&options, &rows, min_observed);
    if let Err(message) = write_report(&options.out, &report, options.force_baseline) {
        eprintln!("lts_scaling: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!("lts_scaling: wrote {}", options.out);

    let has_guarded = rows.iter().any(Row::guarded);
    if options.min_speedup > 0.0 && !has_guarded {
        eprintln!(
            "lts_scaling: regression guard failed: no row reaches {GUARD_MIN_STATES} states, so \
             --min-speedup {:.2} cannot be enforced",
            options.min_speedup
        );
        return ExitCode::FAILURE;
    }
    if min_observed < options.min_speedup {
        eprintln!(
            "lts_scaling: regression guard failed: minimum speedup {min_observed:.2}x over rows \
             with >= {GUARD_MIN_STATES} states is below the required {:.2}x",
            options.min_speedup
        );
        return ExitCode::FAILURE;
    }

    // The broader per-row floor: no row — however trivial — may regress
    // below `min_row_speedup` of the reference. The engine's sequential
    // small-model phase exists precisely to keep this floor.
    let mut floored = false;
    for row in &rows {
        if row.speedup() < options.min_row_speedup {
            eprintln!(
                "lts_scaling: row regression: {} runs at {:.2}x the reference, below the \
                 required {:.2}x floor",
                row.name,
                row.speedup(),
                options.min_row_speedup
            );
            floored = true;
        }
    }
    if floored {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
