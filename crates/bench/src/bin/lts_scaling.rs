//! The LTS generation scaling benchmark: optimised compiled-flow engine vs
//! the retained reference implementation, recorded as `BENCH_lts.json`.
//!
//! Rows sweep the actors × fields × services axes over three model sources:
//! the structured `scaled_system` / `scaled_multi_service_system` fixtures,
//! seeded random `privacy-synth` models, and the paper's healthcare case
//! study with `explore_potential_reads` enabled. Every row first checks that
//! both implementations generate the *identical* LTS (the benchmark doubles
//! as a coarse differential test), then times each and reports states/sec
//! and the speedup.
//!
//! ```text
//! lts_scaling [--quick] [--min-speedup X] [--out PATH] [--threads N]
//! ```
//!
//! `--quick` runs a reduced sweep with shorter measurement targets (the CI
//! smoke configuration). `--min-speedup X` exits non-zero if any row's
//! speedup falls below `X` — the CI regression guard. See
//! `docs/PERFORMANCE.md` for how to read the output.

use privacy_bench::{scaled_multi_service_system, scaled_system};
use privacy_core::{casestudy, PrivacySystem};
use privacy_lts::{generate_lts_reference, GeneratorConfig, Lts};
use privacy_model::{Catalog, ModelError};
use privacy_synth::{random_model, ModelGeneratorConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// One benchmark scenario.
struct Scenario {
    name: String,
    actors: usize,
    fields: usize,
    services: usize,
    potential_reads: bool,
    system: PrivacySystem,
}

/// One measured row of the report.
struct Row {
    scenario: Scenario,
    states: usize,
    transitions: usize,
    reference_secs: f64,
    engine_secs: f64,
}

/// Rows below this state count time the fixed per-call setup (compilation,
/// allocation), not generation throughput; the regression guard skips them.
const GUARD_MIN_STATES: usize = 100;

impl Row {
    fn reference_states_per_sec(&self) -> f64 {
        self.states as f64 / self.reference_secs
    }

    fn engine_states_per_sec(&self) -> f64 {
        self.states as f64 / self.engine_secs
    }

    fn speedup(&self) -> f64 {
        self.reference_secs / self.engine_secs
    }

    /// Whether the row is large enough to measure throughput rather than
    /// per-call overhead.
    fn guarded(&self) -> bool {
        self.states >= GUARD_MIN_STATES
    }
}

struct Options {
    quick: bool,
    min_speedup: f64,
    out: String,
    threads: Option<usize>,
}

fn parse_options() -> Result<Options, String> {
    let mut options =
        Options { quick: false, min_speedup: 0.0, out: "BENCH_lts.json".to_owned(), threads: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--min-speedup" => {
                let value = args.next().ok_or("--min-speedup needs a value")?;
                options.min_speedup =
                    value.parse().map_err(|_| format!("bad --min-speedup value `{value}`"))?;
            }
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("bad --threads value `{value}`"))?);
            }
            other => return Err(format!("unknown argument `{other}` (see docs/PERFORMANCE.md)")),
        }
    }
    Ok(options)
}

/// The benchmark scenarios, from the structured fixtures, the random synth
/// models and the healthcare case study.
fn scenarios(quick: bool) -> Result<Vec<Scenario>, ModelError> {
    let mut scenarios = Vec::new();

    let single_service: &[(usize, usize)] =
        if quick { &[(4, 8)] } else { &[(2, 4), (4, 8), (6, 12), (8, 16)] };
    for &(actors, fields) in single_service {
        scenarios.push(Scenario {
            name: format!("scaled_{actors}a_{fields}f_1s"),
            actors,
            fields,
            services: 1,
            potential_reads: false,
            system: scaled_system(actors, fields)?,
        });
    }

    let multi_service: &[(usize, usize, usize)] =
        if quick { &[(4, 6, 2)] } else { &[(4, 6, 2), (4, 6, 3), (6, 8, 3)] };
    for &(actors, fields, services) in multi_service {
        scenarios.push(Scenario {
            name: format!("scaled_{actors}a_{fields}f_{services}s"),
            actors,
            fields,
            services,
            potential_reads: false,
            system: scaled_multi_service_system(actors, fields, services)?,
        });
    }

    // Potential reads on a mid-sized structured model. Every actor can read
    // every field here, so this scales as a has-bit hypercube: (actors-1) ×
    // fields free bits. (4, 5) gives 2^15 ≈ 33k states — healthcare scale;
    // much beyond that the exploration degenerates into a memory-latency
    // benchmark on every implementation (see docs/PERFORMANCE.md).
    let (actors, fields) = if quick { (3, 4) } else { (4, 5) };
    scenarios.push(Scenario {
        name: format!("scaled_{actors}a_{fields}f_1s_potential_reads"),
        actors,
        fields,
        services: 1,
        potential_reads: true,
        system: scaled_system(actors, fields)?,
    });

    // Seeded random models from privacy-synth.
    let seeds: &[u64] = if quick { &[1] } else { &[1, 2] };
    for &seed in seeds {
        let config = ModelGeneratorConfig {
            actors: 5,
            fields: 6,
            datastores: 2,
            services: 3,
            flows_per_service: 5,
            grant_probability: 0.4,
            seed,
            ..ModelGeneratorConfig::default()
        };
        let (catalog, dataflows, policy) = random_model(&config)?;
        scenarios.push(Scenario {
            name: format!("synth_random_seed{seed}"),
            actors: config.actors,
            fields: config.fields,
            services: config.services,
            potential_reads: false,
            system: PrivacySystem::new(catalog, dataflows, policy),
        });
    }

    // The paper's healthcare case study. With potential reads (the
    // acceptance scenario, 138k states) the reference path alone needs tens
    // of seconds per generation, which no measurement target can shorten —
    // the quick sweep therefore benches the declared flows only and leaves
    // the full potential-read row to the recorded full-mode baseline.
    let healthcare = casestudy::healthcare()?;
    scenarios.push(Scenario {
        name: if quick { "healthcare" } else { "healthcare_potential_reads" }.to_owned(),
        actors: count_identifying_actors(healthcare.catalog()),
        fields: healthcare.catalog().field_count(),
        services: 2,
        potential_reads: !quick,
        system: healthcare,
    });

    Ok(scenarios)
}

fn count_identifying_actors(catalog: &Catalog) -> usize {
    catalog.identifying_actors().count()
}

/// Times `generate` by running it repeatedly until `target` wall time has
/// accumulated (at least once), returning the mean duration and the result.
fn time_generation(
    target: Duration,
    generate: impl Fn() -> Result<Lts, ModelError>,
) -> Result<(f64, Lts), ModelError> {
    // Warm-up run, also the correctness artefact.
    let lts = generate()?;
    let mut runs = 0u32;
    let started = Instant::now();
    loop {
        let _ = std::hint::black_box(generate()?);
        runs += 1;
        if started.elapsed() >= target {
            break;
        }
    }
    Ok((started.elapsed().as_secs_f64() / f64::from(runs), lts))
}

fn run(options: &Options) -> Result<Vec<Row>, String> {
    let target =
        if options.quick { Duration::from_millis(200) } else { Duration::from_millis(1000) };
    let mut rows = Vec::new();
    for scenario in scenarios(options.quick).map_err(|e| format!("building scenarios: {e}"))? {
        let mut config = GeneratorConfig::default().with_max_states(5_000_000);
        config.explore_potential_reads = scenario.potential_reads;
        config.threads = options.threads;

        let system = &scenario.system;
        let (engine_secs, engine_lts) =
            time_generation(target, || system.generate_lts_with(&config))
                .map_err(|e| format!("{}: engine failed: {e}", scenario.name))?;
        let (reference_secs, reference_lts) = time_generation(target, || {
            generate_lts_reference(system.catalog(), system.dataflows(), system.policy(), &config)
        })
        .map_err(|e| format!("{}: reference failed: {e}", scenario.name))?;

        // The benchmark is also a differential check: a speedup over a
        // *different* LTS would be meaningless.
        if engine_lts != reference_lts {
            return Err(format!(
                "{}: engine and reference disagree ({} vs {})",
                scenario.name,
                engine_lts.stats(),
                reference_lts.stats()
            ));
        }

        let row = Row {
            states: engine_lts.state_count(),
            transitions: engine_lts.transition_count(),
            reference_secs,
            engine_secs,
            scenario,
        };
        eprintln!(
            "{:<40} {:>8} states {:>8} transitions | reference {:>10.1}/s | engine {:>12.1}/s | speedup {:>6.2}x",
            row.scenario.name,
            row.states,
            row.transitions,
            row.reference_states_per_sec(),
            row.engine_states_per_sec(),
            row.speedup()
        );
        rows.push(row);
    }
    Ok(rows)
}

/// Minimum speedup over the guarded (throughput-scale) rows.
fn min_guarded_speedup(rows: &[Row]) -> f64 {
    rows.iter().filter(|row| row.guarded()).map(Row::speedup).fold(f64::INFINITY, f64::min)
}

fn json_report(options: &Options, rows: &[Row], min_speedup: f64) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let threads = options.threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"lts_scaling\",");
    let _ = writeln!(out, "  \"quick\": {},", options.quick);
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"generated_unix\": {unix_secs},");
    let _ = writeln!(out, "  \"guard_min_states\": {GUARD_MIN_STATES},");
    let _ = writeln!(out, "  \"min_speedup_observed\": {min_speedup:.3},");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"actors\": {}, \"fields\": {}, \"services\": {}, \
             \"potential_reads\": {}, \"states\": {}, \"transitions\": {}, \
             \"reference_ms\": {:.3}, \"engine_ms\": {:.3}, \
             \"reference_states_per_sec\": {:.1}, \"engine_states_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \"guarded\": {}",
            row.scenario.name,
            row.scenario.actors,
            row.scenario.fields,
            row.scenario.services,
            row.scenario.potential_reads,
            row.states,
            row.transitions,
            row.reference_secs * 1e3,
            row.engine_secs * 1e3,
            row.reference_states_per_sec(),
            row.engine_states_per_sec(),
            row.speedup(),
            row.guarded()
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("lts_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let rows = match run(&options) {
        Ok(rows) => rows,
        Err(message) => {
            eprintln!("lts_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let min_observed = min_guarded_speedup(&rows);
    let report = json_report(&options, &rows, min_observed);
    if let Err(error) = std::fs::write(&options.out, &report) {
        eprintln!("lts_scaling: writing {}: {error}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("lts_scaling: wrote {}", options.out);

    if min_observed < options.min_speedup {
        eprintln!(
            "lts_scaling: regression guard failed: minimum speedup {min_observed:.2}x over rows \
             with >= {GUARD_MIN_STATES} states is below the required {:.2}x",
            options.min_speedup
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
