//! The analysis scaling benchmark: indexed risk/compliance checking against
//! the retained scan paths, recorded as `BENCH_analysis.json`.
//!
//! PR 2 made LTS *generation* fast; this benchmark tracks the paper's actual
//! deliverable — risk identification and policy compliance over the
//! generated model. Per scenario it generates the LTS once, then measures:
//!
//! * **Index build cost** — one [`LtsIndex::build`] pass (columns, posting
//!   lists, CSR adjacency, reachability bit postings).
//! * **Compliance** — a realistic multi-statement policy checked via the
//!   scan path (`check_lts_scan`: every statement re-walks the transition
//!   relation) against the indexed path (`check_lts_indexed` probes over a
//!   prebuilt index). The headline `check_speedup` compares the scan against
//!   index build **plus** probes — the honest single-shot cost.
//! * **Batch compliance throughput** — replicas of the full policy
//!   evaluated over one index build (`check_lts_batch_indexed`), swept over
//!   worker-thread counts. (On a single-core recorder the sweep measures
//!   fan-out overhead, not scaling — `threads_available` in the JSON says
//!   which regime a baseline was recorded in.)
//! * **Disclosure risk** — a seeded user population assessed per user via
//!   the scan path (`assess_scan`) against the batch API
//!   (`analyse_users_batch`) over one index, swept over thread counts.
//!
//! Every scenario first cross-checks that the indexed results equal the
//! scan-path results (reports compare structurally), so the benchmark
//! doubles as a coarse differential test.
//!
//! ```text
//! analysis_scaling [--quick] [--min-speedup X] [--out PATH] [--threads N]
//! ```
//!
//! `--quick` is the CI smoke configuration (smaller models, shorter
//! measurement targets). `--min-speedup X` exits non-zero if any guarded
//! row's `check_speedup` falls below `X`. `--threads N` pins the batch
//! sweeps to one count. See `docs/PERFORMANCE.md`.

use privacy_bench::{scaled_system, time_runs, write_report};
use privacy_compliance::{
    check_lts_batch_indexed, check_lts_indexed, check_lts_scan, ActorMatcher, FieldMatcher,
    PrivacyPolicy, Statement,
};
use privacy_core::{casestudy, PrivacySystem};
use privacy_lts::{ActionKind, GeneratorConfig, Lts, LtsIndex};
use privacy_model::{ActorId, Catalog, FieldId, ModelError, Purpose, ServiceId, UserProfile};
use privacy_risk::DisclosureAnalysis;
use privacy_synth::{random_model, random_profiles, ModelGeneratorConfig, ProfileGeneratorConfig};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

/// One benchmark scenario.
struct Scenario {
    name: String,
    potential_reads: bool,
    users: usize,
    system: PrivacySystem,
}

/// One (threads, throughput) sample of a batch sweep.
struct BatchSample {
    threads: usize,
    per_sec: f64,
}

/// One measured row of the report.
struct Row {
    scenario: Scenario,
    states: usize,
    transitions: usize,
    statements: usize,
    index_build_secs: f64,
    scan_check_secs: f64,
    probe_check_secs: f64,
    batch_policies: usize,
    batch: Vec<BatchSample>,
    disclosure_scan_users_per_sec: f64,
    disclosure_batch: Vec<BatchSample>,
}

/// Rows below this transition count time per-call setup, not probe
/// throughput; the regression guard skips them.
const GUARD_MIN_TRANSITIONS: usize = 10_000;

impl Row {
    /// Scan time over one full indexed check (build + probes): the honest
    /// single-shot speedup.
    fn check_speedup(&self) -> f64 {
        self.scan_check_secs / (self.index_build_secs + self.probe_check_secs)
    }

    /// Mean indexed probe time per policy statement, in microseconds.
    fn probe_us_per_statement(&self) -> f64 {
        self.probe_check_secs * 1e6 / self.statements.max(1) as f64
    }

    fn disclosure_speedup(&self) -> f64 {
        let batch = self.disclosure_batch.first().map_or(0.0, |s| s.per_sec);
        if self.disclosure_scan_users_per_sec > 0.0 {
            batch / self.disclosure_scan_users_per_sec
        } else {
            0.0
        }
    }

    fn guarded(&self) -> bool {
        self.transitions >= GUARD_MIN_TRANSITIONS
    }
}

struct Options {
    quick: bool,
    min_speedup: f64,
    out: String,
    threads: Option<usize>,
    force_baseline: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        min_speedup: 0.0,
        out: "BENCH_analysis.json".to_owned(),
        threads: None,
        force_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--min-speedup" => {
                let value = args.next().ok_or("--min-speedup needs a value")?;
                options.min_speedup =
                    value.parse().map_err(|_| format!("bad --min-speedup value `{value}`"))?;
            }
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--force-baseline" => options.force_baseline = true,
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("bad --threads value `{value}`"))?);
            }
            other => return Err(format!("unknown argument `{other}` (see docs/PERFORMANCE.md)")),
        }
    }
    Ok(options)
}

/// The benchmark scenarios. The healthcare case study with potential reads
/// (138k states / 1.4M transitions) is the headline; the scaled fixture with
/// potential reads is the guarded mid-size row quick mode can afford.
fn scenarios(quick: bool) -> Result<Vec<Scenario>, ModelError> {
    let mut scenarios = Vec::new();

    scenarios.push(Scenario {
        name: "scaled_4a_5f_1s_potential_reads".to_owned(),
        potential_reads: true,
        users: if quick { 4 } else { 8 },
        system: scaled_system(4, 5)?,
    });

    let config = ModelGeneratorConfig {
        actors: 5,
        fields: 6,
        datastores: 2,
        services: 3,
        flows_per_service: 5,
        grant_probability: 0.4,
        seed: 1,
        ..ModelGeneratorConfig::default()
    };
    let (catalog, dataflows, policy) = random_model(&config)?;
    scenarios.push(Scenario {
        name: "synth_random_seed1".to_owned(),
        potential_reads: false,
        users: if quick { 4 } else { 8 },
        system: PrivacySystem::new(catalog, dataflows, policy),
    });

    // Healthcare: quick mode checks the declared flows only (the CI sweep);
    // the recorded full-mode baseline runs the 1.4M-transition
    // potential-read variant the acceptance criterion names.
    scenarios.push(Scenario {
        name: if quick { "healthcare" } else { "healthcare_potential_reads" }.to_owned(),
        potential_reads: !quick,
        users: if quick { 4 } else { 8 },
        system: casestudy::healthcare()?,
    });

    Ok(scenarios)
}

/// A realistic multi-statement "hygiene" policy over the catalog's own
/// vocabulary: per-actor prohibitions of destructive/exfiltrating actions,
/// targeted read prohibitions on the most sensitive fields, a global
/// right-to-erasure statement, purpose limitation and per-field exposure
/// bounds. Deterministic per catalog.
fn analysis_policy(catalog: &Catalog, potential_reads: bool) -> PrivacyPolicy {
    let actors: Vec<ActorId> = catalog.identifying_actors().map(|a| a.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let mut policy = PrivacyPolicy::new("analysis-scaling hygiene policy");

    for (i, actor) in actors.iter().enumerate() {
        policy.add_statement(Statement::forbid(
            format!("NO-DELETE-{i}"),
            format!("{actor} never deletes records"),
            ActorMatcher::only([actor.clone()]),
            Some(ActionKind::Delete),
            FieldMatcher::Any,
        ));
        policy.add_statement(Statement::forbid(
            format!("NO-DELETE-CORE-{i}"),
            format!("{actor} never deletes the core record"),
            ActorMatcher::only([actor.clone()]),
            Some(ActionKind::Delete),
            FieldMatcher::only(fields.iter().take(3).cloned()),
        ));
    }
    // Prohibitions on a role outside the model: must hold vacuously, which
    // the scan can only establish by walking every transition per action.
    for (i, action) in ActionKind::ALL.iter().enumerate() {
        policy.add_statement(Statement::forbid(
            format!("NO-AUDITOR-{i}"),
            format!("the external auditor never performs {action}"),
            ActorMatcher::only([ActorId::new("ExternalAuditor")]),
            Some(*action),
            FieldMatcher::Any,
        ));
    }
    // Right to erasure: globally and per field.
    policy.add_statement(Statement::require_erasure(
        "ERASE-ALL",
        "every processed field must be erasable",
        FieldMatcher::Any,
    ));
    for (i, field) in fields.iter().enumerate() {
        policy.add_statement(Statement::require_erasure(
            format!("ERASE-{i}"),
            format!("{field} must be erasable on request"),
            FieldMatcher::only([field.clone()]),
        ));
    }
    // Potential-read transitions never carry a purpose, so purpose
    // limitation over a potential-read LTS floods violations that would
    // only measure string formatting on both paths; it is exercised on the
    // declared-flow scenarios (and pinned by the differential tests).
    if !potential_reads {
        policy.add_statement(Statement::purpose_limit(
            "PURPOSE-CORE",
            "the core record is only processed for declared purposes",
            FieldMatcher::only(fields.iter().take(1).cloned()),
            ["intake", "persist", "process", "collect", "disclose"]
                .map(|p| Purpose::new(p).unwrap()),
        ));
    }
    for (i, field) in fields.iter().enumerate() {
        policy.add_statement(Statement::max_exposure(
            format!("EXPOSE-{i}"),
            format!("at most two actors may identify {field}"),
            field.clone(),
            2,
        ));
    }
    policy
}

/// A seeded user population over the catalog's services and fields.
fn population(catalog: &Catalog, count: usize) -> Vec<UserProfile> {
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    random_profiles(&ProfileGeneratorConfig {
        count,
        seed: 7,
        services,
        consent_probability: 0.5,
        fields,
        sensitivity_probability: 0.6,
    })
}

/// The worker-thread counts the batch APIs are swept over: a fixed 1/2/4
/// ladder (so the recorded baseline always carries multi-thread rows, even
/// when recorded on a small container) plus the machine's full parallelism.
fn batch_thread_counts(options: &Options) -> Vec<usize> {
    match options.threads {
        Some(threads) => vec![threads],
        None => {
            let available = privacy_lts::batch::resolve_threads(None);
            let mut counts = vec![1, 2, 4];
            if !counts.contains(&available) {
                counts.push(available);
            }
            counts.sort_unstable();
            counts
        }
    }
}

fn run(options: &Options) -> Result<Vec<Row>, String> {
    let target =
        if options.quick { Duration::from_millis(150) } else { Duration::from_millis(500) };
    let thread_counts = batch_thread_counts(options);
    let mut rows = Vec::new();

    for scenario in scenarios(options.quick).map_err(|e| format!("building scenarios: {e}"))? {
        let mut config = GeneratorConfig::default().with_max_states(5_000_000);
        config.explore_potential_reads = scenario.potential_reads;
        let lts: Lts = scenario
            .system
            .generate_lts_with(&config)
            .map_err(|e| format!("{}: generation failed: {e}", scenario.name))?;
        let catalog = scenario.system.catalog();
        let policy = analysis_policy(catalog, scenario.potential_reads);
        let users = population(catalog, scenario.users);
        let analysis = DisclosureAnalysis::new(catalog, scenario.system.policy());

        // Differential check before timing anything: a speedup over a
        // different report would be meaningless.
        let index = LtsIndex::build(&lts);
        let indexed_report = check_lts_indexed(&lts, &index, &policy);
        let scan_report = check_lts_scan(&lts, &policy);
        if indexed_report != scan_report {
            return Err(format!("{}: indexed and scan compliance reports disagree", scenario.name));
        }
        for user in users.iter().take(2) {
            if analysis.assess(&index, user) != analysis.assess_scan(&lts, user) {
                return Err(format!(
                    "{}: indexed and scan disclosure reports disagree for {}",
                    scenario.name,
                    user.id()
                ));
            }
        }

        // Compliance: index build, scan check, indexed probe check.
        let (index_build_secs, _) = time_runs(target, || LtsIndex::build(&lts));
        let (scan_check_secs, _) = time_runs(target, || check_lts_scan(&lts, &policy));
        let (probe_check_secs, _) = time_runs(target, || check_lts_indexed(&lts, &index, &policy));

        // Batch compliance throughput over one prebuilt index. Each batch
        // unit is a replica of the full multi-statement policy: a unit must
        // carry enough work for the thread fan-out to measure anything but
        // spawn/join overhead (single statements probe in ~1µs).
        let units: Vec<PrivacyPolicy> = vec![policy.clone(); 16];
        let batch_policies = units.len();
        let batch = thread_counts
            .iter()
            .map(|&threads| {
                let (secs, _) = time_runs(target, || {
                    check_lts_batch_indexed(&lts, &index, &units, Some(threads))
                });
                BatchSample { threads, per_sec: batch_policies as f64 / secs }
            })
            .collect();

        // Disclosure: per-user scan path vs the batch API over one index.
        let (scan_users_secs, _) = time_runs(target, || {
            users.iter().map(|user| analysis.assess_scan(&lts, user)).collect::<Vec<_>>()
        });
        let disclosure_scan_users_per_sec = users.len() as f64 / scan_users_secs;
        let disclosure_batch = thread_counts
            .iter()
            .map(|&threads| {
                let (secs, _) = time_runs(target, || {
                    analysis.analyse_users_batch(&index, &users, Some(threads))
                });
                BatchSample { threads, per_sec: users.len() as f64 / secs }
            })
            .collect();

        let row = Row {
            states: lts.state_count(),
            transitions: lts.transition_count(),
            statements: policy.len(),
            index_build_secs,
            scan_check_secs,
            probe_check_secs,
            batch_policies,
            batch,
            disclosure_scan_users_per_sec,
            disclosure_batch,
            scenario,
        };
        eprintln!(
            "{:<36} {:>8} states {:>9} transitions | {:>2} statements | scan {:>9.2}ms | \
             build {:>8.2}ms probe {:>8.3}ms | check speedup {:>7.2}x | disclosure {:>6.2}x",
            row.scenario.name,
            row.states,
            row.transitions,
            row.statements,
            row.scan_check_secs * 1e3,
            row.index_build_secs * 1e3,
            row.probe_check_secs * 1e3,
            row.check_speedup(),
            row.disclosure_speedup(),
        );
        rows.push(row);
    }
    Ok(rows)
}

/// Minimum compliance check speedup over the guarded rows; 0.0 when no row
/// is guarded (rendered finitely in the JSON — the guard in `main` refuses
/// to pass vacuously instead).
fn min_guarded_speedup(rows: &[Row]) -> f64 {
    rows.iter().filter(|row| row.guarded()).map(Row::check_speedup).reduce(f64::min).unwrap_or(0.0)
}

fn render_batch(samples: &[BatchSample]) -> String {
    let entries: Vec<String> = samples
        .iter()
        .map(|s| format!("{{\"threads\": {}, \"per_sec\": {:.1}}}", s.threads, s.per_sec))
        .collect();
    format!("[{}]", entries.join(", "))
}

fn json_report(options: &Options, rows: &[Row], min_speedup: f64) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let threads_available =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"analysis_scaling\",");
    let _ = writeln!(out, "  \"quick\": {},", options.quick);
    let _ = writeln!(out, "  \"threads_available\": {threads_available},");
    let _ = writeln!(out, "  \"generated_unix\": {unix_secs},");
    let _ = writeln!(out, "  \"guard_min_transitions\": {GUARD_MIN_TRANSITIONS},");
    let _ = writeln!(out, "  \"min_check_speedup_observed\": {min_speedup:.3},");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"states\": {}, \"transitions\": {}, \"statements\": {}, \
             \"index_build_ms\": {:.3}, \"scan_check_ms\": {:.3}, \"probe_check_ms\": {:.3}, \
             \"probe_us_per_statement\": {:.3}, \"check_speedup\": {:.3}, \
             \"batch_policies\": {}, \"batch\": {}, \
             \"users\": {}, \"disclosure_scan_users_per_sec\": {:.2}, \
             \"disclosure_batch\": {}, \"disclosure_speedup\": {:.3}, \"guarded\": {}",
            row.scenario.name,
            row.states,
            row.transitions,
            row.statements,
            row.index_build_secs * 1e3,
            row.scan_check_secs * 1e3,
            row.probe_check_secs * 1e3,
            row.probe_us_per_statement(),
            row.check_speedup(),
            row.batch_policies,
            render_batch(&row.batch),
            row.scenario.users,
            row.disclosure_scan_users_per_sec,
            render_batch(&row.disclosure_batch),
            row.disclosure_speedup(),
            row.guarded()
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("analysis_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let rows = match run(&options) {
        Ok(rows) => rows,
        Err(message) => {
            eprintln!("analysis_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };

    let min_observed = min_guarded_speedup(&rows);
    let report = json_report(&options, &rows, min_observed);
    if let Err(message) = write_report(&options.out, &report, options.force_baseline) {
        eprintln!("analysis_scaling: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!("analysis_scaling: wrote {}", options.out);

    let has_guarded = rows.iter().any(Row::guarded);
    if options.min_speedup > 0.0 && !has_guarded {
        eprintln!(
            "analysis_scaling: regression guard failed: no row reaches \
             {GUARD_MIN_TRANSITIONS} transitions, so --min-speedup {:.2} cannot be enforced",
            options.min_speedup
        );
        return ExitCode::FAILURE;
    }
    if min_observed < options.min_speedup {
        eprintln!(
            "analysis_scaling: regression guard failed: minimum check speedup \
             {min_observed:.2}x over rows with >= {GUARD_MIN_TRANSITIONS} transitions is below \
             the required {:.2}x",
            options.min_speedup
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
