//! The distributed-monitoring benchmark: merged-stream throughput versus
//! worker count, and supervised recovery latency, recorded as
//! `BENCH_distributed.json`.
//!
//! The fleet under test is the real thing: `privacy-shardd` worker
//! *processes* (found next to this executable unless `--worker` overrides
//! it) spawned by a [`DistributedMonitor`], speaking framed messages over
//! pipes, checkpointing to disk. Per worker count the benchmark launches a
//! fresh fleet, routes the scenario's event stream through it in batches,
//! and reports events/sec for the fully merged (deterministically ordered)
//! alert stream. A separate run arms a kill-mid-stream fault and reports
//! the supervised recovery latency — death detection to caught-up
//! replacement — exercising checkpoint resume and suffix replay.
//!
//! Before anything is timed, the merged alert stream of a 2-worker fleet is
//! proven **identical** to the single-process [`IndexedMonitor`] run over
//! the same batches — the distributed layer may only ever change *where*
//! monitoring happens, never what it says.
//!
//! ```text
//! distributed_scaling [--quick] [--workers LIST] [--min-workers N]
//!                     [--min-events-per-sec X] [--worker PATH] [--out PATH]
//!                     [--force-baseline]
//! ```
//!
//! See `docs/PERFORMANCE.md` for the recorded baseline.

use privacy_bench::write_report;
use privacy_core::{casestudy, PrivacySystem};
use privacy_distrib::{DistribStats, DistributedMonitor, FaultPlan, SupervisorConfig};
use privacy_lts::LtsIndex;
use privacy_model::{FieldId, ModelError, Record, ServiceId, UserProfile};
use privacy_runtime::{Alert, Event, IndexedMonitor, ServiceEngine};
use privacy_synth::{random_profiles, random_workload, ProfileGeneratorConfig, WorkloadConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const BATCH: usize = 256;

struct Options {
    quick: bool,
    workers: Vec<usize>,
    min_workers: usize,
    min_events_per_sec: f64,
    worker: Option<PathBuf>,
    out: String,
    force_baseline: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        workers: Vec::new(),
        min_workers: 0,
        min_events_per_sec: 0.0,
        worker: None,
        out: "BENCH_distributed.json".to_owned(),
        force_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--workers" => {
                let value = args.next().ok_or("--workers needs a comma-separated list")?;
                options.workers = value
                    .split(',')
                    .map(|part| part.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --workers list `{value}`"))?;
            }
            "--min-workers" => {
                let value = args.next().ok_or("--min-workers needs a value")?;
                options.min_workers =
                    value.parse().map_err(|_| format!("bad --min-workers value `{value}`"))?;
            }
            "--min-events-per-sec" => {
                let value = args.next().ok_or("--min-events-per-sec needs a value")?;
                options.min_events_per_sec = value
                    .parse()
                    .map_err(|_| format!("bad --min-events-per-sec value `{value}`"))?;
            }
            "--worker" => {
                options.worker = Some(PathBuf::from(args.next().ok_or("--worker needs a path")?));
            }
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--force-baseline" => options.force_baseline = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if options.workers.is_empty() {
        options.workers = if options.quick { vec![1, 2] } else { vec![1, 2, 4] };
    }
    Ok(options)
}

/// The `privacy-shardd` binary: explicit path, or the one built next to us.
fn worker_program(options: &Options) -> Result<PathBuf, String> {
    if let Some(path) = &options.worker {
        return Ok(path.clone());
    }
    let me = std::env::current_exe().map_err(|e| format!("locating this executable: {e}"))?;
    let sibling = me.with_file_name("privacy-shardd");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!("no worker binary at {} — pass --worker PATH", sibling.display()))
    }
}

struct Scenario {
    system: PrivacySystem,
    fingerprint: u64,
    index: Arc<LtsIndex>,
    users: Vec<UserProfile>,
    batches: Vec<Vec<Event>>,
}

/// The paper's healthcare model with a seeded population and an
/// engine-produced event stream (the `monitor_recovery` fixture shape).
fn scenario(quick: bool) -> Result<Scenario, ModelError> {
    let system = casestudy::healthcare()?;
    let lts = system.generate_lts()?;
    let index = Arc::new(LtsIndex::build(&lts));
    let fingerprint = index.fingerprint();

    let services: Vec<ServiceId> = system.catalog().services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = system.catalog().fields().map(|f| f.id().clone()).collect();
    let users = random_profiles(&ProfileGeneratorConfig {
        count: if quick { 96 } else { 192 },
        seed: 13,
        services: services.clone(),
        consent_probability: 0.5,
        fields: fields.clone(),
        sensitivity_probability: 0.6,
    });
    let mut engine = ServiceEngine::new(
        system.catalog().clone(),
        system.dataflows().clone(),
        system.policy().clone(),
    );
    let workload = random_workload(&WorkloadConfig {
        length: if quick { 3_000 } else { 12_000 },
        seed: 17,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
    });
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    let events = engine.log().events().to_vec();
    let batches = events.chunks(BATCH).map(<[Event]>::to_vec).collect();
    Ok(Scenario { system, fingerprint, index, users, batches })
}

fn fleet_config(
    program: &std::path::Path,
    dir_tag: &str,
    workers: usize,
    plan: FaultPlan,
) -> SupervisorConfig {
    let dir = std::env::temp_dir()
        .join(format!("privacy-distributed-bench-{dir_tag}-{}", std::process::id()));
    let mut config = SupervisorConfig::new(program, dir);
    config.workers = workers;
    config.window = 4;
    config.checkpoint_every = 8;
    config.fault_plan = plan;
    config
}

/// Launches a fleet, registers the population, streams every batch through
/// it, and returns the merged alerts, the run stats, and the ingest-phase
/// wall time (fleet launch and registration are deliberately not timed:
/// they amortise over a monitor's lifetime).
fn run_fleet(
    scenario: &Scenario,
    config: SupervisorConfig,
) -> Result<(Vec<Alert>, DistribStats, f64), String> {
    let dir = config.checkpoint_dir.clone();
    let mut monitor =
        DistributedMonitor::launch("Healthcare", &scenario.system, scenario.fingerprint, config)
            .map_err(|e| format!("launch failed: {e}"))?;
    for user in &scenario.users {
        monitor.register_user(user).map_err(|e| format!("registration failed: {e}"))?;
    }
    let started = Instant::now();
    let mut alerts = Vec::new();
    for batch in &scenario.batches {
        alerts.extend(monitor.submit_batch(batch).map_err(|e| format!("ingest failed: {e}"))?);
    }
    let (rest, stats) = monitor.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    let secs = started.elapsed().as_secs_f64();
    alerts.extend(rest);
    let _ = std::fs::remove_dir_all(dir);
    Ok((alerts, stats, secs))
}

struct Row {
    workers: usize,
    events: usize,
    alerts: usize,
    secs: f64,
    recoveries: usize,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs
    }
}

struct RecoveryRow {
    workers: usize,
    recoveries: usize,
    latency_ms_mean: f64,
    resumed_from_batch: u64,
}

fn run(options: &Options) -> Result<(Vec<Row>, RecoveryRow), String> {
    let program = worker_program(options)?;
    let scenario = scenario(options.quick).map_err(|e| format!("building the scenario: {e}"))?;
    let events: usize = scenario.batches.iter().map(Vec::len).sum();

    // ── Correctness gate: the merged stream must equal the in-process run.
    let mut reference = IndexedMonitor::new(
        scenario.system.catalog().clone(),
        scenario.system.policy().clone(),
        scenario.index.clone(),
    );
    for user in &scenario.users {
        reference.register_user(user);
    }
    let mut expected = Vec::new();
    for batch in &scenario.batches {
        expected.extend(reference.ingest_batch(batch));
    }
    let (merged, _, _) =
        run_fleet(&scenario, fleet_config(&program, "gate", 2, FaultPlan::none()))?;
    if merged != expected {
        return Err(format!(
            "correctness gate failed: 2-worker merged stream has {} alerts, in-process run has \
             {} — distributed monitoring may not change what is reported",
            merged.len(),
            expected.len()
        ));
    }

    // ── Throughput vs worker count.
    let mut rows = Vec::new();
    for &workers in &options.workers {
        let reps = if options.quick { 1 } else { 2 };
        let mut best_secs = f64::INFINITY;
        let mut last = None;
        for rep in 0..reps {
            let tag = format!("w{workers}r{rep}");
            let (alerts, stats, secs) =
                run_fleet(&scenario, fleet_config(&program, &tag, workers, FaultPlan::none()))?;
            best_secs = best_secs.min(secs);
            last = Some((alerts.len(), stats.recoveries.len()));
        }
        let (alerts, recoveries) = last.expect("at least one rep");
        let row = Row { workers, events, alerts, secs: best_secs, recoveries };
        eprintln!(
            "{:>2} workers: {:>7} events in {:>7.3} s ({:>9.0} events/s), {} alerts, {} \
             recoveries",
            row.workers,
            row.events,
            row.secs,
            row.events_per_sec(),
            row.alerts,
            row.recoveries,
        );
        rows.push(row);
    }

    // ── Recovery latency: kill a worker mid-stream, measure detection →
    // caught-up replacement.
    let kill_at = (events / 3) as u64;
    let plan = FaultPlan::none().kill_after(0, 0, kill_at.max(1));
    let (alerts, stats, _) = run_fleet(&scenario, fleet_config(&program, "recovery", 2, plan))?;
    if alerts != expected {
        return Err(
            "recovery gate failed: the killed-and-recovered run diverged from the in-process \
             stream"
                .to_owned(),
        );
    }
    if stats.recoveries.is_empty() {
        return Err("recovery gate failed: the armed kill never triggered a recovery".to_owned());
    }
    let latency_ms_mean =
        stats.recoveries.iter().map(|recovery| recovery.latency.as_secs_f64() * 1e3).sum::<f64>()
            / stats.recoveries.len() as f64;
    let recovery = RecoveryRow {
        workers: 2,
        recoveries: stats.recoveries.len(),
        latency_ms_mean,
        resumed_from_batch: stats.recoveries[0].resumed_from_batch,
    };
    eprintln!(
        "recovery: {} restart(s), mean latency {:.1} ms, resumed from batch {}",
        recovery.recoveries, recovery.latency_ms_mean, recovery.resumed_from_batch,
    );
    Ok((rows, recovery))
}

fn json_report(options: &Options, rows: &[Row], recovery: &RecoveryRow) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let threads_available =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"distributed_scaling\",");
    let _ = writeln!(out, "  \"quick\": {},", options.quick);
    let _ = writeln!(out, "  \"threads_available\": {threads_available},");
    let _ = writeln!(out, "  \"generated_unix\": {unix_secs},");
    let _ = writeln!(out, "  \"batch\": {BATCH},");
    let _ = writeln!(
        out,
        "  \"recovery\": {{\"workers\": {}, \"recoveries\": {}, \"latency_ms_mean\": {:.1}, \
         \"resumed_from_batch\": {}}},",
        recovery.workers,
        recovery.recoveries,
        recovery.latency_ms_mean,
        recovery.resumed_from_batch,
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"workers\": {}, \"events\": {}, \"alerts\": {}, \"secs\": {:.3}, \
             \"events_per_sec\": {:.0}",
            row.workers,
            row.events,
            row.alerts,
            row.secs,
            row.events_per_sec(),
        );
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("distributed_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };
    let (rows, recovery) = match run(&options) {
        Ok(result) => result,
        Err(message) => {
            eprintln!("distributed_scaling: {message}");
            return ExitCode::FAILURE;
        }
    };
    // CI floors: the fleet must actually scale to the demanded width, and
    // throughput must not regress below the recorded floor.
    if let Some(widest) = rows.iter().map(|row| row.workers).max() {
        if widest < options.min_workers {
            eprintln!(
                "distributed_scaling: widest fleet ran {widest} workers, below the --min-workers \
                 {} floor",
                options.min_workers
            );
            return ExitCode::FAILURE;
        }
    }
    let best = rows.iter().map(Row::events_per_sec).fold(0.0f64, f64::max);
    if best < options.min_events_per_sec {
        eprintln!(
            "distributed_scaling: best throughput {best:.0} events/s is below the \
             --min-events-per-sec {} floor",
            options.min_events_per_sec
        );
        return ExitCode::FAILURE;
    }
    let report = json_report(&options, &rows, &recovery);
    if let Err(message) = write_report(&options.out, &report, options.force_baseline) {
        eprintln!("distributed_scaling: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!("distributed_scaling: wrote {}", options.out);
    ExitCode::SUCCESS
}
